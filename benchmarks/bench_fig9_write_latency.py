"""Figure 9: write operations in FaaSKeeper and ZooKeeper.

``set_data`` latency for node sizes 4 B - 250 kB under 512/1024/2048 MB
function configurations, against ZooKeeper; plus the cost distribution of
100,000 requests (queue / DynamoDB / S3 / follower / leader).  Shape
checks: ZooKeeper is 1-2 orders of magnitude faster; more memory cuts
write time ~20-30 %; storage dominates the cost split (40-80 %).
"""

from repro.analysis import render_table, summarize
from repro.analysis.bench import (
    collect_write_costs,
    deploy_fk,
    label,
    sweep_write_latency,
    timed,
)
from repro.cloud import Cloud
from repro.zookeeper import deploy_zookeeper

SIZES = (4, 1024, 64 * 1024, 128 * 1024, 250 * 1024)
MEMORIES = (512, 1024, 2048)
REPS = 30


def run():
    latencies = {}
    for memory in MEMORIES:
        cloud, service, client = deploy_fk(
            seed=90 + memory, user_store="s3", function_memory_mb=memory)
        latencies[f"fk-{memory}MB"] = sweep_write_latency(
            client, cloud, SIZES, reps=REPS)

    cloud = Cloud.aws(seed=91)
    zk = deploy_zookeeper(cloud, n_servers=3)
    zclient = zk.connect(server_index=0)
    zclient.create("/bench", b"")
    latencies["zookeeper"] = {
        size: summarize([
            timed(cloud, lambda: zclient.set_data("/bench", b"x" * size))
            for _ in range(REPS)])
        for size in SIZES
    }

    print()
    rows = []
    for system in sorted(latencies):
        for size in SIZES:
            s = latencies[system][size]
            rows.append([system, label(size), s.p50, s.p95, s.p99])
    print(render_table(["system", "size", "p50 ms", "p95 ms", "p99 ms"],
                       rows, title="Figure 9: set_data write latency"))

    # cost split of 100,000 requests
    cost_rows = []
    costs = {}
    for memory in (512, 2048):
        for size in (4, 64 * 1024, 250 * 1024):
            cloud, service, client = deploy_fk(
                seed=92, user_store="s3", function_memory_mb=memory)
            split = collect_write_costs(service, client, cloud, size, reps=20)
            costs[(size, memory)] = split
            cost_rows.append(
                [label(size), memory, round(split["total"], 2),
                 *(f"{100*split[k]/split['total']:.0f}%"
                   for k in ("queue", "system_store", "user_store",
                             "follower", "leader"))])
    print(render_table(
        ["size", "MB", "$/100K", "queue", "ddb", "s3", "follower", "leader"],
        cost_rows, title="Figure 9 (right): cost split of 100K writes"))
    return latencies, costs


def test_fig9_write_latency(benchmark):
    latencies, costs = benchmark.pedantic(run, rounds=1, iterations=1)
    # ZooKeeper writes are 1-2 orders of magnitude faster than FaaSKeeper.
    for size in SIZES:
        ratio = latencies["fk-2048MB"][size].p50 / latencies["zookeeper"][size].p50
        assert ratio > 8
    # FaaSKeeper small-node writes are ~100 ms-scale.
    assert 60 < latencies["fk-2048MB"][4].p50 < 220
    # Total write time decreases 15-35% from 512 to 2048 MB (paper: 22-28%).
    for size in (1024, 64 * 1024):
        small = latencies["fk-512MB"][size].p50
        large = latencies["fk-2048MB"][size].p50
        assert 0.10 < (small - large) / small < 0.40
    # Storage operations are responsible for 40-80% of the cost.
    for split in costs.values():
        storage = split["queue"] + split["system_store"] + split["user_store"]
        assert 0.40 < storage / split["total"] < 0.95
    # Large nodes cost more than small ones.
    assert costs[(250 * 1024, 2048)]["total"] > costs[(4, 2048)]["total"]
    # The simulated dollar total for 100K 4B writes is near the paper's
    # $1.1-1.4 band at 512 MB.
    assert 0.8 < costs[(4, 512)]["total"] < 1.8
