"""Figure 6b: throughput of standard and locked DynamoDB updates.

Ten client processes submit update pairs at a swept offered rate; the
standard variant performs read+write, the locked variant lock-acquire +
commit-unlock.  Shape checks: both scale linearly at low rates; the locked
variant saturates earlier, at roughly 84 % of the standard capacity
(~1200 op/s, the paper's headline).
"""

from repro.analysis import render_table
from repro.cloud import Cloud, OpContext, Set
from repro.primitives import TimedLock

OFFERED = (100, 200, 400, 800, 1200, 1600)
N_CLIENTS = 10
PIPELINE = 3   # outstanding requests per client process
WINDOW_MS = 5_000.0


def _run_load(cloud, kv, offered_per_s, locked):
    ctx = OpContext()
    lock = TimedLock(kv, "t", max_hold_ms=30_000)
    done = {"count": 0}
    workers = N_CLIENTS * PIPELINE
    interval = 1000.0 * workers / offered_per_s

    def client(idx):
        key = f"item-{idx}"  # one item per worker: independent updates
        end = cloud.now + WINDOW_MS
        while cloud.now < end:
            started = cloud.now
            if locked:
                handle = yield from lock.acquire(ctx, key)
                if handle is not None:
                    result = yield from lock.commit_unlock(
                        ctx, handle, [Set("v", cloud.now)])
                    if result is not None:
                        done["count"] += 1
            else:
                yield from kv.get_item(ctx, "t", key)
                yield from kv.put_item(ctx, "t", key, {"v": cloud.now})
                done["count"] += 1
            elapsed = cloud.now - started
            if elapsed < interval:
                yield cloud.env.timeout(interval - elapsed)

    start = cloud.now
    for i in range(N_CLIENTS * PIPELINE):
        cloud.env.process(client(i))
    cloud.run(until=start + WINDOW_MS + 2000)
    return done["count"] / (WINDOW_MS / 1000.0)


def run():
    rows = []
    series = {"standard": [], "locked": []}
    for offered in OFFERED:
        for mode in ("standard", "locked"):
            cloud = Cloud.aws(seed=offered * 7 + (mode == "locked"))
            kv = cloud.kv()
            kv.create_table("t", capacity_per_s=cloud.profile.kv_capacity_per_s)
            for i in range(N_CLIENTS * PIPELINE):
                cloud.run_process(kv.put_item(OpContext(), "t", f"item-{i}",
                                              {"v": 0}))
            rate = _run_load(cloud, kv, offered, locked=(mode == "locked"))
            series[mode].append(rate)
        rows.append([offered, series["standard"][-1], series["locked"][-1],
                     series["locked"][-1] / max(series["standard"][-1], 1e-9)])
    print()
    print(render_table(
        ["offered op/s", "standard op/s", "locked op/s", "efficiency"],
        rows, title="Figure 6b: standard vs locked update throughput"))
    return series


def test_fig6b_lock_throughput(benchmark):
    series = benchmark.pedantic(run, rounds=1, iterations=1)
    std, lck = series["standard"], series["locked"]
    # Linear scaling at low load for both.
    assert std[0] > 0.85 * OFFERED[0]
    assert lck[0] > 0.80 * OFFERED[0]
    # At the top of the sweep the standard variant saturates near the table
    # capacity while the locked one trails at roughly 84% of it.
    eff_top = lck[-1] / std[-1]
    assert 0.70 < eff_top < 0.95
    # Locked version sustains ~1200 op/s ("parallel writes up to 1200/s").
    assert 1050 < lck[-1] < 1350
