"""Figure 11: FaaSKeeper writes with hybrid storage.

Write latency over the typical ZooKeeper node-size range (4 B - 4 kB) with
hybrid user storage at 512/1024/2048 MB, plus the cost split.  Shape
checks: replacing S3 with DynamoDB for small nodes cuts the total write
time by ~20-30 %, and cost drops toward the paper's ~$0.7-0.9 per 100 K.
"""

from repro.analysis import render_table
from repro.analysis.bench import (
    collect_write_costs,
    deploy_fk,
    label,
    sweep_write_latency,
)
from repro.workloads import NODE_SIZES_FIG11

MEMORIES = (512, 1024, 2048)
REPS = 30


def run():
    latencies = {}
    for memory in MEMORIES:
        cloud, service, client = deploy_fk(
            seed=120 + memory, user_store="hybrid", function_memory_mb=memory)
        latencies[("hybrid", memory)] = sweep_write_latency(
            client, cloud, NODE_SIZES_FIG11, reps=REPS)
    # standard S3 baseline at 512 MB for the improvement claim
    cloud, service, client = deploy_fk(seed=121, user_store="s3",
                                       function_memory_mb=512)
    latencies[("s3", 512)] = sweep_write_latency(
        client, cloud, NODE_SIZES_FIG11, reps=REPS)

    print()
    rows = []
    for (store, memory), per_size in sorted(latencies.items()):
        for size in NODE_SIZES_FIG11:
            rows.append([store, memory, label(size), per_size[size].p50])
    print(render_table(["store", "MB", "size", "p50 ms"], rows,
                       title="Figure 11: hybrid-storage write latency"))

    costs = {}
    rows = []
    for memory in (512, 2048):
        for size in (4, 1024, 4096):
            cloud, service, client = deploy_fk(
                seed=122, user_store="hybrid", function_memory_mb=memory)
            split = collect_write_costs(service, client, cloud, size, reps=20)
            costs[(size, memory)] = split
            rows.append([label(size), memory, round(split["total"], 2),
                         *(f"{100*split[k]/split['total']:.0f}%"
                           for k in ("queue", "system_store", "user_store",
                                     "follower", "leader"))])
    print(render_table(
        ["size", "MB", "$/100K", "queue", "system", "user", "follower",
         "leader"], rows,
        title="Figure 11 (right): hybrid cost split of 100K writes"))
    return latencies, costs


def test_fig11_hybrid_storage(benchmark):
    latencies, costs = benchmark.pedantic(run, rounds=1, iterations=1)
    # Hybrid beats the S3 configuration on every small node size (at equal
    # memory) -- the paper's 22-28% total-write-time reduction.
    for size in NODE_SIZES_FIG11:
        hybrid = latencies[("hybrid", 512)][size].p50
        s3 = latencies[("s3", 512)][size].p50
        assert hybrid < s3
        assert 0.10 < (s3 - hybrid) / s3 < 0.45
    # More memory still helps.
    assert latencies[("hybrid", 2048)][1024].p50 < \
        latencies[("hybrid", 512)][1024].p50
    # Cost stays in the paper's ~$0.7-1.2 per 100K band for small nodes.
    assert 0.5 < costs[(4, 512)]["total"] < 1.5
    # Large-node hybrid writes stay bounded (the infrequent-case penalty).
    assert costs[(4096, 2048)]["total"] < 3.0
