"""Figure 4a: cost of storage services for varying data size and op counts.

Left panel: monthly cost of 1 M one-kB operations plus retention, sweeping
the stored data size.  Right panel: cost sweeping the operation count at
1 GB stored.  Shape checks: object-store writes are 12.5x reads; key-value
storage dominates cost for large items; S3 writes are too expensive for
frequent small writes (why system state lives in DynamoDB).
"""

from repro.analysis import render_table
from repro.costmodel import StorageCostModel

SIZES_GB = (0.01, 0.03, 0.12, 0.40, 1.0, 4.0, 10.0)
OPS = (10, 10**3, 10**5, 10**7)


def run():
    model = StorageCostModel()
    size_sweep = model.size_sweep(SIZES_GB)
    ops_sweep = model.ops_sweep(OPS)
    print()
    rows = [[gb] + [size_sweep[k][i] for k in sorted(size_sweep)]
            for i, gb in enumerate(SIZES_GB)]
    print(render_table(["GB stored"] + sorted(size_sweep), rows,
                       title="Figure 4a (left): $ for 1M 1kB ops + retention"))
    rows = [[n] + [ops_sweep[k][i] for k in sorted(ops_sweep)]
            for i, n in enumerate(OPS)]
    print(render_table(["ops"] + sorted(ops_sweep), rows,
                       title="Figure 4a (right): $ at 1 GB stored"))
    return model, size_sweep, ops_sweep


def test_fig4a_storage_cost(benchmark):
    model, size_sweep, ops_sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    # S3 writes 12.5x more expensive than reads (paper annotation).
    assert abs(model.s3_write_read_ratio() - 12.5) < 0.01
    # Key-value storage ~4.37x more expensive than object storage on large
    # data: compare 1M 64kB writes.
    s3_large = model.monthly_cost("s3", "write", 1.0, 10**6, op_kb=64)
    dd_large = model.monthly_cost("dynamodb", "write", 1.0, 10**6, op_kb=64)
    assert dd_large / s3_large > 4
    # Object storage too expensive for frequent small writes (right panel).
    assert ops_sweep["s3_write"][-1] > 3 * ops_sweep["dynamodb_write"][-1]
    # At low op counts retention dominates and DynamoDB storage is pricier.
    assert ops_sweep["dynamodb_read"][0] > ops_sweep["s3_read"][0]
