"""Figure 8: read operations in FaaSKeeper and ZooKeeper (AWS + GCP).

``get_data`` latency versus node size for every user-store backend
(DynamoDB, S3, Redis, hybrid) against the self-hosted ZooKeeper baseline;
then the GCP variant (Datastore, Cloud Storage).  Shape checks: ZooKeeper
and Redis are on par (sub-2 ms small nodes); DynamoDB ~5 ms; S3 ~12 ms;
GCP Datastore ~2.3x slower than DynamoDB on small nodes; GCP object
storage slower than S3.
"""

from repro.analysis import render_table
from repro.analysis.bench import deploy_fk, label, sweep_read_latency
from repro.cloud import Cloud
from repro.zookeeper import deploy_zookeeper

SIZES = (1024, 16 * 1024, 64 * 1024, 128 * 1024, 250 * 1024)
REPS = 80


def _zookeeper_reads(provider_seed):
    cloud = Cloud.aws(seed=provider_seed)
    zk = deploy_zookeeper(cloud, n_servers=3)
    client = zk.connect(server_index=0)
    client.create("/bench", b"")
    out = {}
    from repro.analysis import summarize
    from repro.analysis.bench import timed

    for size in SIZES:
        client.set_data("/bench", b"x" * size)
        out[size] = summarize([
            timed(cloud, lambda: client.get_data("/bench"))
            for _ in range(REPS)])
    return out


def run():
    results = {}
    for backend in ("dynamodb", "s3", "redis", "hybrid"):
        cloud, service, client = deploy_fk(seed=8, user_store=backend)
        results[f"aws:{backend}"] = sweep_read_latency(
            client, cloud, SIZES, reps=REPS)
    results["aws:zookeeper"] = _zookeeper_reads(88)

    for backend in ("dynamodb", "s3"):
        cloud, service, client = deploy_fk(seed=9, provider="gcp",
                                           user_store=backend)
        name = "datastore" if backend == "dynamodb" else "cloud_storage"
        results[f"gcp:{name}"] = sweep_read_latency(
            client, cloud, SIZES, reps=REPS)

    print()
    rows = []
    for system in sorted(results):
        for size in SIZES:
            s = results[system][size]
            rows.append([system, label(size), s.p50, s.p99])
    print(render_table(["system", "size", "p50 ms", "p99 ms"], rows,
                       title="Figure 8: get_data latency by user store"))
    return results


def test_fig8_read_latency(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    small = SIZES[0]
    # Ranking on small nodes: ZK ~ Redis < DynamoDB < S3.
    assert r["aws:zookeeper"][small].p50 < 2.5
    assert r["aws:redis"][small].p50 < 2.5
    assert 3.5 < r["aws:dynamodb"][small].p50 < 9.0
    assert 9.0 < r["aws:s3"][small].p50 < 18.0
    # Redis/FaaSKeeper on par with self-hosted ZooKeeper (within ~2x).
    assert r["aws:redis"][small].p50 < 3 * r["aws:zookeeper"][small].p50
    # Hybrid equals DynamoDB for small nodes, near S3 for large ones.
    assert abs(r["aws:hybrid"][small].p50 - r["aws:dynamodb"][small].p50) < 3
    big = SIZES[-1]
    assert r["aws:hybrid"][big].p50 > r["aws:dynamodb"][big].p50
    # GCP: Datastore ~2.3x slower than DynamoDB on small nodes...
    ratio = r["gcp:datastore"][small].p50 / r["aws:dynamodb"][small].p50
    assert 1.6 < ratio < 3.2
    # ...and GCP object storage slower than AWS S3.
    assert r["gcp:cloud_storage"][small].p50 > r["aws:s3"][small].p50
