"""Recipe lock vs. the paper's timed lock under single-resource contention.

``recipes.Lock`` is the herd-free ZooKeeper queue lock built on the public
client API: ephemeral sequence nodes + a predecessor watch, granting in
FIFO order with at most one waiter woken per release.  The paper's
:class:`~repro.primitives.TimedLock` (Figure 6b) is a storage-level
try-lock: a conditional write that contenders must spin on, with no queue
and no wake-ups — cheap per operation, but unfair under contention and
wasteful in retries.

This bench runs both against one contended resource (N clients, fixed
critical-section hold) and reports throughput (handoffs/s), fairness
(Jain's index over per-client acquisition counts), retry waste and the
recipe lock's wake-up discipline, emitting machine-readable
``BENCH_recipe_lock.json`` (uploaded as a CI artifact, extending the perf
trajectory started by the distributor bench).

Acceptance gates (ISSUE 5): the recipe lock loses no wakeups (every
acquisition attempt inside the window is eventually granted) and wakes at
most one waiter per release; its FIFO grant order keeps Jain fairness
near 1.

``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs;
``FK_BENCH_JSON`` overrides the JSON output path.
"""

import json
import os

from repro.analysis import render_table
from repro.cloud import Cloud, OpContext
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService, recipes
from repro.primitives import TimedLock
from repro.sim.kernel import AllOf

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
JSON_PATH = os.environ.get("FK_BENCH_JSON", "BENCH_recipe_lock.json")
N_CLIENTS = 6
HOLD_MS = 20.0
WINDOW_MS = 20_000.0 if SMOKE else 120_000.0
#: A waiter stuck longer than this while the window is still open counts
#: as a lost wakeup (far beyond the worst-case full-queue rotation).
LOST_WAKEUP_TIMEOUT_MS = 60_000.0
SEED = 2024


def jain_index(counts):
    """Jain's fairness index: 1.0 = perfectly even shares."""
    values = [float(c) for c in counts]
    total = sum(values)
    if total == 0:
        return 0.0
    return total * total / (len(values) * sum(v * v for v in values))


def _run_recipe_lock():
    cloud = Cloud.aws(seed=SEED)
    service = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig())
    env = cloud.env
    end = cloud.now + WINDOW_MS
    counts = {f"w{i}": 0 for i in range(N_CLIENTS)}
    lost = {"n": 0}
    locks = []

    def worker(name):
        client = service.connect()
        lock = recipes.Lock(client, "/locks/hot", identifier=name)
        locks.append(lock)
        while env.now < end:
            ok = yield from lock.co_acquire(
                timeout_ms=LOST_WAKEUP_TIMEOUT_MS)
            if not ok:
                if env.now < end:
                    lost["n"] += 1
                continue
            counts[name] += 1
            yield env.timeout(HOLD_MS)
            yield from lock.co_release()

    procs = [env.process(worker(f"w{i}")) for i in range(N_CLIENTS)]
    cloud.run(until=AllOf(env, procs))
    acquisitions = sum(counts.values())
    wake_ups = sum(lock.wake_ups for lock in locks)
    elapsed_s = (cloud.now if cloud.now > WINDOW_MS else WINDOW_MS) / 1000.0
    return {
        "acquisitions": acquisitions,
        "per_client": counts,
        "throughput_per_s": acquisitions / elapsed_s,
        "jain_fairness": jain_index(counts.values()),
        "wake_ups": wake_ups,
        "wakeups_per_release": wake_ups / max(acquisitions, 1),
        "lost_wakeups": lost["n"],
        "cost_usd": cloud.meter.total,
    }


def _run_timed_lock():
    """Figure 6b's locked protocol, pointed at ONE contended key."""
    cloud = Cloud.aws(seed=SEED)
    kv = cloud.kv()
    kv.create_table("t", capacity_per_s=cloud.profile.kv_capacity_per_s)
    cloud.run_process(kv.put_item(OpContext(), "t", "hot", {"v": 0}))
    lock = TimedLock(kv, "t", max_hold_ms=30_000)
    env = cloud.env
    end = cloud.now + WINDOW_MS
    counts = {f"w{i}": 0 for i in range(N_CLIENTS)}
    retries = {"n": 0}

    def worker(name):
        ctx = OpContext()
        while env.now < end:
            handle = yield from lock.acquire(ctx, "hot")
            if handle is None:
                # Try-lock semantics: no queue, no wake-up — spin.
                retries["n"] += 1
                yield env.timeout(10.0)
                continue
            counts[name] += 1
            yield env.timeout(HOLD_MS)
            yield from lock.release(ctx, handle)

    procs = [env.process(worker(f"w{i}")) for i in range(N_CLIENTS)]
    cloud.run(until=AllOf(env, procs))
    acquisitions = sum(counts.values())
    elapsed_s = (cloud.now if cloud.now > WINDOW_MS else WINDOW_MS) / 1000.0
    return {
        "acquisitions": acquisitions,
        "per_client": counts,
        "throughput_per_s": acquisitions / elapsed_s,
        "jain_fairness": jain_index(counts.values()),
        "failed_tries": retries["n"],
        "cost_usd": cloud.meter.total,
    }


def run():
    recipe = _run_recipe_lock()
    timed = _run_timed_lock()
    print()
    print(render_table(
        ["lock", "handoffs/s", "Jain fairness", "retry waste",
         "wake-ups/release", "lost wakeups"],
        [
            ["recipe (FIFO queue)", f"{recipe['throughput_per_s']:.2f}",
             f"{recipe['jain_fairness']:.3f}", "0",
             f"{recipe['wakeups_per_release']:.2f}",
             str(recipe["lost_wakeups"])],
            ["timed (try-lock)", f"{timed['throughput_per_s']:.2f}",
             f"{timed['jain_fairness']:.3f}", str(timed["failed_tries"]),
             "n/a", "n/a"],
        ],
        title=f"Lock contention: {N_CLIENTS} clients, one resource, "
              f"{WINDOW_MS / 1000:.0f}s window"))
    payload = {
        "bench": "bench_recipe_lock",
        "clients": N_CLIENTS,
        "hold_ms": HOLD_MS,
        "window_ms": WINDOW_MS,
        "recipe_lock": {k: v for k, v in recipe.items() if k != "per_client"},
        "timed_lock": {k: v for k, v in timed.items() if k != "per_client"},
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {JSON_PATH}")
    return recipe, timed


def test_recipe_lock_contention(benchmark):
    recipe, timed = benchmark.pedantic(run, rounds=1, iterations=1)
    # Liveness: the lock genuinely circulates under contention.
    assert recipe["acquisitions"] >= N_CLIENTS
    assert all(c > 0 for c in recipe["per_client"].values())
    # No lost wakeups: nobody starved waiting on a free lock.
    assert recipe["lost_wakeups"] == 0
    # Herd-free: at most one waiter woken per release.
    assert recipe["wake_ups"] <= recipe["acquisitions"]
    # FIFO grants keep shares even.
    assert recipe["jain_fairness"] >= 0.9
    # The storage try-lock burns conditional writes on contention; the
    # queue lock burns none (that is the recipe's efficiency story even
    # though each handoff crosses the full coordination pipeline).
    assert timed["failed_tries"] > 0


if __name__ == "__main__":
    run()
