"""Table 7c: end-to-end invocation latency on GCP.

Direct Cloud Functions invocation vs Pub/Sub (unordered) vs Pub/Sub with
ordered delivery, 64 B and 64 kB payloads.  Shape checks: unordered
Pub/Sub beats direct invocation; ordered delivery adds >150 ms — the
opposite ranking from AWS, where the FIFO queue was the fastest path.
"""

from repro.analysis import render_table, summarize
from repro.cloud import Cloud, OpContext

REPS = 200
SIZES = {"64B": 0.0625, "64kB": 64.0}


def _reply_handler(cloud, replies):
    def handler(fctx, payload):
        yield fctx.env.timeout(0.1)
        latency = cloud.profile.tcp_reply.sample(cloud.rng.stream("tcp"), 0.0)
        yield fctx.env.timeout(latency)
        replies.append(fctx.env.now)
        return None
    return handler


def _measure(cloud, send_one, replies, reps=REPS):
    samples = []
    for _ in range(reps):
        t0 = cloud.now
        n = len(replies)
        send_one()
        while len(replies) <= n:
            cloud.run(until=cloud.now + 50)
        samples.append(replies[-1] - t0)
    return summarize(samples)


def run():
    ctx = OpContext()
    results = {}
    for size_label, size_kb in SIZES.items():
        cloud = Cloud.gcp(seed=75)
        replies = []
        fn = cloud.deploy_function("d", _reply_handler(cloud, replies))
        cloud.env.run(until=cloud.runtime.invoke_direct(fn, None))
        results[("direct", size_label)] = _measure(
            cloud, lambda: cloud.runtime.invoke_direct(fn, None,
                                                       payload_kb=size_kb),
            replies)

        cloud = Cloud.gcp(seed=76)
        replies = []
        fn = cloud.deploy_function("p", _reply_handler(cloud, replies))
        q = cloud.standard_queue("p", concurrency=2)
        q.attach(fn)
        q.send_nowait(ctx, None, size_kb=size_kb)
        cloud.run(until=cloud.now + 3000)
        results[("pubsub", size_label)] = _measure(
            cloud, lambda: cloud.env.process(q.send(ctx, None, size_kb=size_kb)),
            replies)

        cloud = Cloud.gcp(seed=77)
        replies = []
        fn = cloud.deploy_function("o", _reply_handler(cloud, replies))
        q = cloud.fifo_queue("o")
        q.attach(fn)
        q.send_nowait(ctx, None, size_kb=size_kb)
        cloud.run(until=cloud.now + 3000)
        results[("pubsub_ordered", size_label)] = _measure(
            cloud, lambda: cloud.env.process(q.send(ctx, None, size_kb=size_kb)),
            replies)

    print()
    rows = [[path, size] + s.row()
            for (path, size), s in sorted(results.items())]
    print(render_table(["path", "payload", "min", "p50", "p90", "p95",
                        "p99", "max"], rows,
                       title="Table 7c: GCP invocation latency (ms)"))
    return results


def test_tab7c_invocation_gcp(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # Unordered Pub/Sub is faster than direct invocation on GCP.
    assert r[("pubsub", "64B")].p50 < r[("direct", "64B")].p50
    # Ordered delivery is the slow path: > 150 ms median, slower than direct.
    assert r[("pubsub_ordered", "64B")].p50 > 150
    assert r[("pubsub_ordered", "64B")].p50 > 2 * r[("direct", "64B")].p50
    # Direct ~83 ms median.
    assert 60 < r[("direct", "64B")].p50 < 110
