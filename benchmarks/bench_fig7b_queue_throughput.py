"""Figure 7b: throughput of function invocations via serverless queues.

Offered load is swept; the received-results rate is measured over a 10 s
window for SQS, SQS FIFO and DynamoDB Streams (64 B payloads).  Shape
checks: the FIFO queue saturates around 10^2 req/s (batch-of-10 restriction
+ single instance), while the unordered paths keep up via large batches.
"""

from repro.analysis import render_table
from repro.cloud import Cloud, OpContext, Set

OFFERED = (25, 50, 75, 100, 150, 200)
WINDOW_MS = 10_000.0


def _drive(cloud, send, offered_per_s, received):
    interval = 1000.0 / offered_per_s

    def producer():
        end = cloud.now + WINDOW_MS
        while cloud.now < end:
            send()
            yield cloud.env.timeout(interval)

    start_count = received[0]
    proc = cloud.env.process(producer())
    cloud.env.run(until=proc)
    cloud.run(until=cloud.now + 4000)  # drain
    return (received[0] - start_count) / (WINDOW_MS / 1000.0)


def _counting_handler(received, per_msg_ms=1.0):
    def handler(fctx, batch):
        yield fctx.env.timeout(per_msg_ms * len(batch))
        received[0] += len(batch)
        return None
    return handler


def run():
    ctx = OpContext()
    series = {"sqs": [], "sqs_fifo": [], "ddb_stream": []}
    for offered in OFFERED:
        # standard SQS
        cloud = Cloud.aws(seed=offered)
        received = [0]
        fn = cloud.deploy_function("h", _counting_handler(received))
        q = cloud.standard_queue("q", concurrency=4)
        q.attach(fn)
        series["sqs"].append(_drive(
            cloud, lambda: q.send_nowait(ctx, None, size_kb=0.0625),
            offered, received))

        # SQS FIFO
        cloud = Cloud.aws(seed=offered + 1000)
        received = [0]
        fn = cloud.deploy_function("h", _counting_handler(received))
        q = cloud.fifo_queue("q")
        q.attach(fn)
        series["sqs_fifo"].append(_drive(
            cloud, lambda: q.send_nowait(ctx, None, size_kb=0.0625),
            offered, received))

        # DynamoDB Streams
        cloud = Cloud.aws(seed=offered + 2000)
        received = [0]
        kv = cloud.kv()
        table = kv.create_table("t")
        fn = cloud.deploy_function("h", _counting_handler(received))
        cloud.stream_trigger("s", table, fn)
        i = [0]

        def stream_send():
            i[0] += 1
            cloud.env.process(kv.update_item(ctx, "t", f"k{i[0] % 50}",
                                             [Set("v", i[0])]))

        series["ddb_stream"].append(_drive(cloud, stream_send, offered, received))

    print()
    rows = [[OFFERED[i]] + [series[k][i] for k in ("sqs", "sqs_fifo", "ddb_stream")]
            for i in range(len(OFFERED))]
    print(render_table(["offered/s", "SQS", "SQS FIFO", "DDB Streams"],
                       rows, title="Figure 7b: queue-driven throughput (results/s)"))
    return series


def test_fig7b_queue_throughput(benchmark):
    series = benchmark.pedantic(run, rounds=1, iterations=1)
    fifo = series["sqs_fifo"]
    # FIFO keeps up at low rates...
    assert fifo[0] > 0.9 * OFFERED[0]
    # ...but saturates at the level of ~10^2 requests per second.
    assert fifo[-1] < 0.9 * OFFERED[-1]
    assert 80 < max(fifo) < 250
    # Unordered SQS sustains the highest offered rate via batching.
    assert series["sqs"][-1] > 0.9 * OFFERED[-1]
    # Streams also deliver everything (large batches), despite high latency.
    assert series["ddb_stream"][-1] > 0.8 * OFFERED[-1]
