"""Atomic multi() throughput/cost vs sequential single writes.

The paper's cost model (Section 5.3) is dominated by per-invocation
charges: every single write pays one session-queue message, one follower
pass and one leader-queue message.  A ``multi()`` amortizes all three —
N writes ride ONE queue message, ONE follower lock/validate/push/commit
cycle and ONE leader invocation — so batch commits attack exactly the
per-request cost and latency floor of the serverless design.

This bench writes the same logical workload (rounds of ``BATCH`` writes
to distinct nodes from one session) two ways — N pipelined single writes
vs one multi per round — and reports acknowledged writes/s and metered
cost per write, for ``leader_shards`` in {1, 4}.

Acceptance gates: a batch of 8 must beat sequential throughput by >= 2x,
and the shards=1 *single-op* pipeline must reproduce the seed-calibrated
baseline fingerprint exactly (the envelope redesign routes every write
through the new submission path — this pins it bit-for-bit).

``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from repro.analysis import render_table
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService, SetDataOp

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
BATCH = 8
ROUNDS = 4 if SMOKE else 24
PAYLOAD = b"x" * 256
SEED = 2024

#: Seed-calibrated fingerprint of the single-op write path (seed 4242,
#: default config == leader_shards=1): per-write txids, final data/stat,
#: virtual-clock end time and total metered cost.  CI fails when the
#: shards=1 single-op pipeline deviates from the seed behaviour.
SINGLE_OP_BASELINE = (
    (2, 3, 4, 5, 6, 7, 8, 9),   # txids of 8 sequential set_data
    b"v7",                      # final data
    8,                          # final version
    9,                          # final modified_tx
    11716.984292,               # virtual end time (ms)
    0.000181997381636,          # total metered cost ($)
)


def _deploy(shards):
    cloud = Cloud.aws(seed=SEED)
    service = FaaSKeeperService.deploy(
        cloud, FaaSKeeperConfig(leader_shards=shards))
    return cloud, service


def _setup_tree(client):
    client.create("/bench", b"")
    for i in range(BATCH):
        client.create(f"/bench/n{i}", b"")


def _drain(cloud, futures):
    deadline = cloud.now + 600_000
    while cloud.now < deadline and not all(f.done for f in futures):
        cloud.run(until=cloud.now + 1_000)
    return sum(1 for f in futures if f.done and f.event.ok)


def _run_sequential(shards):
    """ROUNDS x BATCH pipelined single writes from one session."""
    cloud, service = _deploy(shards)
    client = service.connect()
    _setup_tree(client)
    start, cost0 = cloud.now, cloud.meter.total
    futures = [client.set_data_async(f"/bench/n{i}", PAYLOAD)
               for _ in range(ROUNDS) for i in range(BATCH)]
    acked = _drain(cloud, futures)
    elapsed_s = (cloud.now - start) / 1000.0
    cost = cloud.meter.total - cost0
    return acked / max(elapsed_s, 1e-9), cost / max(acked, 1)


def _run_multi(shards):
    """The same logical writes, one atomic multi per round."""
    cloud, service = _deploy(shards)
    client = service.connect()
    _setup_tree(client)
    start, cost0 = cloud.now, cloud.meter.total
    futures = [client.multi_async(
        [SetDataOp(f"/bench/n{i}", PAYLOAD) for i in range(BATCH)])
        for _ in range(ROUNDS)]
    acked = _drain(cloud, futures) * BATCH
    elapsed_s = (cloud.now - start) / 1000.0
    cost = cloud.meter.total - cost0
    return acked / max(elapsed_s, 1e-9), cost / max(acked, 1)


def single_op_fingerprint(**config_kwargs):
    """Deterministic single-op workload fingerprint (the CI baseline)."""
    cloud = Cloud.aws(seed=4242)
    service = FaaSKeeperService.deploy(cloud,
                                       FaaSKeeperConfig(**config_kwargs))
    client = service.connect()
    client.create("/cfg", b"")
    txids = tuple(client.set_data("/cfg", f"v{i}".encode()).txid
                  for i in range(8))
    data, stat = client.get_data("/cfg")
    cloud.run(until=cloud.now + 10_000)
    return (txids, data, stat.version, stat.modified_tx,
            round(cloud.now, 6),
            round(sum(cloud.meter.by_service().values()), 15))


def run():
    out = {}
    for shards in (1, 4):
        seq_tput, seq_cost = _run_sequential(shards)
        multi_tput, multi_cost = _run_multi(shards)
        out[shards] = (seq_tput, seq_cost, multi_tput, multi_cost)
    rows = []
    for shards, (st, sc, mt, mc) in out.items():
        rows.append([shards, f"{st:.1f}", f"{mt:.1f}", f"{mt / st:.2f}x",
                     f"{sc * 1e6:.2f}", f"{mc * 1e6:.2f}",
                     f"{sc / mc:.2f}x"])
    print()
    print(render_table(
        ["shards", "seq writes/s", f"multi({BATCH}) writes/s", "speedup",
         "seq $/Mwrite", "multi $/Mwrite", "cost ratio"],
        rows, title=f"Atomic multi() vs sequential writes (batch={BATCH})"))
    return out


def test_multi_throughput(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for shards, (seq_tput, seq_cost, multi_tput, multi_cost) in out.items():
        # the acceptance gate: batches of 8 at >= 2x sequential throughput
        assert multi_tput >= 2.0 * seq_tput, (shards, multi_tput, seq_tput)
        # batching must also cut metered cost per write
        assert multi_cost < seq_cost, (shards, multi_cost, seq_cost)


def test_single_op_path_matches_seed_baseline():
    """The envelope redesign must not move the shards=1 single-op pipeline:
    same txids, results, virtual-clock timing and metered cost as the seed."""
    assert single_op_fingerprint() == SINGLE_OP_BASELINE
    assert single_op_fingerprint(leader_shards=1) == SINGLE_OP_BASELINE


if __name__ == "__main__":
    run()
