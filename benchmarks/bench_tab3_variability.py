"""Table 3: variability of function performance (2048 MB).

Percentile table (min/p50/p90/p95/p99) of the follower's total / lock /
push / commit and the leader's total / get-node / update-node / watch-query
segments at 4 B and 250 kB.  Shape checks: medians sit near the paper's
values; tails degrade most on queue pushes and S3 updates.
"""

from repro.analysis import render_table, summarize
from repro.analysis.bench import deploy_fk, label, segment_summary

REPS = 120
SIZES = (4, 250 * 1024)


def run():
    results = {}
    for size in SIZES:
        cloud, service, client = deploy_fk(seed=110, user_store="s3",
                                           function_memory_mb=2048)
        client.create("/n", b"")
        payload = b"x" * size
        for _ in range(REPS):
            client.set_data("/n", payload)
        cloud.run(until=cloud.now + 5000)
        fol = segment_summary(service.follower_fn, ("lock", "push", "commit"))
        lead = segment_summary(service.leader_fn,
                               ("get_node", "update_user", "watch_query"))
        fol["total"] = summarize(service.follower_fn.durations_ms)
        lead["total"] = summarize(service.leader_fn.durations_ms)
        results[size] = {"follower": fol, "leader": lead}

    print()
    rows = []
    for size in SIZES:
        for role in ("follower", "leader"):
            for name, s in results[size][role].items():
                rows.append([role, name, label(size),
                             round(s.min, 2), round(s.p50, 2),
                             round(s.p90, 2), round(s.p95, 2),
                             round(s.p99, 2)])
    print(render_table(
        ["function", "op", "size", "min", "p50", "p90", "p95", "p99"],
        rows, title="Table 3: function op percentiles, 2048 MB (ms)"))
    return results


def test_tab3_variability(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    small, big = r[4], r[250 * 1024]
    # Follower medians near the paper: lock ~8, push ~13 (4B) / ~72 (250kB),
    # commit ~8.
    assert 5 < small["follower"]["lock"].p50 < 12
    assert 9 < small["follower"]["push"].p50 < 20
    assert 45 < big["follower"]["push"].p50 < 100
    assert 5 < small["follower"]["commit"].p50 < 14
    # Leader: get-node ~5 ms; update-node ~42 (4B) to ~102+ (250kB).
    assert 3 < small["leader"]["get_node"].p50 < 8
    assert 30 < small["leader"]["update_user"].p50 < 60
    assert 75 < big["leader"]["update_user"].p50 < 140
    # Tail degradation strongest on push and update_user.
    push = big["follower"]["push"]
    assert push.p99 > 1.3 * push.p50
    upd = big["leader"]["update_user"]
    assert upd.p99 > 1.3 * upd.p50
    # Lock/commit are size-independent.
    assert abs(big["follower"]["lock"].p50 - small["follower"]["lock"].p50) < 4
