"""Write latency and throughput under seeded transient storage faults.

The self-healing storage layer's cost model: retries trade tail latency
for availability.  This bench drives the same ``set_data`` workload at
0 % / 1 % / 5 % injected fault rates (throttles, timeouts, connection
resets, partial writes on every storage endpoint) and reports per-rate
p50/p99 latency, throughput, and the retry-layer bookkeeping (faults
injected, retries spent, zero failed operations).

Acceptance gates: the 0 % run is bit-identical to a deployment with the
whole retry layer disabled (the layer is free when idle); every op
succeeds at every rate (availability); p50 stays close to fault-free
while p99 absorbs the backoff tail (graceful degradation, not collapse).

Emits machine-readable ``BENCH_storage_faults.json`` (uploaded as a CI
artifact).  ``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs;
``FK_BENCH_JSON`` overrides the JSON output path.
"""

import json
import os

from repro.analysis import render_table, summarize
from repro.analysis.bench import deploy_fk, timed

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
JSON_PATH = os.environ.get("FK_BENCH_JSON", "BENCH_storage_faults.json")
RATES = (0.0, 0.01, 0.05)
REPS = 40 if SMOKE else 120
SEED = 1337


def _run_workload(rate, retry_enabled=True):
    """One deployment at the given fault rate; returns (samples, stats)."""
    cloud, service, client = deploy_fk(
        seed=SEED, user_store="hybrid",
        storage_retry_enabled=retry_enabled,
        storage_faults=rate > 0, storage_fault_rate=rate)
    client.create("/bench", b"")
    payload = b"x" * 1024
    t0 = cloud.now
    samples = [timed(cloud, lambda: client.set_data("/bench", payload))
               for _ in range(REPS)]
    elapsed_s = (cloud.now - t0) / 1000.0
    snap = service.metrics_snapshot()
    injected = sum(i.total_injected() for i in service.storage_injectors)
    retries = sum(snap["fk_storage_retries_total"]["values"].values()) \
        if "fk_storage_retries_total" in snap else 0
    exhausted = sum(snap["fk_storage_retry_exhausted_total"]["values"]
                    .values()) if "fk_storage_retry_exhausted_total" in snap \
        else 0
    stats = {
        "throughput_ops_s": REPS / elapsed_s,
        "faults_injected": int(injected),
        "retries": int(retries),
        "exhausted": int(exhausted),
        "cost_usd": cloud.meter.total,
    }
    return samples, stats


def run():
    out = {}
    rows = []
    baseline_samples = None
    for rate in RATES:
        samples, stats = _run_workload(rate)
        if rate == 0.0:
            baseline_samples = samples
            # The layer must be invisible when no fault fires: same
            # virtual timings and same bill as retry disabled outright.
            off_samples, off_stats = _run_workload(0.0, retry_enabled=False)
            assert samples == off_samples, \
                "retry layer moved the fault-free fingerprint"
            assert stats["cost_usd"] == off_stats["cost_usd"]
        s = summarize(samples)
        out[f"{rate:g}"] = {
            "p50_ms": round(s.p50, 3),
            "p99_ms": round(s.p99, 3),
            "max_ms": round(s.max, 3),
            **{k: round(v, 6) if isinstance(v, float) else v
               for k, v in stats.items()},
        }
        rows.append([f"{100 * rate:g}%", round(s.p50, 1), round(s.p99, 1),
                     f"{stats['throughput_ops_s']:.2f}",
                     stats["faults_injected"], stats["retries"],
                     stats["exhausted"]])
    print()
    print(render_table(
        ["fault rate", "p50 ms", "p99 ms", "ops/s", "faults", "retries",
         "exhausted"],
        rows, title=f"set_data under injected storage faults ({REPS} ops, "
                    "hybrid store)"))
    payload = {
        "bench": "bench_storage_faults",
        "reps": REPS,
        "store": "hybrid",
        "series": out,
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {JSON_PATH}")
    return out, baseline_samples


def test_retries_degrade_gracefully(benchmark):
    out, _base = benchmark.pedantic(run, rounds=1, iterations=1)
    clean, faulty = out["0"], out["0.05"]
    # Availability: every op succeeded at every rate.
    for series in out.values():
        assert series["exhausted"] == 0, out
    # The matrix actually injected faults and the layer actually retried.
    assert out["0"]["faults_injected"] == 0
    assert faulty["faults_injected"] > 0
    assert faulty["retries"] >= faulty["faults_injected"] * 0.5
    # Graceful degradation: the median barely moves (most ops see no
    # fault), the tail absorbs the backoff, and nothing collapses.
    assert faulty["p50_ms"] < 2.0 * clean["p50_ms"], out
    assert faulty["p99_ms"] >= clean["p99_ms"], out
    assert faulty["p99_ms"] < 30.0 * clean["p99_ms"], out
    assert faulty["throughput_ops_s"] < clean["throughput_ops_s"]
    assert faulty["throughput_ops_s"] > 0.2 * clean["throughput_ops_s"], out


if __name__ == "__main__":
    run()
