"""Figure 13: heartbeat function performance and 24-hour cost.

Execution time of the heartbeat function versus number of monitored
clients, for memory allocations 128 MB - 2048 MB; plus the daily cost at
one invocation per minute.  Shape checks: execution time decreases with
the allocation; the daily cost stays a small fraction of a VM day-rate and
the allocation time under 0.2 % of the day.
"""

from repro.analysis import render_table, summarize
from repro.analysis.bench import deploy_fk
from repro.costmodel import MonitoringCostModel

CLIENTS = (1, 4, 16, 64)
MEMORIES = (128, 512, 2048)


def run():
    exec_times = {}
    for memory in MEMORIES:
        for n_clients in CLIENTS:
            cloud, service, _bootstrap = deploy_fk(
                seed=131, user_store="dynamodb", function_memory_mb=memory,
                heartbeat_period_ms=60_000)
            clients = [_bootstrap] + [service.connect()
                                      for _ in range(n_clients - 1)]
            for i, c in enumerate(clients):
                c.create(f"/eph-{i}", b"", ephemeral=True)
            before = len(service.heartbeat_fn.durations_ms)
            cloud.run(until=cloud.now + 12 * 60_000)
            samples = service.heartbeat_fn.durations_ms[before:]
            exec_times[(memory, n_clients)] = summarize(samples)

    print()
    rows = [[m, n, exec_times[(m, n)].p50, exec_times[(m, n)].p99]
            for m in MEMORIES for n in CLIENTS]
    print(render_table(["MB", "clients", "p50 ms", "p99 ms"], rows,
                       title="Figure 13 (left): heartbeat execution time"))

    model = MonitoringCostModel()
    cost_rows = []
    daily = {}
    for m in MEMORIES:
        for n in CLIENTS:
            cost = model.daily_cost(m, exec_times[(m, n)].p50, n)
            daily[(m, n)] = cost
            cost_rows.append([m, n, f"{100*cost:.3f}¢" if cost < 1 else cost,
                              f"{100*model.vm_price_fraction(m, exec_times[(m, n)].p50, n):.1f}%"])
    print(render_table(["MB", "clients", "$/day", "of t3.small"],
                       cost_rows,
                       title="Figure 13 (right): heartbeat cost over 24 h"))
    return exec_times, daily, model


def test_fig13_heartbeat(benchmark):
    exec_times, daily, model = benchmark.pedantic(run, rounds=1, iterations=1)
    # Execution time decreases with the memory allocation.
    for n in CLIENTS:
        assert exec_times[(128, n)].p50 > exec_times[(2048, n)].p50
    # More clients cost more time (scan + pings) but stay sub-second.
    for m in MEMORIES:
        assert exec_times[(m, 64)].p50 >= exec_times[(m, 1)].p50 * 0.8
        assert exec_times[(m, 64)].p50 < 600
    # Daily cost is a fraction of a VM: < 1 cent for most configurations.
    assert daily[(512, 16)] < 0.01
    # Allocation time under 0.2% of the day for the typical configuration.
    assert model.daily_allocation_fraction(exec_times[(512, 16)].p50) < 0.002
