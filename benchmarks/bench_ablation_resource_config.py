"""Resource-configuration ablation (Section 5.3.2, "Resource Configuration").

Two serverless-only knobs the paper explores:

* **ARM vs x86 Lambda** — ARM is slightly faster on the follower's small
  I/O but up to ~2x slower on the leader's large-payload processing, while
  billing ~20 % less per GB-second;
* **GCP decoupled CPU allocation** — 0.33 vCPU at 512 MB changes write
  latency by only a few percent (the functions are I/O-bound) while the
  CPU price share drops.
"""

from repro.analysis import render_table
from repro.analysis.bench import deploy_fk, label, sweep_write_latency

SIZES = (4, 250 * 1024)
REPS = 30


def run():
    lat = {}
    costs = {}
    leader_ms = {}
    for arch in ("x86", "arm"):
        cloud, service, client = deploy_fk(seed=140, user_store="s3",
                                           function_memory_mb=2048, arch=arch)
        lat[("aws", arch)] = sweep_write_latency(client, cloud, SIZES, reps=REPS)
        durs = sorted(service.leader_fn.durations_ms)
        leader_ms[arch] = durs[len(durs) // 2]
        costs[("aws", arch)] = {
            "follower": cloud.meter.service_total("fn:fk-follower"),
            "leader": cloud.meter.service_total("fn:fk-leader"),
        }
    for cpu in (1.0, 0.33):
        cloud, service, client = deploy_fk(seed=141, provider="gcp",
                                           user_store="s3",
                                           function_memory_mb=512,
                                           cpu_alloc=cpu)
        lat[("gcp", cpu)] = sweep_write_latency(client, cloud, SIZES, reps=REPS)

    print()
    rows = []
    for key, per_size in lat.items():
        for size in SIZES:
            rows.append([str(key), label(size), per_size[size].p50])
    print(render_table(["config", "size", "p50 ms"], rows,
                       title="Resource configuration ablation: write latency"))
    rows = [[str(k), round(v["follower"], 6), round(v["leader"], 6)]
            for k, v in costs.items()]
    print(render_table(["config", "follower $", "leader $"], rows,
                       title="Function cost by architecture"))
    print(f"leader median duration: x86 {leader_ms['x86']:.1f} ms, "
          f"arm {leader_ms['arm']:.1f} ms")
    return lat, costs, leader_ms


def test_ablation_resource_config(benchmark):
    lat, costs, leader_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    # ARM slows the leader function substantially on large payloads (the
    # paper saw slowdowns of up to 94% on the leader).
    assert leader_ms["arm"] > 1.15 * leader_ms["x86"]
    assert lat[("aws", "arm")][250 * 1024].p50 > \
        1.02 * lat[("aws", "x86")][250 * 1024].p50
    # Small writes are not hurt (slightly faster I/O on ARM).
    assert lat[("aws", "arm")][4].p50 < 1.15 * lat[("aws", "x86")][4].p50
    # ARM bills less per GB-second: with similar small-path durations the
    # follower's cost per invocation is lower.
    x86_follower = costs[("aws", "x86")]["follower"]
    arm_follower = costs[("aws", "arm")]["follower"]
    assert arm_follower < 1.05 * x86_follower
    # GCP CPU decoupling: 0.33 vCPU changes latency by only a few percent.
    full = lat[("gcp", 1.0)][4].p50
    third = lat[("gcp", 0.33)][4].p50
    assert abs(third - full) / full < 0.12
