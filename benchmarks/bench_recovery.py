"""Cold-start recovery latency: fuzzy snapshot + suffix vs full-log replay.

ZooKeeper bounds crash recovery with fuzzy snapshots: a restarting server
loads the newest snapshot and replays only the log suffix behind it.  The
FaaSKeeper port does the same for a lost user-store replica — the commit
log (``commit_log_enabled``) makes full-log replay *possible*, and
:meth:`SnapshotManager.take_snapshot` + :meth:`~SnapshotManager.compact`
make it *cheap*: recovery work becomes ``O(paths + suffix)`` instead of
``O(total writes)``.

This bench holds the path population fixed (so the snapshot size is a
constant) while the log grows, wipes the primary region's replica, and
measures cold recovery two ways per log length:

* **full replay** — no snapshot taken; every logged transaction replays.
* **snapshot** — snapshot + compaction before the last ``SUFFIX`` writes;
  recovery loads the per-path checkpoint and replays only the suffix.

Emits machine-readable ``BENCH_recovery.json`` (uploaded as a CI
artifact, next to ``BENCH_write_latency.json``).

Acceptance gates: at the largest log the snapshot path must beat full
replay; full-replay time must grow with the log while the snapshot path
stays bounded by the (constant) suffix, replaying exactly ``SUFFIX``
records at every log length.

``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs;
``FK_BENCH_JSON`` overrides the JSON output path.
"""

import json
import os

from repro.analysis import render_table
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from repro.faaskeeper.chaos import region_user_image, wipe_user_region

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
JSON_PATH = os.environ.get("FK_BENCH_JSON", "BENCH_recovery.json")
PATHS = 8                                  # fixed: snapshot size constant
SUFFIX = 6                                 # writes left behind the snapshot
LOG_LENGTHS = (16, 48) if SMOKE else (16, 64, 160)
SEED = 2024


def _measure(n_writes, use_snapshot):
    """Deploy, write ``n_writes`` updates over ``PATHS`` paths, wipe the
    primary replica, cold-recover it; returns (virtual ms, recovery stats)."""
    assert n_writes > SUFFIX
    cloud = Cloud.aws(seed=SEED)
    service = FaaSKeeperService.deploy(
        cloud, FaaSKeeperConfig(commit_log_enabled=True))
    client = service.connect()
    paths = [f"/n{i}" for i in range(PATHS)]
    for path in paths:
        client.create(path, b"init")
    for i in range(n_writes - SUFFIX):
        client.set_data(paths[i % PATHS], f"v{i}".encode())
    if use_snapshot:
        cloud.run_process(service.snapshots.take_snapshot(service.system_ctx))
        cloud.run_process(service.snapshots.compact(service.system_ctx))
    for i in range(SUFFIX):
        client.set_data(paths[i % PATHS], f"s{i}".encode())

    region = service.config.primary_region
    expected = {p: region_user_image(service, region, p) for p in paths}
    wipe_user_region(service, region)
    start = cloud.now
    stats = cloud.run_process(service.snapshots.recover_region(
        service.system_ctx, region, cold=True))
    elapsed = cloud.now - start
    for path in paths:  # recovery must actually reconstruct the replica
        got = region_user_image(service, region, path)
        assert got is not None and got.get("data") == \
            expected[path].get("data"), path
    return elapsed, stats


def run():
    out = {}
    rows = []
    for n in LOG_LENGTHS:
        full_ms, full_stats = _measure(n, use_snapshot=False)
        snap_ms, snap_stats = _measure(n, use_snapshot=True)
        out[n] = {
            "full_replay_ms": round(full_ms, 3),
            "snapshot_ms": round(snap_ms, 3),
            "full_replayed": full_stats["replayed"],
            "snapshot_loaded": snap_stats["loaded"],
            "snapshot_replayed": snap_stats["replayed"],
        }
        rows.append([n, f"{full_ms:.0f}", full_stats["replayed"],
                     f"{snap_ms:.0f}",
                     f"{snap_stats['loaded']}+{snap_stats['replayed']}",
                     f"{100 * (1 - snap_ms / full_ms):.0f}%"])
    print()
    print(render_table(
        ["log len", "replay ms", "replayed", "snapshot ms",
         "loaded+suffix", "cut"],
        rows,
        title=f"Cold recovery: snapshot+suffix vs full replay, "
              f"{PATHS} paths, suffix={SUFFIX}"))
    payload = {
        "bench": "bench_recovery",
        "paths": PATHS,
        "suffix": SUFFIX,
        "series": {f"log{n}": series for n, series in out.items()},
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {JSON_PATH}")
    return out


def test_snapshot_bounds_cold_recovery(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    longest, shortest = max(LOG_LENGTHS), min(LOG_LENGTHS)
    # Snapshot recovery beats replaying the whole log once the log is
    # meaningfully longer than the path population.
    assert out[longest]["snapshot_ms"] < out[longest]["full_replay_ms"], out
    # Full replay is O(total writes): it replays every logged txid and its
    # cost grows with the log.
    assert out[longest]["full_replayed"] > out[shortest]["full_replayed"]
    assert out[longest]["full_replay_ms"] > out[shortest]["full_replay_ms"]
    for n in LOG_LENGTHS:
        # The snapshot path is O(paths + suffix): a constant-size load plus
        # exactly the SUFFIX records behind the snapshot, however long the
        # log was before compaction.
        assert out[n]["snapshot_replayed"] == SUFFIX, out
        assert out[n]["snapshot_loaded"] >= PATHS, out
    # ...so its recovery time is bounded: growing the log 10x must not
    # grow snapshot recovery more than the suffix jitter (50%).
    assert out[longest]["snapshot_ms"] <= 1.5 * out[shortest]["snapshot_ms"], out


if __name__ == "__main__":
    run()
