"""Table 6a: latency of synchronization primitives on DynamoDB.

1000 warm repetitions of: a regular write (1 kB / 64 kB), timed-lock
acquire and release (1 kB / 64 kB items), an atomic counter increment, and
atomic list appends (1 item / 1024 x 1 kB items).  Shape checks: the lock
adds ~2.5 ms over a regular write at the median; the item size dominates
the spread; list appends scale with payload.
"""

import dataclasses

from repro.analysis import render_table, summarize
from repro.cloud import Cloud, OpContext, Set
from repro.cloud.kvstore import KeyValueStore
from repro.primitives import AtomicCounter, AtomicList, TimedLock

REPS = 1000


def run():
    cloud = Cloud.aws(seed=66)
    # The 1024 x 1 kB append exceeds DynamoDB's real 400 kB cap; the paper
    # measured it regardless (the API accepts the update until the item
    # limit bites), so the bench lifts the cap for this one table.
    profile = dataclasses.replace(cloud.profile, kv_item_limit_kb=4096.0)
    kv = KeyValueStore(cloud.env, profile, cloud.meter,
                       cloud.rng.stream("bench6a"))
    kv.create_table("t")
    ctx = OpContext()
    lock = TimedLock(kv, "t", max_hold_ms=10_000)
    results = {}

    def measure(name, flow_factory, reps=REPS):
        samples = []
        for _ in range(reps):
            t0 = cloud.now
            cloud.run_process(flow_factory())
            samples.append(cloud.now - t0)
        results[name] = summarize(samples)

    for size_label, size in (("1kB", 1024), ("64kB", 64 * 1024)):
        item = {"data": b"x" * size}
        cloud.run_process(kv.put_item(ctx, "t", f"n{size}", item))
        measure(f"regular write {size_label}",
                lambda k=f"n{size}", it=item: kv.put_item(ctx, "t", k, it))

        def acquire_release(key):
            handle = yield from lock.acquire(ctx, key)
            assert handle is not None
            t_mid = cloud.now
            ok = yield from lock.release(ctx, handle)
            assert ok
            return t_mid

        # measure acquire and release separately
        acq, rel = [], []
        for _ in range(REPS):
            t0 = cloud.now
            mid = cloud.run_process(acquire_release(f"n{size}"))
            acq.append(mid - t0)
            rel.append(cloud.now - mid)
        results[f"lock acquire {size_label}"] = summarize(acq)
        results[f"lock release {size_label}"] = summarize(rel)

    counter = AtomicCounter(kv, "t", "cnt")
    measure("atomic counter 8B", lambda: counter.increment(ctx))

    lst1 = AtomicList(kv, "t", "lst1")
    measure("list append 1", lambda: lst1.append(ctx, ["x" * 1024]))

    big = ["x" * 1024 for _ in range(1024)]
    lstN = AtomicList(kv, "t", "lstN")

    def append_big():
        yield from lstN.pop_head(ctx, 2048)
        t0 = cloud.now
        yield from lstN.append(ctx, big)
        return cloud.now - t0

    samples = [cloud.run_process(append_big()) for _ in range(100)]
    results["list append 1024"] = summarize(samples)

    print()
    rows = [[name] + s.row() for name, s in results.items()]
    print(render_table(
        ["primitive", "min", "p50", "p90", "p95", "p99", "max"], rows,
        title="Table 6a: synchronization primitive latency (ms)"))
    return results


def test_tab6a_sync_primitives(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # Lock acquire adds ~2.5 ms over the regular write median (1 kB row).
    delta = r["lock acquire 1kB"].p50 - r["regular write 1kB"].p50
    assert 1.5 < delta < 4.0
    # Regular write medians sit near the paper's 4.35 / 66.3 ms.
    assert 3.8 < r["regular write 1kB"].p50 < 5.5
    assert 55 < r["regular write 64kB"].p50 < 80
    # Atomic counter ~5.6 ms median.
    assert 4.5 < r["atomic counter 8B"].p50 < 7.0
    # Large list appends near the paper's ~76 ms median.
    assert 50 < r["list append 1024"].p50 < 110
    # Tails: max an order of magnitude above p50 somewhere (outlier model).
    assert r["regular write 1kB"].max > 5 * r["regular write 1kB"].p50
