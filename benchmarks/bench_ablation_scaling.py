"""Horizontal-scaling ablation (Section 4.3 + Requirements #4/#9).

FaaSKeeper "delegates requests from different client sessions to
concurrently operating functions" — one FIFO queue + follower per session,
so follower-side work parallelizes with the session count.  Aggregate
write throughput, however, saturates at the single leader instance, whose
user-store commits must be serialized for Z3 and whose FIFO queue delivers
discrete batches (the inefficiency Requirements #4 and #9 call out).

The bench shows both effects: 1 -> 2 sessions speeds up aggregate writes;
beyond that the serialized leader pipeline flattens the curve.
"""

from repro.analysis import render_table
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService

SESSIONS = (1, 2, 4, 8)
WRITES_PER_SESSION = 60
WINDOW_MS = 20_000.0


def _throughput(n_sessions, seed):
    cloud = Cloud.aws(seed=seed)
    service = FaaSKeeperService.deploy(
        cloud, FaaSKeeperConfig(user_store="dynamodb"))
    clients = [service.connect() for _ in range(n_sessions)]
    for i, c in enumerate(clients):
        c.create(f"/s{i}", b"")
    start = cloud.now
    futures = []
    for i, c in enumerate(clients):
        for k in range(WRITES_PER_SESSION):
            futures.append(c.set_data_async(f"/s{i}", f"v{k}".encode()))
    # advance until the last acknowledgment lands
    deadline = start + 600_000
    while not all(f.done for f in futures):
        assert cloud.now < deadline, "writes did not drain"
        cloud.run(until=cloud.now + 500)
    elapsed_s = (cloud.now - start) / 1000.0
    return len(futures), elapsed_s


def run():
    rows = []
    rates = {}
    for n in SESSIONS:
        count, elapsed = _throughput(n, seed=150 + n)
        # elapsed includes the drain; approximate rate over the busy period
        rate = count / elapsed
        rates[n] = rate
        rows.append([n, count, round(elapsed, 1), round(rate, 1)])
    print()
    print(render_table(["sessions", "writes", "busy s", "writes/s"], rows,
                       title="Horizontal scaling: aggregate write throughput"))
    return rates


def test_ablation_scaling(benchmark):
    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    # Follower parallelism helps: two sessions beat one substantially.
    assert rates[2] > 1.3 * rates[1]
    # ...but the single serialized leader saturates the aggregate rate
    # (Requirements #4/#9: batched queues + no I/O-compute decoupling).
    assert rates[8] < 3.0 * rates[1]
    assert rates[8] >= 0.95 * rates[4]  # flat once leader-bound
