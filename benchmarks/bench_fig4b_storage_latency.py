"""Figure 4b: latency of read/write operations in AWS storage services.

Sweeps payload size for S3 and DynamoDB, intra-region and inter-region.
Shape checks: latency grows with size, writes are slower than reads on
DynamoDB for large items, and cross-region access pays a >100 ms penalty.
"""

from repro.analysis import render_table, summarize
from repro.cloud import Cloud, OpContext

SIZES_KB = (1, 50, 100, 200, 380)  # top size below the 400 kB item cap
REPS = 60


def _measure(cloud, op):
    t0 = cloud.now
    cloud.run_process(op())
    return cloud.now - t0


def run():
    cloud = Cloud.aws(seed=4)
    s3 = cloud.objectstore()
    s3.create_bucket("b")
    kv = cloud.kv()
    kv.create_table("t")
    local = OpContext(region="us-east-1")
    remote = OpContext(region="eu-central-1")

    results = {}
    for size_kb in SIZES_KB:
        payload = b"x" * (size_kb * 1024)
        item = {"data": payload}
        for name, ctx in (("local", local), ("inter", remote)):
            cloud.run_process(s3.put_object(local, "b", "k", payload))
            results[("s3", "write", name, size_kb)] = summarize([
                _measure(cloud, lambda: s3.put_object(ctx, "b", "k", payload))
                for _ in range(REPS)])
            results[("s3", "read", name, size_kb)] = summarize([
                _measure(cloud, lambda: s3.get_object(ctx, "b", "k"))
                for _ in range(REPS)])
            if size_kb <= 400:
                cloud.run_process(kv.put_item(local, "t", "k", item))
                results[("ddb", "write", name, size_kb)] = summarize([
                    _measure(cloud, lambda: kv.put_item(ctx, "t", "k", item))
                    for _ in range(REPS)])
                results[("ddb", "read", name, size_kb)] = summarize([
                    _measure(cloud, lambda: kv.get_item(ctx, "t", "k"))
                    for _ in range(REPS)])

    print()
    rows = []
    for (svc, op, region, size_kb), s in sorted(results.items()):
        rows.append([svc, op, region, size_kb, s.p50, s.p99])
    print(render_table(["service", "op", "region", "kB", "p50 ms", "p99 ms"],
                       rows, title="Figure 4b: storage latency vs size"))
    return results


def test_fig4b_storage_latency(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Efficient reads/writes on large user data in S3: sub-linear growth.
    assert results[("s3", "read", "local", 380)].p50 < 60
    # DynamoDB: slow writes on large user data (the paper's annotation).
    assert results[("ddb", "write", "local", 380)].p50 > \
        3 * results[("s3", "write", "local", 380)].p50
    # Penalty on cross-region access: > 100 ms extra.
    for svc in ("s3", "ddb"):
        assert results[(svc, "read", "inter", 100)].p50 > \
            results[(svc, "read", "local", 100)].p50 + 100
    # Reads cheaper than writes on both services at 400 kB.
    assert results[("ddb", "read", "local", 380)].p50 < \
        results[("ddb", "write", "local", 380)].p50
