"""Asynchronous distributor stage: client-perceived write latency.

The inline leader (Algorithm 2) acknowledges a write only after replicating
it into every region's user store and finishing the watch round trips, so
client-perceived latency grows with the region count.  With
``distributor_enabled`` + ``ack_policy="on_commit"`` the leader acks right
after commit verification and per-region distributor functions own the
replication, the watch fan-out and the ``replicated_tx`` visibility
watermark (read-your-writes rides the watermark instead of the ack).

This bench measures p50/p99 ``set_data`` latency at ``regions=2`` for the
distributor off vs. on at 1 and 4 leader shards, and emits the results as
machine-readable ``BENCH_write_latency.json`` (uploaded as a CI artifact —
the start of the perf trajectory).

Acceptance gates: the distributor must improve p50 by >= 30% at both shard
counts, and the distributor-OFF deployment must reproduce the pre-PR
write-path fingerprint bit-for-bit (default config and ``regions=2``).

``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs;
``FK_BENCH_JSON`` overrides the JSON output path.
"""

import json
import os

from repro.analysis import render_table, summarize
from repro.analysis.bench import timed
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
JSON_PATH = os.environ.get("FK_BENCH_JSON", "BENCH_write_latency.json")
REGIONS = ["us-east-1", "eu-west-1"]
SHARDS = (1, 4)
REPS = 20 if SMOKE else 120
PAYLOAD = b"x" * 1024
SEED = 2024

#: Pre-PR write-path fingerprint (seed 4242): per-write virtual-clock
#: latencies of 2 creates + 10 set_data + 1 delete, end time and total
#: metered cost.  CI fails when the distributor-off pipeline deviates from
#: the pre-distributor behaviour.
WRITE_BASELINE_DEFAULT = (
    (594.734613, 273.231794, 99.189123, 138.14087, 123.263926, 129.502453,
     109.023305, 118.588677, 148.810069, 196.925959, 224.894871, 130.758786,
     207.513034),
    7564.033088,                # virtual end time (ms)
    0.000276963244766,          # total metered cost ($)
)
WRITE_BASELINE_TWO_REGIONS = (
    (831.697752, 489.937138, 381.545728, 411.865452, 437.345661, 399.186941,
     417.349508, 410.060567, 455.748057, 428.742089, 532.123869, 401.584965,
     408.164114),
    11385.03898,
    0.000491586459251,
)
WRITE_BASELINE_FOUR_SHARDS = (
    (595.311145, 209.461507, 140.501635, 167.978419, 127.672989, 152.434513,
     119.628862, 162.061447, 148.966207, 191.450438, 786.18023, 145.807062,
     149.491375),
    8166.401434,
    0.000279897952315,
)


def write_fingerprint(**config_kwargs):
    """Deterministic write-path fingerprint (the CI baseline)."""
    cloud = Cloud.aws(seed=4242)
    service = FaaSKeeperService.deploy(cloud,
                                       FaaSKeeperConfig(**config_kwargs))
    client = service.connect()
    lat = [round(timed(cloud, lambda: client.create("/wf", b"")), 6),
           round(timed(cloud, lambda: client.create("/wf/kid", b"seed")), 6)]
    for _ in range(10):
        lat.append(round(
            timed(cloud, lambda: client.set_data("/wf", b"payload" * 8)), 6))
    lat.append(round(timed(cloud, lambda: client.delete("/wf/kid")), 6))
    cloud.run(until=cloud.now + 5_000)
    return (tuple(lat), round(cloud.now, 6),
            round(sum(cloud.meter.by_service().values()), 15))


def _measure(shards, distributor):
    cloud = Cloud.aws(seed=SEED)
    config = FaaSKeeperConfig(
        regions=list(REGIONS), leader_shards=shards,
        distributor_enabled=distributor,
        ack_policy="on_commit" if distributor else "on_replicate")
    service = FaaSKeeperService.deploy(cloud, config)
    client = service.connect()
    client.create("/bench", b"")
    client.create("/bench/hot", b"")
    samples = [timed(cloud, lambda: client.set_data("/bench/hot", PAYLOAD))
               for _ in range(REPS)]
    cloud.run(until=cloud.now + 30_000)  # drain the distributor queues
    # Sanity: the last acknowledged write must be readable (the visibility
    # watermark, not the ack, carries read-your-writes).
    data, _stat = client.get_data("/bench/hot")
    assert data == PAYLOAD
    return summarize(samples)


def run():
    out = {}
    rows = []
    for shards in SHARDS:
        off = _measure(shards, distributor=False)
        on = _measure(shards, distributor=True)
        out[shards] = {"off": off, "on": on}
        rows.append([shards, f"{off.p50:.1f}", f"{off.p99:.1f}",
                     f"{on.p50:.1f}", f"{on.p99:.1f}",
                     f"{100 * (1 - on.p50 / off.p50):.0f}%"])
    print()
    print(render_table(
        ["shards", "inline p50", "inline p99", "distributor p50",
         "distributor p99", "p50 cut"],
        rows,
        title=f"Distributor stage: set_data latency, regions={len(REGIONS)}"))
    payload = {
        "bench": "bench_distributor_latency",
        "regions": len(REGIONS),
        "reps": REPS,
        "payload_bytes": len(PAYLOAD),
        "series": {
            f"shards{shards}": {
                tag: {"p50_ms": round(s.p50, 3), "p99_ms": round(s.p99, 3)}
                for tag, s in series.items()
            }
            for shards, series in out.items()
        },
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {JSON_PATH}")
    return out


def test_distributor_write_latency(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for shards, series in out.items():
        # The acceptance gate: >= 30% lower client-perceived p50 once
        # commit and distribution are separate stages.
        assert series["on"].p50 <= 0.70 * series["off"].p50, (shards, series)
        assert series["on"].p99 < series["off"].p99, (shards, series)


def test_distributor_off_matches_pre_pr_baseline():
    """The distributor wiring must not move the inline pipeline: every
    distributor-off configuration — the default, the two-region and the
    PR1 sharded one — reproduces its pre-PR write fingerprint bit-for-bit
    (virtual timings, end time and metered cost)."""
    assert write_fingerprint() == WRITE_BASELINE_DEFAULT
    assert write_fingerprint(distributor_enabled=False) == WRITE_BASELINE_DEFAULT
    assert write_fingerprint(regions=list(REGIONS)) == WRITE_BASELINE_TWO_REGIONS
    assert write_fingerprint(leader_shards=4) == WRITE_BASELINE_FOUR_SHARDS


if __name__ == "__main__":
    run()
