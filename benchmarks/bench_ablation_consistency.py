"""Consistency ablation (Section 3.3): why system storage needs strong reads.

The paper rules out eventually consistent reads because they break
read-your-write and write-dependency ordering (Z2/Z3).  This ablation
measures the stale-read rate of the simulated key-value store under both
consistency modes and demonstrates a concrete Z3 violation that strong
reads prevent: observing version k, then version k-1.
"""

from repro.analysis import render_table
from repro.cloud import Cloud, OpContext, Set

ROUNDS = 400


def run():
    cloud = Cloud.aws(seed=160)
    kv = cloud.kv()
    kv.create_table("t")
    ctx = OpContext()

    stats = {"strong": {"stale": 0, "rollback": 0},
             "eventual": {"stale": 0, "rollback": 0}}

    def experiment(consistent, tag):
        last_seen = 0

        def flow():
            nonlocal last_seen
            for i in range(1, ROUNDS + 1):
                yield from kv.update_item(ctx, "t", tag, [Set("v", i)])
                item = yield from kv.get_item(ctx, "t", tag,
                                              consistent=consistent)
                seen = item["v"]
                if seen != i:
                    stats[tag]["stale"] += 1
                if seen < last_seen:
                    stats[tag]["rollback"] += 1
                last_seen = max(last_seen, seen)

        cloud.run_process(flow())

    experiment(True, "strong")
    experiment(False, "eventual")

    print()
    rows = [[mode, f"{s['stale']}/{ROUNDS}", s["rollback"]]
            for mode, s in stats.items()]
    print(render_table(["read mode", "stale read-your-write", "rollbacks"],
                       rows, title="Consistency ablation (Section 3.3)"))
    return stats


def test_ablation_consistency(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Strong reads: never stale, never roll back (the Z2/Z3 requirement).
    assert stats["strong"]["stale"] == 0
    assert stats["strong"]["rollback"] == 0
    # Eventual reads violate read-your-write a substantial fraction of the
    # time right after a write -- disqualifying them for system storage.
    assert stats["eventual"]["stale"] > 0.1 * ROUNDS
