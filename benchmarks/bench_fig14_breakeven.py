"""Figure 14: cost ratio of ZooKeeper and FaaSKeeper.

Regenerates all six heatmaps (standard + hybrid storage at 100/90/80 %
reads) for the request-per-day sweep and the 3/9-VM deployments, and
checks the paper's printed cells and break-even claims.
"""

from repro.analysis import render_heatmap
from repro.costmodel import (
    FIGURE14_DEPLOYMENTS,
    FIGURE14_REQUESTS,
    BreakevenModel,
)

ROW_LABELS = [f"{n} x {vm}" for n, vm in FIGURE14_DEPLOYMENTS]
COL_LABELS = ["100K", "500K", "1M", "2M", "5M"]


def run():
    model = BreakevenModel()
    results = {}
    print()
    for read_frac in (1.0, 0.9, 0.8):
        for hybrid in (False, True):
            key = (read_frac, hybrid)
            matrix = model.matrix(read_frac, hybrid)
            results[key] = matrix
            mode = "hybrid" if hybrid else "standard"
            print(render_heatmap(
                ROW_LABELS, COL_LABELS, matrix,
                title=f"Figure 14: ZK/FK cost ratio, {int(read_frac*100)}% "
                      f"reads, {mode} storage (requests per day)"))
            print()
    print(f"break-even (3 x t3.small, 100% reads): standard "
          f"{model.breakeven_requests(1.0, False)/1e6:.2f}M req/day, "
          f"hybrid {model.breakeven_requests(1.0, True)/1e6:.2f}M req/day")
    return results


def test_fig14_breakeven(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    std100 = results[(1.0, False)]
    hyb100 = results[(1.0, True)]
    # Paper's printed first rows (3 x t3.small).
    expected_std = [37.44, 7.49, 3.74, 1.87, 0.75]
    expected_hyb = [59.90, 11.98, 5.99, 3.00, 1.20]
    for got, want in zip(std100[0], expected_std):
        assert abs(got - want) / want < 0.03
    for got, want in zip(hyb100[0], expected_hyb):
        assert abs(got - want) / want < 0.03
    # Headline claim: savings of up to ~719x (9 x t3.large, 100K, hybrid).
    assert 680 < hyb100[5][0] < 760
    # And up to ~110x for the standard+small corner at 100K/day.
    assert std100[0][0] > 30
