"""Session-plane scale-out: 100k-session swarm, flat vs. sharded.

Drives :class:`repro.faaskeeper.swarm.SessionSwarm` against two
deployments of the same spec — ``session_plane_shards=1`` (the paper's
flat session plane) and ``session_plane_shards=8`` — and reports
p50/p99/p999 for the four swarm metric families: heartbeat-sweep latency,
watch fan-out latency, eviction lag and session-registration throughput.

Acceptance gates: the swarm sustains the full session population live
through the run (registration minus the deliberate churn cohorts); all
four metric families emit samples; and at ≥ 4 shards the heartbeat-sweep
p99 beats the flat plane by ≥ 3× — the partitioned scan owning 1/N of the
table (and a phase-staggered cron) is what keeps sweep latency flat as
the fleet grows.

Emits machine-readable ``BENCH_swarm.json`` (uploaded as a CI artifact).
``FK_BENCH_SMOKE=1`` drops to a 5k-session smoke swarm (and a relaxed
2× gate — slice scans amortize less at small populations);
``FK_SWARM_SESSIONS`` overrides the population outright and
``FK_BENCH_JSON`` the JSON output path.
"""

import json
import os

from repro.analysis import render_table
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from repro.faaskeeper.swarm import SessionSwarm, SwarmSpec

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
JSON_PATH = os.environ.get("FK_BENCH_JSON", "BENCH_swarm.json")
SESSIONS = int(os.environ.get("FK_SWARM_SESSIONS", "0")) or \
    (5_000 if SMOKE else 100_000)
SHARDS = 8
#: Sharded sweep p99 must beat flat by this factor (relaxed in smoke:
#: a 5k-session scan is too cheap for the slice win to reach 3x).
GATE_FACTOR = 2.0 if SESSIONS < 50_000 else 3.0
SEED = 4242


def _spec() -> SwarmSpec:
    return SwarmSpec(
        sessions=SESSIONS,
        registration_wave=max(1_000, SESSIONS // 20),
        watchers=min(200, SESSIONS // 10),
        watch_paths=10,
        writers=min(50, SESSIONS // 20),
        lock_contenders=6,
        graceful_closes=min(200, SESSIONS // 10),
        silent=min(200, SESSIONS // 10),
        seed=SEED,
    )


def _run_plane(shards: int):
    cloud = Cloud.aws(seed=SEED)
    service = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(
        user_store="mem", session_plane_shards=shards))
    return SessionSwarm(cloud, service, _spec()).run()


def run():
    reports = {"flat": _run_plane(1), "sharded": _run_plane(SHARDS)}

    rows = []
    for label, report in reports.items():
        for family, stats in report["metrics"].items():
            rows.append([label, family, stats["n"],
                         round(stats["p50"], 2), round(stats["p99"], 2),
                         round(stats["p999"], 2)])
    print()
    print(render_table(
        ["plane", "metric", "n", "p50", "p99", "p999"], rows,
        title=f"Session swarm @ {SESSIONS} sessions "
              f"(flat vs {SHARDS} shards)"))

    payload = {
        "sessions": SESSIONS,
        "shards": SHARDS,
        "gate_factor": GATE_FACTOR,
        "flat": reports["flat"],
        "sharded": reports["sharded"],
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {JSON_PATH}")
    return reports


def test_swarm(benchmark):
    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    flat, sharded = reports["flat"], reports["sharded"]

    for report in (flat, sharded):
        # The swarm sustained the population: everything registered is
        # live except the deliberate churn (graceful closes + evictions).
        spec = report["spec"]
        expected_live = (report["sessions_registered"]
                         - spec["graceful_closes"] - spec["silent"])
        assert report["live_after_registration"] >= spec["sessions"]
        assert report["live_at_end"] == expected_live
        # Every silenced session was evicted and every metric family emits.
        assert report["evicted"] == spec["silent"]
        for family, stats in report["metrics"].items():
            assert stats["n"] > 0, f"{family} emitted no samples"
            assert stats["p50"] <= stats["p99"] <= stats["p999"]
        assert report["lock_grants"] == spec["lock_contenders"] \
            * spec["lock_rounds"]

    # The tentpole gate: partitioned sweeps beat the flat plane's p99.
    flat_p99 = flat["metrics"]["heartbeat_sweep_ms"]["p99"]
    sharded_p99 = sharded["metrics"]["heartbeat_sweep_ms"]["p99"]
    assert flat_p99 >= GATE_FACTOR * sharded_p99, \
        f"sweep p99 {flat_p99:.1f} -> {sharded_p99:.1f} ms: " \
        f"improvement below {GATE_FACTOR}x"
    # Sharding must not regress the other families' tails (generous
    # headroom: these paths are untouched by the sweep partitioning).
    for family in ("watch_fanout_ms", "eviction_lag_ms"):
        assert sharded["metrics"][family]["p99"] <= \
            2.0 * flat["metrics"][family]["p99"]
