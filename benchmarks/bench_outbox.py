"""Transactional-outbox event streaming: publish lag and zero-overhead gate.

The outbox decouples event publishing from the write path: the leader's
only extra work is one more row in the commit-log ``transact_update``,
and a scheduled publisher drains committed events to the configured
sinks.  Two properties matter:

* **publish lag** — commit-to-sink delay per event (the
  ``fk_outbox_publish_lag_ms`` histogram), dominated by the publisher
  period, not by the write rate: the drain is batched, so p50/p99 should
  stay flat as the rate grows.

* **zero off-cost** — with the outbox off (the default) the write path
  must reproduce the pre-PR fingerprint bit-for-bit: the subsystem rides
  the commit log's transaction, it must never tax a deployment that
  doesn't use it.

The bench drives a paced ``set_data`` workload at increasing write rates
against an outbox-on deployment (scheduled publisher, in-proc sink),
reports lag p50/p99 per rate, audits delivery (nothing lost, nothing
dead-lettered, per-path txid order) and emits machine-readable
``BENCH_outbox.json`` (a CI artifact for the perf trajectory).

``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs;
``FK_BENCH_JSON`` overrides the JSON output path.
"""

import json
import os

from bench_distributor_latency import WRITE_BASELINE_DEFAULT, write_fingerprint
from repro.analysis import render_table
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from repro.faaskeeper.chaos import verify_outbox_delivery

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
JSON_PATH = os.environ.get("FK_BENCH_JSON", "BENCH_outbox.json")
RATES_PER_S = (2, 10, 50)
WRITES = 30 if SMOKE else 200
PUBLISH_MS = 1_000.0
SEED = 2024


def _measure(rate_per_s):
    cloud = Cloud.aws(seed=SEED)
    config = FaaSKeeperConfig(
        commit_log_enabled=True, outbox_enabled=True,
        outbox_publish_ms=PUBLISH_MS, outbox_batch=100)
    service = FaaSKeeperService.deploy(cloud, config)
    client = service.connect()
    client.create("/bench", b"")
    interval_ms = 1_000.0 / rate_per_s
    futures = []
    for i in range(WRITES):
        futures.append(client.set_data_async("/bench", b"x" * 256))
        cloud.run(until=cloud.now + interval_ms)
    acked = [f.wait().txid for f in futures]
    cloud.run(until=cloud.now + 30_000)  # scheduled drains catch up
    service.outbox.drain()               # settle any sub-period tail

    stats = service.outbox.stats()
    sink = service.outbox.sink(0)
    lag = service.metrics.get("fk_outbox_publish_lag_ms")
    violations = verify_outbox_delivery(service, acked)
    assert violations == [], violations
    # Registry consistency: every appended record was delivered (the
    # single sink saw each committed event at least once), none parked.
    assert stats["dead_letters"] == 0
    assert len(set(sink.delivered_txids())) == stats["appended"]
    assert stats["published_txid"] >= max(acked)
    return {
        "rate_per_s": rate_per_s,
        "events": len(sink.delivered),
        "appended": stats["appended"],
        "drains": stats["drains"],
        "lag_p50_ms": round(lag.quantile(0.50), 3),
        "lag_p99_ms": round(lag.quantile(0.99), 3),
    }


def run():
    out = [_measure(rate) for rate in RATES_PER_S]
    print()
    print(render_table(
        ["rate (w/s)", "events", "drains", "lag p50 (ms)", "lag p99 (ms)"],
        [[r["rate_per_s"], r["events"], r["drains"],
          f"{r['lag_p50_ms']:.0f}", f"{r['lag_p99_ms']:.0f}"]
         for r in out],
        title=f"Outbox publish lag, period={PUBLISH_MS:.0f}ms, "
              f"{WRITES} writes"))
    payload = {
        "bench": "bench_outbox",
        "writes": WRITES,
        "publish_period_ms": PUBLISH_MS,
        "series": {f"rate{r['rate_per_s']}": r for r in out},
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {JSON_PATH}")
    return out


def test_outbox_publish_lag(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in out:
        # Lag is period-dominated: even at the highest rate the batched
        # drain keeps p99 within a few publisher periods.
        assert 0 < row["lag_p50_ms"] <= 2 * PUBLISH_MS, row
        assert row["lag_p99_ms"] <= 5 * PUBLISH_MS, row


def test_outbox_off_overhead_is_zero():
    """The acceptance gate: an outbox-off deployment reproduces the
    pre-PR write fingerprint bit-for-bit — virtual per-write timings,
    end time and metered cost.  (``outbox_enabled=False`` also pins the
    FK_FORCE_OUTBOX CI leg back to the default pipeline.)"""
    assert write_fingerprint(outbox_enabled=False) == WRITE_BASELINE_DEFAULT


if __name__ == "__main__":
    run()
