"""Table 7a: end-to-end latency of function invocation paths on AWS.

Measures send -> handler -> TCP reply for: direct invocation, standard SQS,
SQS FIFO, and DynamoDB Streams, at 64 B and 64 kB payloads.  Also prints
the Section 5.2.2 cost comparison (SQS 160x cheaper than Streams).
Shape checks: FIFO is the fastest queue path (faster than direct), Streams
are ~10x slower, costs match the billing math.
"""

from repro.analysis import render_table, summarize
from repro.cloud import Cloud, OpContext, Set

REPS = 250
SIZES = {"64B": 0.0625, "64kB": 64.0}


def _reply_handler(cloud, replies):
    def handler(fctx, payload):
        yield fctx.env.timeout(0.1)  # empty function body
        latency = cloud.profile.tcp_reply.sample(cloud.rng.stream("tcp"), 0.0)
        yield fctx.env.timeout(latency)
        replies.append(fctx.env.now)
        return None
    return handler


def _measure_path(cloud, send_one, replies, reps=REPS):
    samples = []
    for _ in range(reps):
        t0 = cloud.now
        n_before = len(replies)
        send_one()
        while len(replies) <= n_before:
            cloud.run(until=cloud.now + 50)
        samples.append(replies[-1] - t0)
    return summarize(samples)


def run():
    results = {}
    ctx = OpContext()
    for size_label, size_kb in SIZES.items():
        # direct
        cloud = Cloud.aws(seed=71)
        replies = []
        fn = cloud.deploy_function("d", _reply_handler(cloud, replies))
        cloud.env.run(until=cloud.runtime.invoke_direct(fn, None))  # warm up
        results[("direct", size_label)] = _measure_path(
            cloud, lambda: cloud.runtime.invoke_direct(fn, None, payload_kb=size_kb),
            replies)

        # standard SQS
        cloud = Cloud.aws(seed=72)
        replies = []
        fn = cloud.deploy_function("q", _reply_handler(cloud, replies))
        q = cloud.standard_queue("q", concurrency=2)
        q.attach(fn)
        q.send_nowait(ctx, None, size_kb=size_kb)
        cloud.run(until=cloud.now + 3000)  # warm up
        results[("sqs", size_label)] = _measure_path(
            cloud,
            lambda: cloud.env.process(q.send(ctx, None, size_kb=size_kb)),
            replies)

        # SQS FIFO
        cloud = Cloud.aws(seed=73)
        replies = []
        fn = cloud.deploy_function("f", _reply_handler(cloud, replies))
        q = cloud.fifo_queue("f")
        q.attach(fn)
        q.send_nowait(ctx, None, size_kb=size_kb)
        cloud.run(until=cloud.now + 3000)
        results[("sqs_fifo", size_label)] = _measure_path(
            cloud,
            lambda: cloud.env.process(q.send(ctx, None, size_kb=size_kb)),
            replies)

        # DynamoDB Streams
        cloud = Cloud.aws(seed=74)
        replies = []
        kv = cloud.kv()
        table = kv.create_table("t")
        fn = cloud.deploy_function("s", _reply_handler(cloud, replies))
        cloud.stream_trigger("s", table, fn)
        cloud.run_process(kv.put_item(ctx, "t", "k", {"v": 0}))
        cloud.run(until=cloud.now + 3000)
        i = [0]

        def stream_send():
            i[0] += 1
            cloud.run_process(kv.update_item(ctx, "t", "k", [Set("v", i[0])]))

        results[("ddb_stream", size_label)] = _measure_path(
            cloud, stream_send, replies, reps=120)

    print()
    rows = [[path, size] + s.row()
            for (path, size), s in sorted(results.items())]
    print(render_table(["path", "payload", "min", "p50", "p90", "p95",
                        "p99", "max"], rows,
                       title="Table 7a: AWS invocation latency (ms)"))
    # Section 5.2.2 cost comparison.
    sqs_cost = 0.5e-6          # one message <= 64 kB
    stream_cost = 80e-6        # 64 kB in 1 kB write units at $1.25/M
    print(f"cost per 64kB message: SQS ${sqs_cost:.2e}, "
          f"Streams ${stream_cost:.2e} ({stream_cost/sqs_cost:.0f}x)")
    return results


def test_tab7a_invocation_aws(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # FIFO queue is the fastest path -- faster than direct invocation.
    assert r[("sqs_fifo", "64B")].p50 < r[("direct", "64B")].p50
    # Direct ~39 ms, FIFO ~24 ms, Streams ~243 ms at the median.
    assert 30 < r[("direct", "64B")].p50 < 50
    assert 18 < r[("sqs_fifo", "64B")].p50 < 36
    assert 180 < r[("ddb_stream", "64B")].p50 < 320
    # Streams are several times slower than the SQS paths.
    assert r[("ddb_stream", "64B")].p50 > 4 * r[("sqs", "64B")].p50
    assert 30 < r[("sqs", "64B")].p50 < 60
    # Payload size adds a visible but secondary cost on queue paths.
    assert r[("sqs_fifo", "64kB")].p50 > r[("sqs_fifo", "64B")].p50
