"""Figure 12: FaaSKeeper writes on Google Cloud.

Write-time distribution on the GCP deployment (Datastore system storage
with transaction-based synchronization, Cloud Storage user data).  Shape
checks: GCP writes are slower than AWS (expensive transactional commits),
and the commit/synchronization share is much larger than on AWS.
"""

from repro.analysis import render_table
from repro.analysis.bench import deploy_fk, label, segment_summary, sweep_write_latency

SIZES = (4, 64 * 1024, 250 * 1024)
REPS = 30


def run():
    results = {}
    for provider in ("aws", "gcp"):
        cloud, service, client = deploy_fk(seed=130, provider=provider,
                                           user_store="s3",
                                           function_memory_mb=2048)
        results[provider] = {
            "latency": sweep_write_latency(client, cloud, SIZES, reps=REPS),
            "follower": segment_summary(service.follower_fn,
                                        ("lock", "push", "commit")),
            "leader": segment_summary(service.leader_fn,
                                      ("get_node", "update_user",
                                       "watch_query")),
        }
    print()
    rows = []
    for provider in ("aws", "gcp"):
        for size in SIZES:
            s = results[provider]["latency"][size]
            rows.append([provider, label(size), s.p50, s.p95, s.p99])
    print(render_table(["provider", "size", "p50 ms", "p95", "p99"], rows,
                       title="Figure 12: write latency, AWS vs GCP"))
    rows = []
    for provider in ("aws", "gcp"):
        for role in ("follower", "leader"):
            for name, s in results[provider][role].items():
                rows.append([provider, role, name, s.p50])
    print(render_table(["provider", "function", "segment", "p50 ms"], rows,
                       title="Figure 12: segment medians"))
    return results


def test_fig12_gcp_writes(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    # GCP writes slower than AWS at every size ("worse performance due to
    # significantly more expensive synchronization with transactions").
    for size in SIZES:
        assert r["gcp"]["latency"][size].p50 > r["aws"]["latency"][size].p50
    # The synchronization share (lock + commit) is much larger on GCP.
    aws_sync = r["aws"]["follower"]["lock"].p50 + r["aws"]["follower"]["commit"].p50
    gcp_sync = r["gcp"]["follower"]["lock"].p50 + r["gcp"]["follower"]["commit"].p50
    assert gcp_sync > 2.5 * aws_sync
    # GCP object storage is slower than S3 on the leader's update path.
    assert r["gcp"]["leader"]["update_user"].p50 > \
        r["aws"]["leader"]["update_user"].p50
