"""Table 4: parameters of the FaaSKeeper cost model.

Regenerates the parameter table and the per-100K-request dollar figures the
paper quotes in Section 5.3.4 ($0.04 reads, $1.12 standard writes, $0.72
hybrid writes).
"""

from repro.analysis import render_table
from repro.costmodel import AWS_COST_PARAMS, q_sqs, r_dd, r_s3, w_dd, w_s3


def run():
    rows = [
        ["W_S3(s)", "Writing data to S3", w_s3(1.0)],
        ["R_S3(s)", "Reading data from S3", r_s3(1.0)],
        ["W_DD(s)", "Writing data to DynamoDB (per kB)", w_dd(1.0)],
        ["R_DD(s)", "Reading data from DynamoDB (per 4 kB)", r_dd(1.0)],
        ["Q(s)", "Push to queue (per 64 kB)", q_sqs(1.0)],
        ["F_W+F_D std", "Follower+leader per write (512 MB)",
         AWS_COST_PARAMS.fn_write_std],
        ["F_W+F_D hyb", "Follower+leader per write, hybrid",
         AWS_COST_PARAMS.fn_write_hybrid],
    ]
    print()
    print(render_table(["param", "description", "$ / op"], rows,
                       title="Table 4: FaaSKeeper cost model parameters"))
    dollars = {
        "100K reads (std)": 1e5 * AWS_COST_PARAMS.read_cost(1.0, False),
        "100K reads (hybrid)": 1e5 * AWS_COST_PARAMS.read_cost(1.0, True),
        "100K writes (std)": 1e5 * AWS_COST_PARAMS.write_cost(1.0, False),
        "100K writes (hybrid)": 1e5 * AWS_COST_PARAMS.write_cost(1.0, True),
    }
    print(render_table(["workload", "$"],
                       [[k, v] for k, v in dollars.items()],
                       title="Section 5.3.4 workload dollars"))
    return dollars


def test_tab4_cost_params(benchmark):
    dollars = benchmark.pedantic(run, rounds=1, iterations=1)
    # paper-quoted values
    assert abs(dollars["100K reads (std)"] - 0.04) < 0.001
    assert abs(dollars["100K writes (std)"] - 1.12) < 0.02
    assert abs(dollars["100K writes (hybrid)"] - 0.72) < 0.02
