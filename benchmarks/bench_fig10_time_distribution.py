"""Figure 10: time distribution inside the FaaSKeeper functions.

Breaks follower time into lock / push / commit and leader time into
get-node / user-store update / watch query / notify / pop, for small and
large nodes.  Shape checks: data movement (queue push, user-store update)
dominates; synchronization (lock/commit) is a limited share — the paper's
argument that queues and object storage, not locking, bound write latency.
"""

from repro.analysis import render_table
from repro.analysis.bench import deploy_fk, label, segment_summary

SIZES = (4, 64 * 1024, 250 * 1024)
REPS = 40

FOLLOWER_SEGMENTS = ("lock", "push", "commit")
LEADER_SEGMENTS = ("get_node", "update_user", "watch_query", "notify", "pop")


def run():
    out = {}
    for size in SIZES:
        cloud, service, client = deploy_fk(seed=100 + size % 97,
                                           user_store="s3",
                                           function_memory_mb=2048)
        client.create("/n", b"")
        payload = b"x" * size
        for _ in range(REPS):
            client.set_data("/n", payload)
        cloud.run(until=cloud.now + 5000)
        out[(size, "follower")] = segment_summary(service.follower_fn,
                                                  FOLLOWER_SEGMENTS)
        out[(size, "leader")] = segment_summary(service.leader_fn,
                                                LEADER_SEGMENTS)

    print()
    rows = []
    for (size, role), segments in sorted(out.items(), key=lambda kv: kv[0][0]):
        total = sum(s.p50 for s in segments.values())
        for name, s in segments.items():
            rows.append([label(size), role, name, s.p50,
                         f"{100 * s.p50 / total:.0f}%"])
    print(render_table(["size", "function", "segment", "p50 ms", "share"],
                       rows, title="Figure 10: function time distribution"))
    return out


def test_fig10_time_distribution(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for size in SIZES:
        follower = out[(size, "follower")]
        leader = out[(size, "leader")]
        # Push to the leader queue dominates the follower at large sizes.
        if size >= 64 * 1024:
            assert follower["push"].p50 > follower["lock"].p50 + follower["commit"].p50
        # Synchronization impact is limited: lock+commit < half the leader's
        # user-store update time at large sizes.
        if size >= 64 * 1024:
            sync = follower["lock"].p50 + follower["commit"].p50
            assert sync < leader["update_user"].p50
        # The leader is dominated by moving data to user storage.
        leader_total = sum(s.p50 for s in leader.values())
        assert leader["update_user"].p50 / leader_total > 0.5
        # Watch query is cheap ("insignificant cost and overhead").
        assert leader["watch_query"].p50 < 10
    # Lock and commit times are size-independent (metadata-only items).
    assert abs(out[(4, "follower")]["lock"].p50
               - out[(250 * 1024, "follower")]["lock"].p50) < 4
