"""Client-side read cache: YCSB-style read throughput and storage cost.

FaaSKeeper reads go straight to the region-local user store, so reads
dominate both latency and the per-request storage bill of read-heavy
mixes (Figures 8/9).  The watch-invalidated client cache
(``client_cache_entries``) serves repeat reads from session memory — a
cached value is valid exactly until its one-shot system watch fires —
trading one extra watch registration per miss for free hits.

This bench replays YCSB-style mixes (B: 95/5 read/update, A: 50/50) over
a small hot set, cache off vs. on, and reports read throughput, hit rate
and the metered user-store cost per operation.

Acceptance gates: on the 95%-read mix the cache must lift read throughput
>= 2x and cut the user-store cost; and the cache-OFF deployment must
reproduce the seed read-latency fingerprint exactly (same pattern as the
shards=1 gate in ``bench_multi_throughput.py``) — the default
configuration's read path is bit-for-bit the paper's.

``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from repro.analysis import render_table, summarize
from repro.analysis.bench import timed
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from repro.workloads.mixes import MixSpec, generate_mix

SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
MIXES = (0.95, 0.50)          # YCSB B and A read fractions
N_OPS = 200 if SMOKE else 1500
N_NODES = 12
VALUE_BYTES = 512
CACHE_ENTRIES = 64
SEED = 2024

#: Seed-calibrated fingerprint of the cache-off read path (seed 4242,
#: default config): per-read virtual-clock latencies, end time and total
#: metered cost.  CI fails when the default (cache-disabled) deployment's
#: get_data/get_children pipeline deviates from the seed behaviour.
READ_BASELINE = (
    (10.56135, 15.549166, 13.098912, 10.063686, 13.066782, 12.799962,
     14.435167, 6.914399, 6.574253, 13.499908, 9.101048, 9.447345,
     6.316044, 25.448043, 11.765381, 6.050219),
    6221.340547,                # virtual end time (ms)
    9.3029332657e-05,           # total metered cost ($)
)


def read_fingerprint(**config_kwargs):
    """Deterministic read-path fingerprint (the CI baseline)."""
    cloud = Cloud.aws(seed=4242)
    service = FaaSKeeperService.deploy(cloud,
                                       FaaSKeeperConfig(**config_kwargs))
    client = service.connect()
    client.create("/cfg", b"")
    client.create("/cfg/kid", b"")
    client.set_data("/cfg", b"payload" * 16)
    lat = []
    for _ in range(12):
        lat.append(round(timed(cloud, lambda: client.get_data("/cfg")), 6))
    for _ in range(4):
        lat.append(round(timed(cloud, lambda: client.get_children("/cfg")), 6))
    cloud.run(until=cloud.now + 5_000)
    return (tuple(lat), round(cloud.now, 6),
            round(sum(cloud.meter.by_service().values()), 15))


def _run_mix(read_fraction, cache_entries):
    cloud = Cloud.aws(seed=SEED)
    service = FaaSKeeperService.deploy(
        cloud, FaaSKeeperConfig(client_cache_entries=cache_entries))
    client = service.connect()
    client.create("/mix", b"")
    spec = MixSpec(n_ops=N_OPS, read_fraction=read_fraction,
                   n_nodes=N_NODES, value_bytes=VALUE_BYTES, seed=7)
    for path in spec.paths():
        client.create(path, b"x" * VALUE_BYTES)
    cost0 = cloud.meter.total
    read_times, n_writes = [], 0
    for op, path, data in generate_mix(spec):
        if op == "read":
            read_times.append(timed(cloud, lambda: client.get_data(path)))
        else:
            client.set_data(path, data)
            n_writes += 1
    cloud.run(until=cloud.now + 5_000)  # drain watch fan-out
    stats = service.client_cache_stats()
    breakdown = service.cost_breakdown()
    reads = len(read_times)
    return {
        "read_tput": reads / max(sum(read_times) / 1000.0, 1e-9),
        "read_p50": summarize(read_times).p50,
        "hit_rate": stats["hits"] / max(reads, 1),
        "user_store_cost": breakdown["user_store"],
        "total_cost": cloud.meter.total - cost0,
        "reads": reads,
        "writes": n_writes,
    }


def run():
    out = {}
    for mix in MIXES:
        out[mix] = {
            "off": _run_mix(mix, 0),
            "on": _run_mix(mix, CACHE_ENTRIES),
        }
    rows = []
    for mix, r in out.items():
        for tag in ("off", "on"):
            m = r[tag]
            rows.append([
                f"{int(mix * 100)}/{int((1 - mix) * 100)}", tag,
                f"{m['read_tput']:.0f}", f"{m['read_p50']:.2f}",
                f"{100 * m['hit_rate']:.0f}%",
                f"{m['user_store_cost'] * 1e6:.1f}",
                f"{m['total_cost'] * 1e6:.1f}",
            ])
    print()
    print(render_table(
        ["mix r/w", "cache", "reads/s", "read p50 ms", "hit rate",
         "user store $/M", "total $/M"],
        rows, title=f"Client read cache ({N_OPS} ops, {N_NODES} hot nodes)"))
    return out


def test_client_cache_throughput(benchmark):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    r95 = out[0.95]
    # The acceptance gate: >= 2x read throughput on the 95%-read mix …
    assert r95["on"]["read_tput"] >= 2.0 * r95["off"]["read_tput"], r95
    # … from a high hit rate …
    assert r95["on"]["hit_rate"] > 0.5
    # … and a lower metered user-store bill for the same logical workload.
    assert r95["on"]["user_store_cost"] < r95["off"]["user_store_cost"]
    # The cache never changes results, only costs: the 50/50 mix must also
    # profit on reads (writes dominate its runtime either way).
    r50 = out[0.50]
    assert r50["on"]["read_tput"] > r50["off"]["read_tput"]


def test_cache_off_read_path_matches_seed_baseline():
    """The cache wiring must not move the default read pipeline: the
    cache-off configuration reproduces the seed read-latency fingerprint
    bit-for-bit (virtual timings, end time and metered cost)."""
    assert read_fingerprint() == READ_BASELINE
    assert read_fingerprint(client_cache_entries=0) == READ_BASELINE


if __name__ == "__main__":
    run()
