"""Figure 5: ZooKeeper utilization in HBase running YCSB.

Replays the six YCSB core workloads against the HBase coordination model
and prints the utilization/request time series.  Shape checks: VM
utilization stays in the ~0.5-1 % band, HBase serves orders of magnitude
more requests than ZooKeeper, and the phases add only a handful of writes.
"""

from repro.analysis import render_table
from repro.cloud import Cloud
from repro.workloads import CORE_WORKLOADS, HBaseSimulation

PHASE_MS = 120_000.0  # shortened phases (paper: 5 minutes each)


def run():
    cloud = Cloud.aws(seed=5)
    sim = HBaseSimulation(cloud, n_regionservers=3)
    setup_writes = sim.zk_writes
    sim.run_standard_experiment(phase_ms=PHASE_MS)

    print()
    stats = sim.node_size_stats()
    print(f"znodes created: {stats['count']}  sizes: median "
          f"{stats['median']:.0f} B, mean {stats['mean']:.0f} B, "
          f"max {stats['max']:.0f} B")
    rows = []
    for s in sim.samples[:: max(1, len(sim.samples) // 16)]:
        rows.append([round(s.time_ms / 1000), f"{100*s.cpu:.2f}%",
                     f"{100*s.memory:.2f}%", s.hbase_requests,
                     s.zk_reads, s.zk_writes])
    print(render_table(
        ["t (s)", "cpu", "mem", "hbase reqs", "zk reads", "zk writes"],
        rows, title="Figure 5: ZooKeeper utilization under YCSB phases"))
    print(f"phase writes: {sim.zk_writes - setup_writes} "
          f"(paper annotation: 12 writes)")
    return sim, setup_writes


def test_fig5_zk_utilization(benchmark):
    sim, setup_writes = benchmark.pedantic(run, rounds=1, iterations=1)
    cpu = [s.cpu for s in sim.samples]
    # Utilization 0.5-1% band (allowing brief setup spikes).
    assert sum(cpu) / len(cpu) < 0.02
    assert max(cpu[3:]) < 0.10
    # HBase serves thousands of requests; ZooKeeper sees a trickle.
    total_zk = sim.zk_reads + sim.zk_writes
    assert sim.hbase_requests > 200 * total_zk
    # "12 writes" across the experiment phases (ours: a handful too).
    assert sim.zk_writes - setup_writes <= 12
    # node-size statistics match Section 5.1's measurement
    stats = sim.node_size_stats()
    assert stats["count"] == 29
    assert stats["median"] == 0
    assert 40 < stats["mean"] < 55
    assert stats["max"] == 320
