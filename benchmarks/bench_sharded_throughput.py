"""Sharded leader pipeline: write throughput vs. shard count.

The paper's single FIFO queue + single leader function (Algorithm 2) caps
write throughput: every committed update serializes through one replication
pipeline.  This bench partitions the znode tree over N leader shards
(``FaaSKeeperConfig.leader_shards``) and measures aggregate acknowledged
write throughput for shards in {1, 2, 4, 8} under a multi-subtree workload
(one client per top-level subtree, pipelined async writes).

Shape checks: shards=1 reproduces the single-leader (default-config)
result exactly, and throughput scales with the shard count — shards=4 must
beat shards=1 strictly (the acceptance gate), with 8 shards at or above 4.

``FK_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from repro.analysis import render_table
from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService

SHARDS = (1, 2, 4, 8)
SMOKE = os.environ.get("FK_BENCH_SMOKE", "") not in ("", "0")
SUBTREES = 8
WRITES_PER_CLIENT = 6 if SMOKE else 48
PAYLOAD = b"x" * 256
SEED = 2024


def _run_workload(service: FaaSKeeperService, cloud: Cloud) -> float:
    """Aggregate acked writes/s: one session per subtree, writes pipelined."""
    clients = [service.connect() for _ in range(SUBTREES)]
    for i, c in enumerate(clients):
        c.create(f"/t{i}", b"")
        c.create(f"/t{i}/hot", b"")
    start = cloud.now
    futures = []
    for i, c in enumerate(clients):
        for _ in range(WRITES_PER_CLIENT):
            futures.append(c.set_data_async(f"/t{i}/hot", PAYLOAD))
    deadline = cloud.now + 600_000
    while cloud.now < deadline and not all(f.done for f in futures):
        cloud.run(until=cloud.now + 1_000)
    acked = sum(1 for f in futures if f.done and f.event.ok)
    elapsed_s = (cloud.now - start) / 1000.0
    return acked / max(elapsed_s, 1e-9)


def _deploy(num_shards=None, coalesce=None):
    cloud = Cloud.aws(seed=SEED)
    config = (FaaSKeeperConfig() if num_shards is None
              else FaaSKeeperConfig(leader_shards=num_shards,
                                    leader_coalesce=coalesce))
    return cloud, FaaSKeeperService.deploy(cloud, config)


def run():
    coalesced, plain = {}, {}
    for shards in SHARDS:
        cloud, service = _deploy(shards)  # auto: coalesce iff sharded
        coalesced[shards] = _run_workload(service, cloud)
        cloud, service = _deploy(shards, coalesce=False)
        plain[shards] = _run_workload(service, cloud)
    # Single-leader baseline: the default configuration, untouched by the
    # sharding knob — shards=1 must reproduce it bit-for-bit.
    cloud, service = _deploy(None)
    baseline = _run_workload(service, cloud)
    rows = [[s, f"{plain[s]:.1f}", f"{coalesced[s]:.1f}",
             f"{coalesced[s] / coalesced[1]:.2f}x"]
            for s in SHARDS]
    rows.append(["1 (paper cfg)", f"{baseline:.1f}", "-",
                 f"{baseline / coalesced[1]:.2f}x"])
    print()
    print(render_table(
        ["leader shards", "writes/s", "writes/s (coalesced)",
         "vs single leader"],
        rows, title="Sharded leader pipeline: write throughput"))
    return coalesced, plain, baseline


def test_sharded_write_throughput(benchmark):
    coalesced, plain, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    # shards=1 is the paper's single-leader pipeline, unchanged (coalescing
    # defaults to off there, so the auto config equals the paper config).
    assert coalesced[1] == baseline
    # Sharding alone must buy real write throughput (the acceptance gate) …
    assert plain[4] > plain[1]
    assert plain[2] > plain[1]
    # … and batched replication adds on top at every sharded point.
    assert coalesced[4] > plain[1]
    assert coalesced[4] > coalesced[1]
    assert coalesced[8] >= coalesced[4] * 0.9  # allow plateau, not regression


if __name__ == "__main__":
    run()
