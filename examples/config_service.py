"""Configuration distribution — the workload the paper's intro motivates.

An HBase-like cluster keeps its shared state in the coordination service:
a master publishes configuration under ``/cluster/config``, region servers
register ephemeral nodes and watch the configuration for changes — here
through the self-re-arming ``DataWatch``/``ChildrenWatch`` decorators, so
no one hand-rolls the one-shot re-registration loop.  The data traffic
itself never touches the coordination service, matching the Section 5.1
observation that ZooKeeper sees a tiny fraction of the cluster's requests
— exactly the workload where the serverless pay-as-you-go model wins
(Figure 14).

The demo also prints the month-scale cost comparison for this traffic
pattern against a 3-VM ZooKeeper ensemble.
"""

from repro.cloud import Cloud
from repro.costmodel import BreakevenModel
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService


def main() -> None:
    cloud = Cloud.aws(seed=11)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(user_store="hybrid"))

    master = fk.connect()
    master.ensure_path("/cluster/servers")
    master.create("/cluster/config", b"flush_interval=60")

    # Region servers come online: ephemeral registration + a DataWatch on
    # the configuration (called immediately, re-armed on every change).
    class RegionServer:
        def __init__(self, index: int):
            self.name = f"rs-{index}"
            self.client = fk.connect()
            self.config_seen = []
            self.node = self.client.create(
                f"/cluster/servers/{self.name}", b"", ephemeral=True)
            self.client.DataWatch("/cluster/config", self._on_config)

        def _on_config(self, data, _stat):
            self.config_seen.append(data)

    servers = [RegionServer(i) for i in range(4)]
    print(f"registered: {master.get_children('/cluster/servers')}")

    # The master reconfigures the cluster: one write fans out to all.
    master.set_data("/cluster/config", b"flush_interval=30")
    cloud.run(until=cloud.now + 3_000)
    for server in servers:
        assert server.config_seen[-1] == b"flush_interval=30"
    print("all region servers picked up flush_interval=30")

    # One server dies; the master notices via its ChildrenWatch (the
    # initial delivery carries no event — only changes are counted).
    events = []
    master.ChildrenWatch(
        "/cluster/servers",
        lambda _children, event: events.append(event) if event else None,
        send_event=True)
    servers[2].client.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    print(f"after failure: {master.get_children('/cluster/servers')} "
          f"({len(events)} membership notification)")

    # -- economics -------------------------------------------------------
    # This coordination pattern produces a few hundred requests per day.
    model = BreakevenModel()
    for daily in (1_000, 100_000, 1_000_000):
        fk_cost = model.faaskeeper_daily(daily, read_fraction=0.9, hybrid=True)
        zk_cost = model.params.zookeeper_daily(3, "t3.small")
        print(f"{daily:>9,} req/day: FaaSKeeper ${fk_cost:8.4f} vs "
              f"ZooKeeper ${zk_cost:.2f}  ({zk_cost / fk_cost:7.1f}x cheaper)")

    print(f"\nsimulated cost of this demo: ${cloud.meter.total:.6f}")


if __name__ == "__main__":
    main()
