"""Quickstart: deploy FaaSKeeper on the simulated cloud and use the client.

Run with::

    python examples/quickstart.py

Everything below executes on a virtual clock — the "cloud" is the
calibrated simulation from :mod:`repro.cloud`, so the printed latencies and
dollar costs match the paper's AWS measurements, not your machine.
"""

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService


def main() -> None:
    # One simulated AWS deployment, hybrid user storage (Section 4.2).
    cloud = Cloud.aws(seed=42)
    config = FaaSKeeperConfig(user_store="hybrid", function_memory_mb=2048)
    fk = FaaSKeeperService.deploy(cloud, config)

    with fk.connect() as client:
        # -- basic CRUD ----------------------------------------------------
        client.create("/app", b"")
        client.create("/app/config", b"retries=3")
        data, stat = client.get_data("/app/config")
        print(f"read {data!r} (version {stat.version}, txid {stat.modified_tx})")

        result = client.set_data("/app/config", b"retries=5", version=0)
        print(f"updated to version {result.version} at txid {result.txid}")

        # -- watches ---------------------------------------------------------
        events = []
        client.get_data("/app/config", watch=events.append)
        client.set_data("/app/config", b"retries=7")
        cloud.run(until=cloud.now + 2_000)  # let the notification arrive
        print(f"watch delivered: {events[0].type.value} on {events[0].path}")

        # -- ephemeral + sequential nodes ------------------------------------
        client.create("/app/workers", b"")
        w1 = client.create("/app/workers/w-", ephemeral=True, sequence=True)
        w2 = client.create("/app/workers/w-", ephemeral=True, sequence=True)
        print(f"registered workers: {client.get_children('/app/workers')}")
        assert w1 < w2  # sequence numbers are monotone

    # Session closed: ephemeral nodes disappear.
    observer = fk.connect()
    cloud.run(until=cloud.now + 2_000)
    print(f"after close: {observer.get_children('/app/workers')}")

    print(f"\nsimulated time: {cloud.now / 1000:.1f} s")
    print(f"metered cost:   ${cloud.meter.total:.6f}")
    for service_name, dollars in sorted(fk.cost_breakdown().items()):
        if dollars:
            print(f"  {service_name:>14}: ${dollars:.6f}")


if __name__ == "__main__":
    main()
