"""Leader election on FaaSKeeper — the classic ZooKeeper recipe.

Built on :class:`repro.faaskeeper.recipes.Election`: each candidate
enlists with an ephemeral sequential node under ``/election``; the owner
of the smallest sequence number leads, and every other candidate watches
only its immediate predecessor, so a leader crash wakes exactly one
successor (no herd effect).

The demo elects a leader among three candidates, kills it (stops answering
heartbeats), and shows the next candidate taking over — exercising
ephemeral cleanup, watches, and the heartbeat function end to end.
"""

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService, recipes


class Candidate:
    def __init__(self, fk, name: str):
        self.name = name
        self.client = fk.connect()
        self.election = recipes.Election(self.client, "/election",
                                         identifier=name)

    def enlist(self) -> None:
        if not self.election.volunteer(on_leadership=self._on_leadership):
            print(f"  {self.name}: standing by, "
                  f"watching {self.election.watching}")

    def _on_leadership(self) -> None:
        print(f"  {self.name}: I am the leader ({self.election.node_name})")

    @property
    def is_leader(self) -> bool:
        return self.election.is_leader

    def crash(self) -> None:
        print(f"  {self.name}: crashing (stops heartbeats)")
        self.client.alive = False


def main() -> None:
    cloud = Cloud.aws(seed=7)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(user_store="dynamodb"))
    bootstrap = fk.connect()
    bootstrap.create("/election", b"")

    print("enlisting candidates:")
    candidates = [Candidate(fk, f"node-{i}") for i in range(3)]
    for c in candidates:
        c.enlist()

    leader = next(c for c in candidates if c.is_leader)
    print(f"\nelected: {leader.name}")

    # Kill the leader; the heartbeat function evicts its session and the
    # successor's predecessor watch fires — leadership passes hands-free.
    leader.crash()
    cloud.run(until=cloud.now + 3 * 60_000)  # a few heartbeat periods

    new_leader = next(c for c in candidates if c.is_leader and c is not leader)
    print(f"took over: {new_leader.name}")
    survivors = bootstrap.get_children("/election")
    print(f"remaining candidates: {survivors}")
    assert len(survivors) == 2
    assert new_leader.election.contenders() == ["node-1", "node-2"]

    print(f"\nsimulated time: {cloud.now / 1000:.1f} s, "
          f"cost ${cloud.meter.total:.6f}")


if __name__ == "__main__":
    main()
