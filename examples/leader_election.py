"""Leader election on FaaSKeeper — the classic ZooKeeper recipe.

Each candidate creates an ephemeral sequential node under ``/election``;
the owner of the smallest sequence number is the leader.  Every other
candidate watches its immediate predecessor, so a leader crash wakes
exactly one successor (no herd effect).

The demo elects a leader among three candidates, kills it (stops answering
heartbeats), and shows the next candidate taking over — exercising
ephemeral cleanup, watches, and the heartbeat function end to end.
"""

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService


class Candidate:
    def __init__(self, fk, name: str):
        self.fk = fk
        self.name = name
        self.client = fk.connect()
        self.my_node = None
        self.is_leader = False

    def enlist(self) -> None:
        self.my_node = self.client.create(
            "/election/candidate-", self.name.encode(),
            ephemeral=True, sequence=True)
        self.check()

    def check(self, _event=None) -> None:
        """(Re)evaluate leadership; watch the predecessor otherwise."""
        if self.client.closed:
            return
        children = sorted(self.client.get_children("/election"))
        mine = self.my_node.rsplit("/", 1)[1]
        index = children.index(mine)
        if index == 0:
            self.is_leader = True
            print(f"  {self.name}: I am the leader ({mine})")
            return
        predecessor = f"/election/{children[index - 1]}"
        stat = self.client.exists(predecessor, watch=self.check)
        if stat is None:
            self.check()  # predecessor vanished while we looked
        else:
            print(f"  {self.name}: standing by, watching {predecessor}")

    def crash(self) -> None:
        print(f"  {self.name}: crashing (stops heartbeats)")
        self.client.alive = False


def main() -> None:
    cloud = Cloud.aws(seed=7)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(user_store="dynamodb"))
    bootstrap = fk.connect()
    bootstrap.create("/election", b"")

    print("enlisting candidates:")
    candidates = [Candidate(fk, f"node-{i}") for i in range(3)]
    for c in candidates:
        c.enlist()

    leader = next(c for c in candidates if c.is_leader)
    print(f"\nelected: {leader.name}")

    # Kill the leader; the heartbeat function evicts its session and the
    # successor's watch fires.
    leader.crash()
    cloud.run(until=cloud.now + 3 * 60_000)  # a few heartbeat periods

    new_leader = next(c for c in candidates if c.is_leader and c is not leader)
    print(f"took over: {new_leader.name}")
    survivors = bootstrap.get_children("/election")
    print(f"remaining candidates: {survivors}")
    assert len(survivors) == 2

    print(f"\nsimulated time: {cloud.now / 1000:.1f} s, "
          f"cost ${cloud.meter.total:.6f}")


if __name__ == "__main__":
    main()
