"""Change-data-capture: stream every committed change to a JSON-lines feed.

Watches notify *connected* clients; the transactional outbox streams the
same committed changes to consumers that live outside the deployment —
audit pipelines, search indexers, downstream caches.  This demo deploys
FaaSKeeper with the outbox enabled and a :class:`FileSink`, drives a small
configuration workload, and tails the resulting CDC feed: one JSON object
per committed event (txid, path, op, session, commit timestamp), in txid
order, appended by the scheduled publisher function.

Because the event record commits in the same storage transaction as the
write itself, the feed can neither describe a change that never happened
nor miss one that did — the property an out-of-band "poll and diff"
pipeline cannot offer.

Run with::

    python examples/change_data_capture.py [--feed /tmp/fk_cdc.jsonl]
"""

import argparse
import json
import os
import tempfile

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--feed", default=None,
                        help="CDC feed path (default: a temp file)")
    args = parser.parse_args()
    feed = args.feed or os.path.join(tempfile.mkdtemp(prefix="fk_cdc_"),
                                     "changes.jsonl")

    cloud = Cloud.aws(seed=7)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(
        commit_log_enabled=True,
        outbox_enabled=True,
        outbox_sinks=[f"file:{feed}"],
        outbox_publish_ms=1_000.0,     # publisher fires once a second
    ))

    # An ordinary configuration workload: nothing here knows the outbox
    # exists — streaming is a deployment concern, not a client one.
    admin = fk.connect()
    admin.create("/cluster", b"")
    admin.create("/cluster/config", b"flush_interval=60")
    admin.set_data("/cluster/config", b"flush_interval=30")
    admin.create("/cluster/feature-x", b"on")
    admin.delete("/cluster/feature-x")
    cloud.run(until=cloud.now + 5_000)   # a few publisher periods

    print(f"CDC feed: {feed}\n")
    with open(feed, encoding="utf-8") as fh:
        for line in fh:
            ev = json.loads(line)
            print(f"  txid={ev['txid']:>3}  {ev['op']:<10} {ev['path']:<22}"
                  f" session={ev['session']}")

    stats = fk.outbox.stats()
    lag = fk.metrics.get("fk_outbox_publish_lag_ms")
    print(f"\n{int(stats['appended'])} events appended, "
          f"{int(stats['published'])} delivered, "
          f"publish lag p50 = {lag.quantile(0.5):.0f} ms "
          f"(period-dominated, as expected)")
    admin.close()


if __name__ == "__main__":
    main()
