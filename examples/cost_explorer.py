"""Cost explorer: when does serverless coordination pay off?

Reproduces the Section 5.3.4 analysis interactively: sweep daily request
volume and read/write mix, print the ZooKeeper-vs-FaaSKeeper cost ratio
(Figure 14) and the break-even points, for both standard (S3) and hybrid
user storage.

Run with::

    python examples/cost_explorer.py [--requests 500000] [--reads 0.95]
"""

import argparse

from repro.analysis import render_heatmap
from repro.costmodel import (
    FIGURE14_DEPLOYMENTS,
    FIGURE14_REQUESTS,
    BreakevenModel,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=500_000,
                        help="daily request volume for the summary line")
    parser.add_argument("--reads", type=float, default=0.95,
                        help="read fraction of the workload")
    args = parser.parse_args()

    model = BreakevenModel()
    rows = [f"{n} x {vm}" for n, vm in FIGURE14_DEPLOYMENTS]
    cols = [f"{r//1000}K" if r < 1e6 else f"{r//10**6}M"
            for r in FIGURE14_REQUESTS]

    for hybrid in (False, True):
        mode = "hybrid" if hybrid else "standard"
        matrix = model.matrix(args.reads, hybrid)
        print(render_heatmap(
            rows, cols, matrix,
            title=f"ZooKeeper/FaaSKeeper cost ratio, "
                  f"{args.reads:.0%} reads, {mode} storage"))
        be = model.breakeven_requests(args.reads, hybrid)
        print(f"break-even vs 3 x t3.small: {be/1e6:.2f}M requests/day\n")

    fk_std = model.faaskeeper_daily(args.requests, args.reads, hybrid=False)
    fk_hyb = model.faaskeeper_daily(args.requests, args.reads, hybrid=True)
    zk = model.params.zookeeper_daily(3, "t3.small")
    print(f"at {args.requests:,} requests/day ({args.reads:.0%} reads):")
    print(f"  FaaSKeeper standard  ${fk_std:8.4f}/day")
    print(f"  FaaSKeeper hybrid    ${fk_hyb:8.4f}/day")
    print(f"  ZooKeeper 3xsmall    ${zk:8.2f}/day")
    winner = "FaaSKeeper" if min(fk_std, fk_hyb) < zk else "ZooKeeper"
    print(f"  cheapest: {winner}")


if __name__ == "__main__":
    main()
