"""Distributed work queue — another classic ZooKeeper recipe on FaaSKeeper.

Built on :class:`repro.faaskeeper.recipes.Queue`: producers enqueue tasks
as *sequential* nodes under ``/queue``; a worker claims a task by deleting
its node (the delete is the atomic claim: exactly one worker wins each
task, losers retry on the next entry).

Demonstrates: sequential ordering, delete-as-claim atomicity, and multiple
concurrent sessions.
"""

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService, recipes


def main() -> None:
    cloud = Cloud.aws(seed=99)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(user_store="dynamodb"))

    producer = fk.connect()
    queue = recipes.Queue(producer, "/queue")

    # Producers enqueue ten tasks.
    for i in range(10):
        queue.put(f"job {i}".encode())
    print(f"enqueued: {queue.qsize()} tasks")

    claimed: dict[str, list] = {}

    class Worker:
        def __init__(self, name: str):
            self.name = name
            self.client = fk.connect()
            self.queue = recipes.Queue(self.client, "/queue")
            claimed[name] = []

        def claim_one(self) -> bool:
            """Try to claim the oldest task; returns False when queue empty."""
            data = self.queue.get()
            if data is None:
                return False
            claimed[self.name].append(data.decode())
            return True

    workers = [Worker(f"worker-{i}") for i in range(3)]
    # Round-robin claiming: each worker grabs one task per round, so the
    # virtual-clock interleaving spreads work across sessions.
    busy = True
    while busy:
        busy = False
        for w in workers:
            busy |= w.claim_one()

    total = sum(len(v) for v in claimed.values())
    all_jobs = sorted(j for v in claimed.values() for j in v)
    print("claims per worker:",
          {k: len(v) for k, v in claimed.items()})
    assert total == 10, f"expected 10 claims, got {total}"
    assert all_jobs == sorted(f"job {i}" for i in range(10))  # exactly once
    assert queue.is_empty()
    print("every task processed exactly once ✓")
    print(f"simulated time {cloud.now/1000:.1f} s, "
          f"cost ${cloud.meter.total:.6f}")


if __name__ == "__main__":
    main()
