"""Distributed work queue — another classic ZooKeeper recipe on FaaSKeeper.

Producers enqueue tasks as *sequential* nodes under ``/queue``; workers
claim tasks by deleting them (the conditional delete is the atomic claim:
exactly one worker wins each task).  A children watch wakes idle workers
when new work arrives.

Demonstrates: sequential ordering, delete-as-claim atomicity, watches, and
multiple concurrent sessions.
"""

from repro.cloud import Cloud
from repro.faaskeeper import (
    FaaSKeeperConfig,
    FaaSKeeperService,
    NoNodeError,
)


def main() -> None:
    cloud = Cloud.aws(seed=99)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(user_store="dynamodb"))

    producer = fk.connect()
    producer.create("/queue", b"")

    # Producers enqueue ten tasks.
    for i in range(10):
        producer.create("/queue/task-", f"job {i}".encode(), sequence=True)
    print(f"enqueued: {len(producer.get_children('/queue'))} tasks")

    claimed: dict[str, list] = {}

    class Worker:
        def __init__(self, name: str):
            self.name = name
            self.client = fk.connect()
            claimed[name] = []

        def claim_one(self) -> bool:
            """Try to claim the oldest task; returns False when queue empty."""
            while True:
                tasks = sorted(self.client.get_children("/queue"))
                if not tasks:
                    return False
                task = tasks[0]
                try:
                    data, _ = self.client.get_data(f"/queue/{task}")
                    # The delete is the atomic claim: only one worker
                    # succeeds; losers see NoNodeError and retry.
                    self.client.delete(f"/queue/{task}")
                except NoNodeError:
                    continue  # another worker won the race
                claimed[self.name].append(data.decode())
                return True

    workers = [Worker(f"worker-{i}") for i in range(3)]
    # Round-robin claiming: each worker grabs one task per round, so the
    # virtual-clock interleaving spreads work across sessions.
    busy = True
    while busy:
        busy = False
        for w in workers:
            busy |= w.claim_one()

    total = sum(len(v) for v in claimed.values())
    all_jobs = sorted(j for v in claimed.values() for j in v)
    print("claims per worker:",
          {k: len(v) for k, v in claimed.items()})
    assert total == 10, f"expected 10 claims, got {total}"
    assert all_jobs == sorted(f"job {i}" for i in range(10))  # exactly once
    print("every task processed exactly once ✓")
    print(f"simulated time {cloud.now/1000:.1f} s, "
          f"cost ${cloud.meter.total:.6f}")


if __name__ == "__main__":
    main()
