"""Atomic configuration swap with ``transaction()`` (ZooKeeper's multi).

A deployment pipeline promotes a staged configuration to production: the
new primary and secondary configs must flip together, the staging marker
must disappear, and the swap must be guarded against a concurrent deploy
(version check on the release pointer).  A crash or race between four
separate writes would leave the cluster half-configured; one atomic
transaction cannot — either every member op commits under one transaction
id, or none do and the per-op errors say why.

The demo performs one successful swap, then shows a conflicting deploy
being rolled back wholesale, and compares the queue/invocation traffic of
the transaction against the equivalent sequence of single writes.
"""

from repro.cloud import Cloud
from repro.faaskeeper import (
    BadVersionError,
    FaaSKeeperConfig,
    FaaSKeeperService,
    RolledBackError,
)


def main() -> None:
    cloud = Cloud.aws(seed=23)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig())
    deployer = fk.connect()

    # Bootstrap: production config v1 is live, v2 sits in staging.
    deployer.create("/cfg", b"")
    deployer.create("/cfg/release", b"v1")           # version-checked pointer
    deployer.create("/cfg/primary", b"primary-v1")
    deployer.create("/cfg/secondary", b"secondary-v1")
    deployer.create("/cfg/staging", b"v2-candidate")
    release_version = deployer.get_data("/cfg/release")[1].version

    # A watcher (e.g. the serving fleet) observes the release pointer.
    events = []
    observer = fk.connect()
    observer.get_data("/cfg/release", watch=events.append)

    # --- the atomic swap ------------------------------------------------
    with deployer.transaction() as txn:
        txn.check("/cfg/release", version=release_version)
        txn.set_data("/cfg/release", b"v2")
        txn.set_data("/cfg/primary", b"primary-v2")
        txn.set_data("/cfg/secondary", b"secondary-v2")
        txn.delete("/cfg/staging")
    cloud.run(until=cloud.now + 5_000)

    primary = deployer.get_data("/cfg/primary")[0].decode()
    secondary = deployer.get_data("/cfg/secondary")[0].decode()
    staging = deployer.exists("/cfg/staging")
    assert (primary, secondary, staging) == ("primary-v2", "secondary-v2", None)
    assert len(events) == 1, "one transaction, one release notification"
    print(f"committed atomically: primary={primary} secondary={secondary} "
          f"staging removed, release watch fired once (txid {events[0].txid})")

    # --- a conflicting deploy is rolled back wholesale ------------------
    rival = fk.connect()
    results = (rival.transaction()
               .check("/cfg/release", version=release_version)  # stale!
               .set_data("/cfg/primary", b"primary-rogue")
               .delete("/cfg/secondary")
               .commit())
    assert isinstance(results[0], BadVersionError)
    assert all(isinstance(r, RolledBackError) for r in results[1:])
    assert deployer.get_data("/cfg/primary")[0] == b"primary-v2"
    assert deployer.exists("/cfg/secondary") is not None
    print("conflicting deploy rolled back: "
          + ", ".join(type(r).__name__ for r in results))

    # --- why it is also cheaper -----------------------------------------
    # The 5-op transaction rode ONE session-queue message and ONE leader
    # invocation; five single writes pay five of each (the per-invocation
    # cost the paper's Section 5.3 model is built around).
    queue_sends = sum(q.sent for q in fk._session_queues.values())
    leader_msgs = fk.leader_queue.sent
    print(f"traffic so far: {queue_sends} session-queue messages, "
          f"{leader_msgs} leader messages for "
          f"{5 + 5 + 2} logical write ops")
    print(f"simulated cost of this demo: ${cloud.meter.total:.6f}")


if __name__ == "__main__":
    main()
