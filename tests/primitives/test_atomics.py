"""Unit tests for atomic counter and atomic list."""

import pytest

from repro.cloud import Cloud, OpContext
from repro.primitives import AtomicCounter, AtomicList


@pytest.fixture
def cloud():
    return Cloud.aws(seed=7)


@pytest.fixture
def kv(cloud):
    kv = cloud.kv()
    kv.create_table("sys")
    return kv


CTX = OpContext()


def test_counter_starts_at_zero(cloud, kv):
    counter = AtomicCounter(kv, "sys", "txid")
    assert cloud.run_process(counter.get(CTX)) == 0


def test_counter_increment_returns_new_value(cloud, kv):
    counter = AtomicCounter(kv, "sys", "txid")

    def flow():
        a = yield from counter.increment(CTX)
        b = yield from counter.increment(CTX, 5)
        c = yield from counter.get(CTX)
        return a, b, c

    assert cloud.run_process(flow()) == (1, 6, 6)


def test_counter_concurrent_increments_all_counted(cloud, kv):
    counter = AtomicCounter(kv, "sys", "txid")

    def worker():
        for _ in range(10):
            yield from counter.increment(CTX)

    for _ in range(5):
        cloud.env.process(worker())
    cloud.run(until=60_000)
    assert cloud.run_process(counter.get(CTX)) == 50


def test_counter_decrement(cloud, kv):
    counter = AtomicCounter(kv, "sys", "txid")

    def flow():
        yield from counter.increment(CTX, 10)
        return (yield from counter.increment(CTX, -4))

    assert cloud.run_process(flow()) == 6


def test_list_append_and_get(cloud, kv):
    lst = AtomicList(kv, "sys", "epoch")

    def flow():
        yield from lst.append(CTX, ["w1", "w2"])
        yield from lst.append(CTX, ["w3"])
        return (yield from lst.get(CTX))

    assert cloud.run_process(flow()) == ["w1", "w2", "w3"]


def test_list_remove(cloud, kv):
    lst = AtomicList(kv, "sys", "epoch")

    def flow():
        yield from lst.append(CTX, ["a", "b", "c", "b"])
        return (yield from lst.remove(CTX, ["b", "zzz"]))

    assert cloud.run_process(flow()) == ["a", "c", "b"]


def test_list_pop_head(cloud, kv):
    lst = AtomicList(kv, "sys", "q")

    def flow():
        yield from lst.append(CTX, [1, 2, 3])
        return (yield from lst.pop_head(CTX, 2))

    assert cloud.run_process(flow()) == [3]


def test_list_get_missing_is_empty(cloud, kv):
    lst = AtomicList(kv, "sys", "nope")
    assert cloud.run_process(lst.get(CTX)) == []


def test_list_concurrent_appends_lose_nothing(cloud, kv):
    lst = AtomicList(kv, "sys", "watches")

    def worker(tag):
        for i in range(5):
            yield from lst.append(CTX, [f"{tag}-{i}"])

    for t in range(4):
        cloud.env.process(worker(t))
    cloud.run(until=60_000)
    final = cloud.run_process(lst.get(CTX))
    assert len(final) == 20
    assert len(set(final)) == 20


def test_counter_latency_matches_table_6a(cloud, kv):
    """Atomic counter median ~5.6 ms (Table 6a)."""
    counter = AtomicCounter(kv, "sys", "txid")

    def flow():
        times = []
        for _ in range(200):
            t0 = cloud.now
            yield from counter.increment(CTX)
            times.append(cloud.now - t0)
        times.sort()
        return times[len(times) // 2]

    median = cloud.run_process(flow())
    assert 4.5 < median < 7.0


def test_list_append_large_batch_slower(cloud, kv):
    """Table 6a shape: large appends are dominated by the payload term
    (~0.07 ms/kB on top of the ~5.9 ms base)."""
    lst = AtomicList(kv, "sys", "big")
    payload = ["x" * 1024 for _ in range(256)]  # 256 kB, inside item limit

    def flow():
        times = []
        for _ in range(30):
            yield from lst.pop_head(CTX, 1000)
            t0 = cloud.now
            yield from lst.append(CTX, payload)
            times.append(cloud.now - t0)
        times.sort()
        return times[len(times) // 2]

    median = cloud.run_process(flow())
    assert median > 15


def test_list_append_rejects_growth_past_item_limit(cloud, kv):
    from repro.cloud import ItemTooLarge

    lst = AtomicList(kv, "sys", "big")
    payload = ["x" * 1024 for _ in range(300)]

    def flow():
        yield from lst.append(CTX, payload)
        yield from lst.append(CTX, payload)  # second append crosses 400 kB

    with pytest.raises(ItemTooLarge):
        cloud.run_process(flow())
