"""Unit tests for the timed lock."""

import pytest

from repro.cloud import Cloud, OpContext, Set
from repro.primitives import TimedLock


@pytest.fixture
def cloud():
    return Cloud.aws(seed=99)


@pytest.fixture
def setup(cloud):
    kv = cloud.kv()
    kv.create_table("nodes")
    cloud.run_process(kv.put_item(OpContext(), "nodes", "/a", {"data": "x"}))
    lock = TimedLock(kv, "nodes", max_hold_ms=2000)
    return kv, lock, OpContext()


def test_acquire_free_lock(cloud, setup):
    kv, lock, ctx = setup
    handle = cloud.run_process(lock.acquire(ctx, "/a"))
    assert handle is not None
    assert handle.item["data"] == "x"
    assert kv.table("nodes").raw("/a")["lock"]["ts"] == handle.timestamp


def test_second_acquire_fails_while_held(cloud, setup):
    kv, lock, ctx = setup

    def flow():
        h1 = yield from lock.acquire(ctx, "/a")
        h2 = yield from lock.acquire(ctx, "/a")
        return h1, h2

    h1, h2 = cloud.run_process(flow())
    assert h1 is not None
    assert h2 is None


def test_release_allows_reacquire(cloud, setup):
    kv, lock, ctx = setup

    def flow():
        h1 = yield from lock.acquire(ctx, "/a")
        ok = yield from lock.release(ctx, h1)
        h2 = yield from lock.acquire(ctx, "/a")
        return ok, h2

    ok, h2 = cloud.run_process(flow())
    assert ok is True
    assert h2 is not None


def test_expired_lock_can_be_taken_over(cloud, setup):
    kv, lock, ctx = setup

    def flow():
        h1 = yield from lock.acquire(ctx, "/a")
        yield cloud.env.timeout(2500)  # past max_hold_ms
        h2 = yield from lock.acquire(ctx, "/a")
        return h1, h2

    h1, h2 = cloud.run_process(flow())
    assert h1 is not None and h2 is not None
    assert h2.timestamp > h1.timestamp


def test_stale_holder_cannot_release_after_takeover(cloud, setup):
    kv, lock, ctx = setup

    def flow():
        h1 = yield from lock.acquire(ctx, "/a")
        yield cloud.env.timeout(2500)
        h2 = yield from lock.acquire(ctx, "/a")
        released = yield from lock.release(ctx, h1)  # stale handle
        return released, h2

    released, h2 = cloud.run_process(flow())
    assert released is False
    # new holder's lock still in place
    assert kv.table("nodes").raw("/a")["lock"]["ts"] == h2.timestamp


def test_guarded_update_applies_while_held(cloud, setup):
    kv, lock, ctx = setup

    def flow():
        h = yield from lock.acquire(ctx, "/a")
        image = yield from lock.guarded_update(ctx, h, [Set("data", "y")])
        return image

    image = cloud.run_process(flow())
    assert image["data"] == "y"
    assert "lock" in kv.table("nodes").raw("/a")  # still held


def test_guarded_update_noop_after_expiry_takeover(cloud, setup):
    """A holder that lost its lease must not overwrite newer state."""
    kv, lock, ctx = setup

    def flow():
        h1 = yield from lock.acquire(ctx, "/a")
        yield cloud.env.timeout(2500)
        h2 = yield from lock.acquire(ctx, "/a")
        yield from lock.guarded_update(ctx, h2, [Set("data", "new")])
        stale = yield from lock.guarded_update(ctx, h1, [Set("data", "stale")])
        return stale

    stale = cloud.run_process(flow())
    assert stale is None
    assert kv.table("nodes").raw("/a")["data"] == "new"


def test_commit_unlock_atomic(cloud, setup):
    kv, lock, ctx = setup

    def flow():
        h = yield from lock.acquire(ctx, "/a")
        image = yield from lock.commit_unlock(ctx, h, [Set("data", "final")])
        return image

    image = cloud.run_process(flow())
    assert image["data"] == "final"
    raw = kv.table("nodes").raw("/a")
    assert "lock" not in raw
    assert raw["data"] == "final"


def test_commit_unlock_rejected_when_lease_lost(cloud, setup):
    kv, lock, ctx = setup

    def flow():
        h1 = yield from lock.acquire(ctx, "/a")
        yield cloud.env.timeout(2500)
        h2 = yield from lock.acquire(ctx, "/a")
        result = yield from lock.commit_unlock(ctx, h1, [Set("data", "stale")])
        return result, h2

    result, h2 = cloud.run_process(flow())
    assert result is None
    raw = kv.table("nodes").raw("/a")
    assert raw["data"] == "x"
    assert raw["lock"]["ts"] == h2.timestamp


def test_lock_on_missing_item_creates_it(cloud, setup):
    kv, lock, ctx = setup
    handle = cloud.run_process(lock.acquire(ctx, "/fresh"))
    assert handle is not None
    assert kv.table("nodes").raw("/fresh")["lock"]["ts"] == handle.timestamp


def test_extra_condition_in_commit(cloud, setup):
    from repro.cloud import Attr

    kv, lock, ctx = setup

    def flow():
        h = yield from lock.acquire(ctx, "/a")
        return (yield from lock.commit_unlock(
            ctx, h, [Set("data", "z")], extra_condition=Attr("data") == "WRONG",
        ))

    assert cloud.run_process(flow()) is None
    assert kv.table("nodes").raw("/a")["data"] == "x"


def test_concurrent_contenders_exactly_one_wins(cloud, setup):
    """N processes race for the same lock at the same instant."""
    kv, lock, ctx = setup
    wins = []

    def contender(tag):
        h = yield from lock.acquire(ctx, "/a")
        if h is not None:
            wins.append(tag)

    for i in range(8):
        cloud.env.process(contender(i))
    cloud.run(until=5000)
    assert len(wins) == 1
