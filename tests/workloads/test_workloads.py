"""Tests for workload generators and the HBase coordination trace."""

import pytest

from repro.cloud import Cloud
from repro.workloads import (
    CORE_WORKLOADS,
    HBaseSimulation,
    HBaseZnodeLayout,
    MixSpec,
    generate_mix,
)
from repro.workloads.ycsb import YcsbWorkload


def test_mix_respects_read_fraction():
    spec = MixSpec(n_ops=2000, read_fraction=0.9, seed=3)
    ops = list(generate_mix(spec))
    reads = sum(1 for op, _, _ in ops if op == "read")
    assert len(ops) == 2000
    assert 0.85 < reads / len(ops) < 0.95


def test_mix_deterministic_per_seed():
    spec = MixSpec(n_ops=100, read_fraction=0.5, seed=9)
    assert list(generate_mix(spec)) == list(generate_mix(spec))


def test_mix_write_payload_size():
    spec = MixSpec(n_ops=200, read_fraction=0.0, value_bytes=512, seed=1)
    for op, _path, data in generate_mix(spec):
        assert op == "write"
        assert len(data) == 512


def test_ycsb_core_workloads_well_formed():
    names = [w.name for w in CORE_WORKLOADS]
    assert names == ["A", "B", "C", "D", "E", "F"]
    with pytest.raises(ValueError):
        YcsbWorkload("bad", read=0.5)


def test_hbase_layout_matches_paper_stats():
    """Section 5.1: 29 nodes, median 0 bytes, mean ~46, max 320."""
    layout = HBaseZnodeLayout(n_regionservers=3)
    nodes = layout.nodes()
    assert len(nodes) == 29
    sizes = sorted(len(d) for _p, d in nodes)
    assert sizes[len(sizes) // 2] == 0
    mean = sum(sizes) / len(sizes)
    assert 40 <= mean <= 55
    assert max(sizes) == 320


def test_hbase_simulation_low_zookeeper_usage():
    """Figure 5's shape: thousands of HBase requests, ZooKeeper usage tiny
    and VM utilization in the ~0.5-1% band."""
    cloud = Cloud.aws(seed=44)
    sim = HBaseSimulation(cloud)
    sim.run_standard_experiment(phase_ms=60_000)  # shortened phases
    zk_total = sim.zk_reads + sim.zk_writes
    assert sim.hbase_requests > 100 * zk_total
    assert zk_total < 1000  # "less than a thousand requests"
    cpu = [s.cpu for s in sim.samples]
    assert max(cpu) < 0.15
    assert sum(cpu) / len(cpu) < 0.05


def test_hbase_writes_are_rare_after_setup():
    cloud = Cloud.aws(seed=45)
    sim = HBaseSimulation(cloud)
    setup_writes = sim.zk_writes
    sim.run_standard_experiment(phase_ms=60_000)
    phase_writes = sim.zk_writes - setup_writes
    assert phase_writes <= 12  # "12 writes" annotation in Figure 5
