"""Runtime-sanitizer tests: the FK002/FK003 assertions armed by
``FK_SANITIZE=1``, both as pure functions and wired through the
simulated kvstore."""

import pytest

from repro.cloud import Attr, Cloud, OpContext, Remove, Set
from repro.fklint import sanitize
from repro.fklint.sanitize import SanitizerError, check_mutation


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv("FK_SANITIZE", "1")


@pytest.fixture
def cloud():
    return Cloud.aws(seed=99)


@pytest.fixture
def ctx():
    return OpContext()


# ------------------------------------------------------- unit: enabled
def test_disarmed_by_default(monkeypatch):
    monkeypatch.delenv("FK_SANITIZE", raising=False)
    assert not sanitize.enabled()
    monkeypatch.setenv("FK_SANITIZE", "1")
    assert sanitize.enabled()


# ------------------------------------------------- unit: check_mutation
def test_fk002_rejects_direct_log_and_outbox_writes():
    for table in ("fk-system-log", "fk-system-outbox"):
        for method in ("put_item", "update_item"):
            with pytest.raises(SanitizerError, match="FK002"):
                check_mutation(method, table, "k")


def test_fk002_allows_transactional_log_writes():
    check_mutation("update_item", "fk-system-log", "k", transactional=True)


def test_fk002_rejects_unconditional_log_delete():
    with pytest.raises(SanitizerError, match="FK002"):
        check_mutation("delete_item", "fk-system-log", "k")
    check_mutation("delete_item", "fk-system-log", "k",
                   condition=object())


def test_fk003_rejects_unguarded_watch_instance_remove():
    with pytest.raises(SanitizerError, match="FK003"):
        check_mutation("update_item", "fk-system-watches", "/a",
                       updates=[Remove("inst.exists")])


def test_fk003_allows_guarded_or_non_instance_updates():
    check_mutation("update_item", "fk-system-watches", "/a",
                   updates=[Remove("inst.exists")], condition=object())
    check_mutation("update_item", "fk-system-watches", "/a",
                   updates=[Remove("pending")])
    check_mutation("update_item", "fk-user-nodes", "/a",
                   updates=[Remove("inst.exists")])


def test_fk003_applies_inside_transactions_too():
    with pytest.raises(SanitizerError, match="FK003"):
        check_mutation("update_item", "fk-system-watches", "/a",
                       updates=[Remove("inst.data")], transactional=True)


# --------------------------------------------- integration: the kvstore
def test_armed_kvstore_rejects_direct_log_put(armed, cloud, ctx):
    kv = cloud.kv()
    kv.create_table("fk-system-log")

    def flow():
        yield from kv.put_item(ctx, "fk-system-log", "txid-1", {"t": 1})

    with pytest.raises(SanitizerError, match="FK002"):
        cloud.run_process(flow())


def test_armed_kvstore_accepts_the_commit_transaction(armed, cloud, ctx):
    kv = cloud.kv()
    kv.create_table("fk-system-log")
    kv.create_table("fk-system-outbox")

    def flow():
        images = yield from kv.transact_update(ctx, [
            ("fk-system-log", "txid-1", [Set("t", 1)], None),
            ("fk-system-outbox", "ev-1", [Set("t", 1)], None),
        ])
        return images

    assert len(cloud.run_process(flow())) == 2


def test_armed_kvstore_rejects_unguarded_watch_sweep(armed, cloud, ctx):
    kv = cloud.kv()
    kv.create_table("fk-system-watches")

    def set_up():
        yield from kv.put_item(ctx, "fk-system-watches", "/a",
                               {"inst": {"id": 7}})

    cloud.run_process(set_up())

    def sweep():
        yield from kv.update_item(ctx, "fk-system-watches", "/a",
                                  [Remove("inst")])

    with pytest.raises(SanitizerError, match="FK003"):
        cloud.run_process(sweep())

    def guarded_sweep():
        yield from kv.update_item(ctx, "fk-system-watches", "/a",
                                  [Remove("inst")],
                                  condition=Attr("inst").exists())

    cloud.run_process(guarded_sweep())


def test_disarmed_kvstore_does_not_intercept(monkeypatch, cloud, ctx):
    monkeypatch.delenv("FK_SANITIZE", raising=False)
    kv = cloud.kv()
    kv.create_table("fk-system-log")

    def flow():
        yield from kv.put_item(ctx, "fk-system-log", "txid-1", {"t": 1})

    cloud.run_process(flow())  # discipline unchecked when disarmed


def test_sanitized_service_runs_a_real_workload(armed):
    """End-to-end: a whole FaaSKeeper deployment under FK_SANITIZE=1 —
    create/set/get/delete plus a watch consume — trips nothing."""
    from repro.faaskeeper import FaaSKeeperService

    service = FaaSKeeperService.deploy(Cloud.aws(seed=7))
    client = service.connect()
    client.create("/job", b"v0")
    fired = []
    client.get_data("/job", watch=fired.append)
    client.set_data("/job", b"v1")
    data, _stat = client.get_data("/job")
    assert data == b"v1"
    client.delete("/job")
    assert fired  # the watch pipeline ran under the sanitizer
