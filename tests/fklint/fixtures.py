"""Good/bad source fixtures for the fklint self-tests.

Each BAD fixture carries ``# expect: FKxxx`` markers on the offending
lines; :func:`expected_findings` parses them into (rule, line) pairs so
the tests assert *exact* rule ids and line numbers, not just counts.
Each rule also has a GOOD twin exercising the sanctioned idiom, which
must produce zero findings.
"""

from __future__ import annotations

import re
from typing import List, Tuple

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z0-9, ]+)")


def expected_findings(source: str) -> List[Tuple[str, int]]:
    """(rule, line) pairs declared by ``# expect:`` markers, sorted."""
    out: List[Tuple[str, int]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            out.extend((rule.strip(), lineno)
                       for rule in match.group("rules").split(",")
                       if rule.strip())
    return sorted(out)


# --------------------------------------------------------------- FK001
FK001_BAD = """\
import time
import random
import uuid
from datetime import datetime
from time import monotonic as mono

def handler():
    start = time.time()          # expect: FK001
    time.sleep(0.5)              # expect: FK001
    t = mono()                   # expect: FK001
    stamp = datetime.now()       # expect: FK001
    rid = uuid.uuid4()           # expect: FK001
    jitter = random.random()     # expect: FK001
    rng = random.Random()        # expect: FK001
    return start, t, stamp, rid, jitter, rng
"""

FK001_GOOD = """\
import random

def handler(env, rng_registry):
    start = env.now
    yield env.timeout(500.0)
    rng = rng_registry.stream("handler")
    seeded = random.Random(42)
    return start, rng.random(), seeded.random()
"""

# --------------------------------------------------------------- FK002
FK002_BAD = """\
from repro.faaskeeper.layout import SYSTEM_LOG

def sloppy(store, ctx):
    yield from store.put_item(ctx, "fk-system-log", "txid-7", {})      # expect: FK002
    yield from store.update_item(ctx, SYSTEM_LOG, "head", [])          # expect: FK002
    yield from store.put_item(ctx, "fk-system-outbox", "ev-1", {})     # expect: FK002
    yield from store.delete_item(ctx, "fk-system-log", "txid-1")       # expect: FK002
"""

FK002_GOOD = """\
def disciplined(store, ctx, cond, floor_cond):
    yield from store.transact_update(ctx, [
        ("fk-system-log", "txid-7", [], cond),
        ("fk-system-outbox", "ev-7", [], cond),
    ])
    yield from store.delete_item(ctx, "fk-system-log", "txid-1",
                                 condition=floor_cond)
    yield from store.put_item(ctx, "fk-user-nodes", "/a", {})
"""

#: FK002 from outside the core: any system-table mutation is flagged.
FK002_BAD_EXAMPLE = """\
def demo(store, ctx):
    yield from store.put_item(ctx, "fk-system-state", "epoch", {})  # expect: FK002
"""

# --------------------------------------------------------------- FK003
FK003_BAD = """\
from repro.cloud.expressions import Remove

def sweep(store, ctx, path):
    yield from store.update_item(
        ctx, "fk-system-watches", path,
        [Remove("inst.exists")])  # expect: FK003
    yield from store.transact_update(ctx, [
        ("fk-system-watches", path, [Remove("inst.data")], None),  # expect: FK003
    ])
"""

FK003_GOOD = """\
from repro.cloud.expressions import Remove

def guarded(store, ctx, path, guard):
    yield from store.update_item(
        ctx, "fk-system-watches", path,
        [Remove("inst.exists")], condition=guard)
    yield from store.update_item(
        ctx, "fk-system-watches", path,
        [Remove("pending")])
    yield from store.update_item(
        ctx, "fk-user-nodes", path,
        [Remove("inst.exists")])
"""

# --------------------------------------------------------------- FK004
FK004_BAD = """\
from collections import defaultdict

EPOCH_CACHE = {}                      # expect: FK004
SEEN = defaultdict(int)               # expect: FK004
PENDING: list = []                    # expect: FK004

def handler(event):
    EPOCH_CACHE[event.txid] = event
"""

FK004_GOOD = """\
STAGES = ("leader", "distributor")
LIMITS = frozenset({1, 2, 3})
NAME = "leader"
__all__ = ["LeaderLogic"]

class LeaderLogic:
    def __init__(self):
        self.epoch_cache = {}

    def cold_restart(self):
        self.epoch_cache = {}
"""

# --------------------------------------------------------------- FK005
FK005_BAD = """\
import time

class Recipe:
    def co_acquire(self):
        time.sleep(0.1)                       # expect: FK005
        self.env.run(until=self.deadline)     # expect: FK005
        data = self.client.get_data(self.path)  # expect: FK005
        ok = self._run(self.co_helper())      # expect: FK005
        yield self.client.exists_async(self.path).event
        return data, ok
"""

FK005_GOOD = """\
class Recipe:
    def co_acquire(self):
        yield self.env.timeout(100.0)
        data = yield self.client.get_data_async(self.path).event
        yield from self.co_helper()
        return data

    def acquire(self):
        return self._run(self.co_acquire())
"""

# --------------------------------------------------------------- FK006
FK006_BAD = """\
class FaaSKeeperConfig:
    documented_knob: int = 1
    mystery_knob: float = 2.0     # expect: FK006 (absent from README)
    no_default_knob: int          # expect: FK006
    untyped_knob = "x86"          # expect: FK006
"""

#: README text paired with FK006_BAD: mentions every knob but
#: ``mystery_knob`` (and the structurally-broken ones, which are flagged
#: regardless of documentation).
FK006_README = """\
## Configuration reference
| `documented_knob` | 1 | a knob |
| `no_default_knob` | — | documented but lacking a default |
| `untyped_knob` | "x86" | documented but lacking an annotation |
"""

FK006_GOOD = """\
class FaaSKeeperConfig:
    documented_knob: int = 1
    _private_detail = object()
"""

# --------------------------------------------------------------- FK007
FK007_BAD = """\
class StageLogic:
    def handler(self, fctx, payload):
        kv = self.service.cloud.kv("dynamodb:system")     # expect: FK007
        obj = fctx.cloud.objectstore("s3")                # expect: FK007
        cache = self.service.cloud.cache("redis")         # expect: FK007
        yield from kv.put_item(fctx.ctx, "t", "k", {})
"""

FK007_GOOD = """\
class StageLogic:
    def handler(self, fctx, payload):
        store = self.service.system_store
        item = yield from store.get_item(fctx.ctx, "t", "k")
        yield from self.service.user_store.write_node(
            fctx.ctx, "us-east-1", "/a", item)
"""
