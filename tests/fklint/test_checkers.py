"""Per-rule self-tests: every FK rule has at least one fixture it flags
(with exact rule ids *and* line numbers, via ``# expect:`` markers) and
one good twin it passes."""

import pytest

from repro.fklint import lint_source

from . import fixtures

FAASKEEPER = "src/repro/faaskeeper"


def found(source, scope_path, select, readme_text=None):
    return sorted(
        (f.rule, f.line)
        for f in lint_source(source, path="<fixture>", scope_path=scope_path,
                             readme_text=readme_text, select=select))


BAD_CASES = [
    pytest.param(fixtures.FK001_BAD, f"{FAASKEEPER}/leader.py",
                 ["FK001"], None, id="FK001-core"),
    pytest.param(fixtures.FK001_BAD, "benchmarks/bench_x.py",
                 ["FK001"], None, id="FK001-benchmark"),
    pytest.param(fixtures.FK001_BAD, "examples/demo.py",
                 ["FK001"], None, id="FK001-example"),
    pytest.param(fixtures.FK002_BAD, f"{FAASKEEPER}/snapshot.py",
                 ["FK002"], None, id="FK002-core"),
    pytest.param(fixtures.FK002_BAD_EXAMPLE, "examples/demo.py",
                 ["FK002"], None, id="FK002-example"),
    pytest.param(fixtures.FK003_BAD, f"{FAASKEEPER}/watches.py",
                 ["FK003"], None, id="FK003"),
    pytest.param(fixtures.FK004_BAD, f"{FAASKEEPER}/watch_fn.py",
                 ["FK004"], None, id="FK004"),
    pytest.param(fixtures.FK005_BAD, f"{FAASKEEPER}/recipes/lock.py",
                 ["FK005"], None, id="FK005"),
    pytest.param(fixtures.FK006_BAD, f"{FAASKEEPER}/config.py",
                 ["FK006"], fixtures.FK006_README, id="FK006"),
    pytest.param(fixtures.FK007_BAD, f"{FAASKEEPER}/heartbeat.py",
                 ["FK007"], None, id="FK007"),
]

GOOD_CASES = [
    pytest.param(fixtures.FK001_GOOD, f"{FAASKEEPER}/leader.py",
                 ["FK001"], None, id="FK001"),
    pytest.param(fixtures.FK002_GOOD, f"{FAASKEEPER}/snapshot.py",
                 ["FK002"], None, id="FK002"),
    pytest.param(fixtures.FK003_GOOD, f"{FAASKEEPER}/watches.py",
                 ["FK003"], None, id="FK003"),
    pytest.param(fixtures.FK004_GOOD, f"{FAASKEEPER}/leader.py",
                 ["FK004"], None, id="FK004"),
    pytest.param(fixtures.FK005_GOOD, f"{FAASKEEPER}/recipes/lock.py",
                 ["FK005"], None, id="FK005"),
    pytest.param(fixtures.FK006_GOOD, f"{FAASKEEPER}/config.py",
                 ["FK006"], fixtures.FK006_README, id="FK006"),
    pytest.param(fixtures.FK007_GOOD, f"{FAASKEEPER}/heartbeat.py",
                 ["FK007"], None, id="FK007"),
]


@pytest.mark.parametrize("source, scope, select, readme", BAD_CASES)
def test_bad_fixture_flags_expected_lines(source, scope, select, readme):
    expected = fixtures.expected_findings(source)
    assert expected, "bad fixture must declare # expect: markers"
    assert found(source, scope, select, readme) == expected


@pytest.mark.parametrize("source, scope, select, readme", GOOD_CASES)
def test_good_fixture_is_clean(source, scope, select, readme):
    assert found(source, scope, select, readme) == []


# ------------------------------------------------------------- scoping
def test_fk001_does_not_apply_outside_scoped_trees():
    # The sim kernel itself (and tests) may read wall time.
    assert found(fixtures.FK001_BAD, "src/repro/sim/kernel.py",
                 ["FK001"]) == []


def test_fk004_only_applies_to_handler_modules():
    # Module-level registries are fine outside the handler modules.
    assert found(fixtures.FK004_BAD, "src/repro/faaskeeper/model.py",
                 ["FK004"]) == []


def test_fk006_readme_check_skipped_without_readme_text():
    results = found(fixtures.FK006_BAD, "src/repro/faaskeeper/config.py",
                    ["FK006"], readme_text=None)
    # Structural findings (missing default, missing annotation) remain.
    assert results == [("FK006", 4), ("FK006", 5)]


def test_fk007_only_applies_to_handler_modules():
    # Backends and the deployment wiring own the raw clients by design.
    assert found(fixtures.FK007_BAD, "src/repro/faaskeeper/userstore.py",
                 ["FK007"]) == []
    assert found(fixtures.FK007_BAD, "src/repro/faaskeeper/service.py",
                 ["FK007"]) == []


def test_fk001_seeded_random_is_allowed():
    assert found("import random\nrng = random.Random(7)\n",
                 "src/repro/faaskeeper/chaos.py", ["FK001"]) == []


def test_fk001_sees_through_aliases():
    source = "from time import time as wall\nx = wall()\n"
    assert found(source, "src/repro/faaskeeper/leader.py",
                 ["FK001"]) == [("FK001", 2)]
