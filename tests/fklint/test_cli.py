"""CLI self-tests: exit codes, report formats, rule listing."""

import json

import pytest

from repro.fklint.cli import main

BAD = ("import time\n"
       "time.sleep(1)\n")
GOOD = "X = 1\n"


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "faaskeeper"
    pkg.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    (pkg / "leader.py").write_text(BAD)
    (pkg / "model.py").write_text(GOOD)
    return tmp_path


def test_exit_zero_on_clean_tree(tree, capsys):
    assert main([str(tree / "src" / "repro" / "faaskeeper" / "model.py")]) == 0
    assert "all clean" in capsys.readouterr().out


def test_exit_one_with_findings(tree, capsys):
    assert main([str(tree / "src")]) == 1
    out = capsys.readouterr().out
    assert "FK001" in out and "leader.py:2:1" in out
    assert "found 1 problem in 2 files" in out


def test_exit_two_on_missing_path(capsys):
    assert main(["/no/such/dir-fklint"]) == 2
    assert "error" in capsys.readouterr().err


def test_json_format_is_machine_readable(tree, capsys):
    assert main([str(tree / "src"), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files_checked"] == 2
    (finding,) = report["findings"]
    assert finding["rule"] == "FK001"
    assert finding["line"] == 2


def test_select_filters_rules(tree):
    assert main([str(tree / "src"), "--select", "FK006"]) == 0
    assert main([str(tree / "src"), "--select", "determinism"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("FK001", "FK002", "FK003", "FK004", "FK005", "FK006"):
        assert rule in out
