"""Framework-level self-tests: registry, suppressions, parse errors,
selection, path walking, and the repo-wide self-lint gate."""

from pathlib import Path

from repro.fklint import all_checkers, lint_file, lint_paths, lint_source
from repro.fklint.core import PARSE_ERROR_RULE, find_project_root

REPO_ROOT = Path(__file__).resolve().parents[2]

SLEEPER = ("import time\n"
           "time.sleep(1)\n")
SCOPE = "src/repro/faaskeeper/leader.py"


# ------------------------------------------------------------ registry
def test_all_seven_rules_are_registered():
    rules = [cls.rule for cls in all_checkers()]
    assert rules == ["FK001", "FK002", "FK003", "FK004", "FK005", "FK006",
                     "FK007"]


def test_every_checker_has_name_and_description():
    for cls in all_checkers():
        assert cls.name and cls.description


# -------------------------------------------------------- suppressions
def test_line_suppression_silences_only_that_line():
    source = ("import time\n"
              "time.sleep(1)  # fklint: disable=FK001\n"
              "time.sleep(2)\n")
    findings = lint_source(source, scope_path=SCOPE)
    assert [(f.rule, f.line) for f in findings] == [("FK001", 3)]


def test_file_suppression_silences_whole_file():
    source = ("# fklint: disable-file=FK001\n" + SLEEPER)
    assert lint_source(source, scope_path=SCOPE) == []


def test_suppression_of_other_rule_does_not_silence():
    source = ("import time\n"
              "time.sleep(1)  # fklint: disable=FK002\n")
    assert [f.rule for f in lint_source(source, scope_path=SCOPE)] == ["FK001"]


def test_all_wildcard_suppresses_everything():
    source = ("# fklint: disable-file=all\n" + SLEEPER)
    assert lint_source(source, scope_path=SCOPE) == []


def test_multi_rule_suppression_comment():
    source = ("import time\n"
              "time.sleep(1)  # fklint: disable=FK001, FK005\n")
    assert lint_source(source, scope_path=SCOPE) == []


# -------------------------------------------------------- parse errors
def test_syntax_error_reports_fk000():
    findings = lint_source("def broken(:\n", scope_path=SCOPE)
    assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
    assert findings[0].line == 1


# ------------------------------------------------------------ selection
def test_select_by_rule_id_and_by_name():
    by_id = lint_source(SLEEPER, scope_path=SCOPE, select=["FK001"])
    by_name = lint_source(SLEEPER, scope_path=SCOPE, select=["determinism"])
    assert [f.rule for f in by_id] == ["FK001"]
    assert [(f.rule, f.line) for f in by_name] == \
        [(f.rule, f.line) for f in by_id]


def test_select_excludes_other_rules():
    assert lint_source(SLEEPER, scope_path=SCOPE, select=["FK006"]) == []


# ------------------------------------------------------------- findings
def test_finding_format_and_dict_round_trip():
    (finding,) = lint_source(SLEEPER, path="x.py", scope_path=SCOPE)
    assert finding.format().startswith("x.py:2:1: FK001 ")
    assert finding.to_dict()["rule"] == "FK001"
    assert finding.to_dict()["line"] == 2


# ---------------------------------------------------------- path driver
def test_lint_file_and_paths_on_disk(tmp_path):
    bad = tmp_path / "src" / "repro" / "faaskeeper" / "leader.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(SLEEPER)
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    (tmp_path / "src" / "repro" / "faaskeeper" / "__pycache__").mkdir()
    (tmp_path / "src" / "repro" / "faaskeeper" / "__pycache__" /
     "junk.py").write_text("time.sleep(")

    assert find_project_root(bad) == tmp_path
    assert [f.rule for f in lint_file(str(bad))] == ["FK001"]

    findings, nfiles = lint_paths([str(tmp_path / "src")])
    assert nfiles == 1  # __pycache__ skipped
    assert [f.rule for f in findings] == ["FK001"]


# ------------------------------------------------------- self-lint gate
def test_repo_lints_clean():
    """The acceptance gate: the shipped tree has zero findings."""
    paths = [str(REPO_ROOT / d) for d in ("src", "examples", "benchmarks")]
    findings, nfiles = lint_paths(paths)
    assert nfiles > 100
    assert findings == [], "\n".join(f.format() for f in findings)
