"""Tests for stats summaries and table rendering."""

import pytest

from repro.analysis import (
    crossover,
    render_heatmap,
    render_table,
    summarize,
    who_wins,
)
from repro.sim.rng import percentile


def test_summarize_basic():
    s = summarize(list(range(1, 101)))
    assert s.n == 100
    assert s.min == 1 and s.max == 100
    assert s.p50 == pytest.approx(50.5)
    assert s.p99 == pytest.approx(99.01)
    assert s.row() == [1, 50.5, 90.1, 95.05, 99.01, 100]


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_percentile_single_sample():
    assert percentile([7.0], 99) == 7.0


def test_percentile_interpolation():
    assert percentile([0.0, 10.0], 50) == 5.0
    assert percentile([0.0, 10.0], 25) == 2.5


def test_crossover_found():
    xs = [0, 1, 2, 3]
    a = [0, 1, 2, 3]
    b = [2, 2, 2, 2]
    assert crossover(xs, a, b) == pytest.approx(2.0)


def test_crossover_none_when_no_crossing():
    assert crossover([0, 1], [0, 1], [5, 6]) is None


def test_who_wins():
    assert who_wins({"fk": 3.0, "zk": 1.0}) == "zk"


def test_render_table_alignment():
    out = render_table(["name", "value"], [["a", 1.5], ["bb", 22.25]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    assert "22.25" in lines[4]


def test_render_heatmap_includes_labels():
    out = render_heatmap(["r1", "r2"], ["c1", "c2"],
                         [[1.0, 2.0], [3.0, 4.0]])
    assert "r1" in out and "c2" in out and "4.00" in out


def test_fmt_small_and_large():
    from repro.analysis import fmt
    assert fmt(1.25e-6) == "1.25e-06"
    assert fmt(12345.0) == "12,345"
    assert fmt(0) == "0"
    assert fmt("x") == "x"
