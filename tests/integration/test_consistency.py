"""The Z1-Z4 consistency properties (paper Appendices A and B).

These are end-to-end tests against a full FaaSKeeper deployment, including
randomized multi-client interleavings checked against a sequential
reference model.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService

SLOW = settings(max_examples=8, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def fresh_service(seed=1, **kwargs):
    cloud = Cloud.aws(seed=seed)
    return cloud, FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(**kwargs))


# ------------------------------------------------------------------ Z1
def test_z1_no_partial_multi_node_state_ever_visible():
    """Create/delete touch node+parent atomically: at any sampled instant,
    child-list membership and node existence agree in system storage."""
    cloud, service = fresh_service(seed=101)
    c = service.connect()
    c.create("/p")

    violations = []

    def monitor():
        nodes = service.system_store.table("fk-system-nodes")
        while True:
            yield cloud.env.timeout(7)
            parent = nodes.raw("/p") or {}
            for name in ("a", "b"):
                child = nodes.raw(f"/p/{name}")
                child_exists = bool(child and child.get("exists"))
                in_list = name in parent.get("children", [])
                if child_exists != in_list:
                    violations.append((cloud.now, name, child_exists, in_list))

    cloud.env.process(monitor())
    for round_ in range(4):
        c.create("/p/a")
        c.create("/p/b")
        c.delete("/p/b")
        c.delete("/p/a")
    assert violations == []


# ------------------------------------------------------------------ Z2
def test_z2_session_writes_apply_in_submission_order():
    cloud, service = fresh_service(seed=102)
    c = service.connect()
    c.create("/a", b"")
    futures = [c.set_data_async("/a", f"v{i}".encode()) for i in range(10)]
    cloud.run(until=cloud.now + 120_000)
    txids = [f.wait().txid for f in futures]
    assert txids == sorted(txids)
    data, stat = c.get_data("/a")
    assert data == b"v9"
    assert stat.version == 10


def test_z2_interleaved_sessions_each_keep_fifo():
    cloud, service = fresh_service(seed=103)
    c1, c2 = service.connect(), service.connect()
    c1.create("/x", b"")
    c1.create("/y", b"")
    f1 = [c1.set_data_async("/x", f"a{i}".encode()) for i in range(6)]
    f2 = [c2.set_data_async("/y", f"b{i}".encode()) for i in range(6)]
    cloud.run(until=cloud.now + 120_000)
    t1 = [f.wait().txid for f in f1]
    t2 = [f.wait().txid for f in f2]
    assert t1 == sorted(t1)
    assert t2 == sorted(t2)
    assert (c1.get_data("/x")[0], c2.get_data("/y")[0]) == (b"a5", b"b5")


# ------------------------------------------------------------------ Z3
def test_z3_version_monotone_per_reader():
    """A client polling a node must never observe version going backwards."""
    cloud, service = fresh_service(seed=104)
    writer = service.connect()
    reader = service.connect()
    writer.create("/a", b"")
    seen = []

    def poll():
        for _ in range(40):
            yield cloud.env.timeout(23)
            fut = reader.get_data_async("/a")
            yield fut.event
            _, stat = fut.event.value
            seen.append((stat.modified_tx, stat.version))

    proc = cloud.env.process(poll())
    for i in range(10):
        writer.set_data("/a", f"v{i}".encode())
    cloud.env.run(until=proc)
    txs = [t for t, _v in seen]
    versions = [v for _t, v in seen]
    assert txs == sorted(txs)
    assert versions == sorted(versions)


def test_z3_two_clients_share_single_system_image():
    cloud, service = fresh_service(seed=105)
    c1, c2 = service.connect(), service.connect()
    c1.create("/a", b"")
    c1.set_data("/a", b"final")
    d1, s1 = c1.get_data("/a")
    d2, s2 = c2.get_data("/a")
    assert (d1, s1.modified_tx) == (d2, s2.modified_tx)


# ------------------------------------------------------------------ Z4
def test_z4_stalled_read_waits_for_own_notification():
    """Reading data written after a watch-triggering update must not
    complete before this session's notification was delivered."""
    cloud, service = fresh_service(seed=106)
    writer = service.connect()
    watcher = service.connect()
    writer.create("/w", b"")
    writer.create("/other", b"")

    delivery_order = []
    watcher.get_data("/w", watch=lambda ev: delivery_order.append(("watch", cloud.now)))

    # txid u: triggers the watch; txid v > u: what the watcher reads next.
    writer.set_data("/w", b"trigger")
    writer.set_data("/other", b"later")

    fut = watcher.get_data_async("/other")
    cloud.run(until=cloud.now + 60_000)
    data, stat = fut.wait()
    delivery_order.append(("read", cloud.now))
    watch_times = [t for kind, t in delivery_order if kind == "watch"]
    if data == b"later":  # the read observed v: notification must be first
        assert watch_times and watch_times[0] <= delivery_order[-1][1]


def test_z4_notifications_ordered_with_updates():
    """Multiple watch notifications arrive in txid order at a client."""
    cloud, service = fresh_service(seed=107)
    writer = service.connect()
    watcher = service.connect()
    for name in ("a", "b", "c"):
        writer.create(f"/{name}", b"")
    events = []
    for name in ("a", "b", "c"):
        watcher.get_data(f"/{name}", watch=events.append)
    writer.set_data("/a", b"1")
    writer.set_data("/b", b"2")
    writer.set_data("/c", b"3")
    cloud.run(until=cloud.now + 60_000)
    assert len(events) == 3
    txids = [e.txid for e in events]
    assert txids == sorted(txids)


# -------------------------------------------------- randomized model check
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=1),    # client index
              st.integers(min_value=0, max_value=2),    # node index
              st.integers(min_value=0, max_value=255)),  # value
    min_size=1, max_size=12))
@SLOW
def test_linearized_writes_match_txid_replay(ops):
    """All acknowledged writes, replayed in txid order against a sequential
    dict model, must produce exactly the final system state."""
    cloud, service = fresh_service(seed=108)
    clients = [service.connect(), service.connect()]
    paths = ["/n0", "/n1", "/n2"]
    setup = clients[0]
    for p in paths:
        setup.create(p, b"")

    futures = []
    for who, node, value in ops:
        data = bytes([value])
        futures.append((paths[node], data,
                        clients[who].set_data_async(paths[node], data)))
    cloud.run(until=cloud.now + 300_000)

    acked = []
    for path, data, fut in futures:
        assert fut.done
        res = fut.wait()
        acked.append((res.txid, path, data))
    # replay in global txid order
    model = {p: b"" for p in paths}
    for _txid, path, data in sorted(acked):
        model[path] = data
    for p in paths:
        data, _ = clients[0].get_data(p)
        assert data == model[p]
