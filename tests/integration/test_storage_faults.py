"""Seeded transient-fault schedules across every registered backend.

The acceptance gate of the self-healing storage layer: with a 5 % fault
rate armed on every storage endpoint (throttles, timeouts, connection
resets, partial writes), the default retry policy must absorb everything
— every acknowledged write lands exactly once, no session dies a
storage death — on every backend the registry knows.  Schedules are a
pure function of (seed, config): any failure prints the
``FK_STORAGE_FAULT_SEED`` to replay it locally.
"""

import os
import random

import pytest

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from repro.faaskeeper.chaos import ChaosMonkey, verify_exactly_once
from repro.faaskeeper.model import KeeperState
from repro.faaskeeper.userstore import registered_schemes

SCHEMES = registered_schemes()
FAULT_RATE = 0.05


def fault_seeds():
    pinned = os.environ.get("FK_STORAGE_FAULT_SEED")
    if pinned:  # empty string = unset (CI passes '' when not pinning)
        return [int(pinned)]
    count = int(os.environ.get("FK_STORAGE_FAULT_SEEDS", "4"))
    return list(range(1, count + 1))


def run_scenario(seed, scheme, rate=FAULT_RATE, crash_stage=None,
                 outbox=False):
    """One seeded faulty workload; returns violations + bookkeeping.

    With ``crash_stage`` the faults are armed through :class:`ChaosMonkey`
    alongside seeded sandbox crashes — the crash x storage-fault
    composition the PR 6 chaos suite left open."""
    cloud = Cloud.aws(seed=seed)
    extra = {}
    if outbox:
        extra.update(outbox_enabled=True, commit_log_enabled=True)
    if crash_stage:
        extra.update(free_fn_retries=2)
    config = FaaSKeeperConfig(user_store=scheme,
                              storage_faults=crash_stage is None,
                              storage_fault_rate=rate, **extra)
    service = FaaSKeeperService.deploy(cloud, config)
    if crash_stage:
        ChaosMonkey(service, seed=seed * 7919 + 13, stages=[crash_stage],
                    probability=0.3, budget_per_point=2,
                    storage_fault_rate=rate)
    rng = random.Random(seed)

    writer = service.connect()
    reader = service.connect()
    paths = ["/a", "/b", "/c"]
    expected = {}
    for path in paths + ["/doomed"]:
        writer.create(path, b"init")
        expected[path] = b"init"
    cloud.run(until=cloud.now + 60_000)

    futures = []
    for i in range(rng.randint(8, 14)):
        path = rng.choice(paths)
        data = f"{path[1:]}-{i}".encode()
        futures.append((path, data, writer.set_data_async(path, data)))
    delete_fut = writer.delete_async("/doomed")
    cloud.run(until=cloud.now + 240_000)

    violations = []
    acked = []
    for path, data, fut in futures:
        if not fut.done:
            violations.append(f"write {data!r} to {path} never completed")
            continue
        try:
            acked.append(fut.wait().txid)
        except Exception as exc:  # a fault leaked through the retry layer
            violations.append(
                f"write {data!r} to {path} failed: {exc!r} "
                "(a transient fault surfaced as session-fatal)")
            continue
        expected[path] = data
    if delete_fut.done:
        try:
            delete_fut.wait()
            expected["/doomed"] = None
        except Exception as exc:
            violations.append(f"delete of /doomed failed: {exc!r}")
    else:
        violations.append("delete of /doomed never completed")

    # Reads under faults must come back, and from the retry layer — never
    # as a raised storage error.
    for path in paths:
        data, _stat = reader.get_data(path)
        if expected[path] is not None and data != expected[path]:
            violations.append(
                f"read of {path} returned {data!r}, want {expected[path]!r}")

    cloud.run(until=cloud.now + 120_000)
    violations += verify_exactly_once(service, expected, acked)

    # Zero session-fatal storage errors at the default retry policy.
    for client in (writer, reader):
        if client.state == KeeperState.LOST:
            violations.append(f"session {client.session_id} died LOST")
    injected = sum(i.total_injected() for i in service.storage_injectors)
    return violations, injected, service


@pytest.mark.parametrize("scheme", SCHEMES)
def test_audits_pass_under_five_percent_faults(scheme):
    seeds = fault_seeds()
    injected_total = 0
    for seed in seeds:
        violations, injected, _svc = run_scenario(seed, scheme)
        injected_total += injected
        if violations:
            pytest.fail(
                f"[scheme={scheme} seed={seed} rate={FAULT_RATE}] "
                + "; ".join(violations)
                + f"\nreproduce locally: FK_STORAGE_FAULT_SEED={seed} "
                f"python -m pytest 'tests/integration/test_storage_faults.py"
                f"::test_audits_pass_under_five_percent_faults[{scheme}]'")
    # The matrix must actually inject faults, not pass vacuously.
    assert injected_total > 0, \
        f"no fault ever injected across seeds {seeds} on {scheme}"


def test_same_seed_replays_the_same_fault_schedule():
    """FK_STORAGE_FAULT_SEED replay UX: the schedule (and the whole run)
    is a pure function of (seed, config)."""
    def fingerprint(seed):
        violations, injected, service = run_scenario(seed, "hybrid")
        assert violations == []
        per_kind = {}
        for inj in service.storage_injectors:
            for kind, count in inj.injected.items():
                per_kind[kind] = per_kind.get(kind, 0) + count
        return injected, per_kind, service.cloud.now

    assert fingerprint(3) == fingerprint(3)


def test_different_seeds_draw_different_schedules():
    _v1, injected_a, _s1 = run_scenario(1, "mem")
    _v2, injected_b, _s2 = run_scenario(2, "mem")
    # Counts may coincide; the overall run trace must not.
    assert (_s1.cloud.now, injected_a) != (_s2.cloud.now, injected_b)


def test_crashes_and_faults_compose_with_outbox_audit():
    """Seeded sandbox crashes AND a seeded storage-fault schedule in the
    same run, with the transactional outbox on: the exactly-once and
    outbox-delivery audits must both hold (the composition the crash-only
    chaos suite couldn't exercise)."""
    for seed in fault_seeds():
        violations, injected, service = run_scenario(
            seed, "hybrid", rate=0.03, crash_stage="leader", outbox=True)
        if violations:
            pytest.fail(
                f"[composed seed={seed}] " + "; ".join(violations)
                + f"\nreproduce locally: FK_STORAGE_FAULT_SEED={seed} "
                "python -m pytest tests/integration/test_storage_faults.py"
                "::test_crashes_and_faults_compose_with_outbox_audit")
        assert service.config.outbox_enabled


def test_fault_metrics_surface_in_the_registry():
    violations, injected, service = run_scenario(5, "mem")
    assert violations == []
    snapshot = service.metrics_snapshot()
    gauge = snapshot["fk_storage_faults_injected"]["values"]
    assert sum(v for v in gauge.values()) == injected
    assert injected > 0
    retried = snapshot["fk_storage_retries_total"]["values"]
    assert sum(retried.values()) > 0  # the layer actually absorbed faults
