"""Differential testing: FaaSKeeper backends vs each other vs ZooKeeper.

The same operation sequence, executed against every FaaSKeeper user-store
backend and the ZooKeeper baseline, must produce the same logical tree
(paths, data, child lists) and raise the same error classes.  This is the
strongest evidence of API compatibility (Section 4.4).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from repro.faaskeeper.exceptions import FaaSKeeperError
from repro.zookeeper import deploy_zookeeper

BACKENDS = ("s3", "dynamodb", "hybrid", "redis")
PATHS = ["/d0", "/d1", "/d0/c0", "/d0/c1", "/d1/c0"]


def _apply_sequence(client, cloud, ops):
    """Run ops; returns (outcomes, final logical tree)."""
    outcomes = []
    for op, path, payload in ops:
        try:
            if op == "create":
                client.create(path, payload)
                outcomes.append("ok")
            elif op == "set":
                client.set_data(path, payload)
                outcomes.append("ok")
            elif op == "delete":
                client.delete(path)
                outcomes.append("ok")
        except FaaSKeeperError as exc:
            outcomes.append(type(exc).__name__)
    cloud.run(until=cloud.now + 5000)
    tree = {}
    for path in PATHS:
        stat = client.exists(path)
        if stat is None:
            continue
        data, _ = client.get_data(path)
        tree[path] = (data, tuple(client.get_children(path)))
    return outcomes, tree


def _gen_ops(seed, n):
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        op = rng.choice(["create", "set", "delete"])
        path = rng.choice(PATHS)
        ops.append((op, path, f"v{i}".encode()))
    return ops


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_backends_agree_with_each_other_and_zookeeper(seed):
    ops = _gen_ops(seed, 14)
    results = {}

    for backend in BACKENDS:
        cloud = Cloud.aws(seed=1000 + seed)
        service = FaaSKeeperService.deploy(
            cloud, FaaSKeeperConfig(user_store=backend))
        client = service.connect()
        results[backend] = _apply_sequence(client, cloud, ops)

    cloud = Cloud.aws(seed=2000 + seed)
    zk = deploy_zookeeper(cloud)
    results["zookeeper"] = _apply_sequence(zk.connect(), cloud, ops)

    reference_outcomes, reference_tree = results["s3"]
    for system, (outcomes, tree) in results.items():
        assert outcomes == reference_outcomes, f"{system} outcomes diverge"
        assert tree == reference_tree, f"{system} tree diverges"


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hybrid_equals_s3_for_random_sequences(seed):
    """Property form: hybrid and S3 backends are observationally equal."""
    ops = _gen_ops(seed, 10)
    trees = {}
    for backend in ("hybrid", "s3"):
        cloud = Cloud.aws(seed=3000)
        service = FaaSKeeperService.deploy(
            cloud, FaaSKeeperConfig(user_store=backend))
        client = service.connect()
        trees[backend] = _apply_sequence(client, cloud, ops)
    assert trees["hybrid"] == trees["s3"]
