"""Smoke tests: every example script must run to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example prints its findings
