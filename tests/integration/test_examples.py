"""Smoke tests: every example script must run to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _run_example(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300, env=env,
    )


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = _run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example prints its findings


def test_transactional_config_demonstrates_atomicity():
    """The transaction() example must show both sides of atomicity: a
    committed swap (with a single watch notification) and a conflicting
    deploy rolled back wholesale."""
    script = REPO_ROOT / "examples" / "transactional_config.py"
    assert script in EXAMPLES
    result = _run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "committed atomically" in result.stdout
    assert "watch fired once" in result.stdout
    assert "rolled back: BadVersionError, RolledBackError" in result.stdout
