"""Smoke tests: every example script must run to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _run_example(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300, env=env,
    )


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = _run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example prints its findings


def test_leader_election_output_unchanged_atop_election_recipe():
    """The example was rewritten on recipes.Election; its observable
    behaviour — who leads, who takes over, who survives — must be exactly
    the hand-rolled original's."""
    result = _run_example(REPO_ROOT / "examples" / "leader_election.py")
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    assert "node-0: I am the leader (candidate-0000000000)" in out
    assert "node-1: standing by, watching /election/candidate-0000000000" in out
    assert "node-2: standing by, watching /election/candidate-0000000001" in out
    assert "elected: node-0" in out
    assert "node-1: I am the leader (candidate-0000000001)" in out
    assert "took over: node-1" in out
    assert ("remaining candidates: "
            "['candidate-0000000001', 'candidate-0000000002']") in out


def test_distributed_queue_output_unchanged_atop_queue_recipe():
    """The example was rewritten on recipes.Queue; the claim distribution
    and the exactly-once outcome must match the hand-rolled original."""
    result = _run_example(REPO_ROOT / "examples" / "distributed_queue.py")
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    assert "enqueued: 10 tasks" in out
    assert ("claims per worker: "
            "{'worker-0': 4, 'worker-1': 3, 'worker-2': 3}") in out
    assert "every task processed exactly once ✓" in out


def test_config_service_uses_watch_decorators():
    """The example was rewritten on DataWatch/ChildrenWatch; the fan-out
    and failure-detection outcomes must match the hand-rolled original."""
    result = _run_example(REPO_ROOT / "examples" / "config_service.py")
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    assert "registered: ['rs-0', 'rs-1', 'rs-2', 'rs-3']" in out
    assert "all region servers picked up flush_interval=30" in out
    assert ("after failure: ['rs-0', 'rs-1', 'rs-3'] "
            "(1 membership notification)") in out


def test_change_data_capture_streams_every_commit_in_order():
    """The outbox example's CDC feed must list every committed change —
    including the delete — exactly once, in txid order, and report a
    publish lag dominated by the publisher period."""
    script = REPO_ROOT / "examples" / "change_data_capture.py"
    assert script in EXAMPLES
    result = _run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    for line in ("txid=  1  create     /cluster",
                 "txid=  3  set_data   /cluster/config",
                 "txid=  5  delete     /cluster/feature-x"):
        assert line in out
    assert "5 events appended, 5 delivered" in out


def test_transactional_config_demonstrates_atomicity():
    """The transaction() example must show both sides of atomicity: a
    committed swap (with a single watch notification) and a conflicting
    deploy rolled back wholesale."""
    script = REPO_ROOT / "examples" / "transactional_config.py"
    assert script in EXAMPLES
    result = _run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "committed atomically" in result.stdout
    assert "watch fired once" in result.stdout
    assert "rolled back: BadVersionError, RolledBackError" in result.stdout
