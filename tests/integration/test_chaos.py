"""Seeded crash-restart chaos suite (the CI `chaos` job).

Every scenario stands up a full deployment with the commit log enabled,
arms one pipeline stage with seeded random crashes
(:class:`~repro.faaskeeper.chaos.ChaosMonkey`), drives a randomized
write/watch workload to quiescence, and audits exactly-once end effects:
no acknowledged write lost, no write applied twice (version/txid
mismatches), every acknowledged txid visible in every region's
``replicated_tx`` watermark, every one-shot watch delivered exactly once
per instance, every epoch counter drained.

The matrix mirrors CI: leader shards {1, 4} x distributor {off,
on_commit} x crashed stage {leader, distributor, watch}, plus an
outbox leg that kills the event publisher (``outbox_*`` crash points)
and audits at-least-once delivery with per-path txid order.  Seeds come
from ``FK_CHAOS_SEEDS`` (how many, default 12; CI runs 50+) or
``FK_CHAOS_SEED`` (exactly one — the reproduce-a-CI-failure knob; any
failure message prints the seed to export).

A second axis sweeps the user-store backend: the exactly-once audit is a
property of the pipeline, so it must hold over every registered store
(mem, redis, s3, hybrid), not just the default.  CI's ``chaos-backends``
matrix leg pins one backend per job via ``FK_CHAOS_BACKEND``.
"""

import os
import random

import pytest

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService
from repro.faaskeeper.chaos import (
    ChaosMonkey,
    region_user_image,
    verify_exactly_once,
    wipe_user_region,
)

CONFIGS = {
    "s1": dict(leader_shards=1),
    "s4": dict(leader_shards=4),
    "s1-dist": dict(leader_shards=1, distributor_enabled=True,
                    ack_policy="on_commit",
                    regions=["us-east-1", "eu-west-1"]),
    "s4-dist": dict(leader_shards=4, distributor_enabled=True,
                    ack_policy="on_commit",
                    regions=["us-east-1", "eu-west-1"]),
    "s1-outbox": dict(leader_shards=1, outbox_enabled=True,
                      outbox_publish_ms=1_000.0),
}

#: (config name, crashed stage): distributor crashes need a distributor,
#: outbox crashes a publisher.
MATRIX = [
    ("s1", "leader"), ("s1", "watch"),
    ("s4", "leader"), ("s4", "watch"),
    ("s1-dist", "leader"), ("s1-dist", "distributor"), ("s1-dist", "watch"),
    ("s4-dist", "leader"), ("s4-dist", "distributor"), ("s4-dist", "watch"),
    ("s1-outbox", "leader"), ("s1-outbox", "outbox"),
]


#: The backend sweep: every registered scheme that deploys without extra
#: infrastructure (dynamodb is the s1/s4 legs' implicit default path).
BACKENDS = ["mem", "redis", "s3", "hybrid"]


def chaos_seeds():
    pinned = os.environ.get("FK_CHAOS_SEED")
    if pinned:  # empty string = unset (CI passes '' when not pinning)
        return [int(pinned)]
    count = int(os.environ.get("FK_CHAOS_SEEDS", "12"))
    return list(range(1, count + 1))


def chaos_backends():
    pinned = os.environ.get("FK_CHAOS_BACKEND")
    if pinned:  # the CI matrix leg runs one backend per job
        return [pinned]
    return BACKENDS


def run_scenario(seed, config_name, stage, backend=None):
    """One seeded crash-restart scenario; returns violation strings."""
    cloud = Cloud.aws(seed=seed)
    kwargs = dict(CONFIGS[config_name])
    if backend is not None:
        kwargs["user_store"] = backend
    config = FaaSKeeperConfig(commit_log_enabled=True, free_fn_retries=2,
                              **kwargs)
    service = FaaSKeeperService.deploy(cloud, config)
    monkey = ChaosMonkey(service, seed=seed * 7919 + 13, stages=[stage],
                         probability=0.4, budget_per_point=2)
    rng = random.Random(seed)

    writer = service.connect()
    watcher = service.connect()
    paths = ["/a", "/b", "/c"]
    expected = {}
    for path in paths + ["/doomed"]:
        writer.create(path, b"init")
        expected[path] = b"init"
    # on_commit acks run ahead of replication: let the creates land in
    # every region before the watcher reads them.
    cloud.run(until=cloud.now + 60_000)

    # One-shot watches, armed before the write traffic: each instance
    # must fire exactly once, crash-retried fan-outs notwithstanding.
    watch_counts = {}
    for path in ("/a", "/b"):
        slot = {"fired": 0}
        watch_counts[path] = slot
        watcher.get_data(
            path, watch=lambda _ev, s=slot: s.__setitem__(
                "fired", s["fired"] + 1))

    futures = []
    for i in range(rng.randint(8, 14)):
        path = rng.choice(paths)
        data = f"{path[1:]}-{i}".encode()
        futures.append((path, data, writer.set_data_async(path, data)))
    delete_fut = writer.delete_async("/doomed")

    cloud.run(until=cloud.now + 240_000)

    violations = []
    for path, data, fut in futures:
        if not fut.done:
            violations.append(f"write {data!r} to {path} never completed")
            continue
        fut.wait()  # raises only on a dropped request: a real violation
        expected[path] = data  # session FIFO: last submitted wins (Z2)
    if delete_fut.done:
        delete_fut.wait()
        expected["/doomed"] = None
    else:
        violations.append("delete of /doomed never completed")
    acked = [fut.wait().txid for _p, _d, fut in futures if fut.done]

    cloud.run(until=cloud.now + 120_000)  # drain fan-outs + replication

    violations += verify_exactly_once(service, expected, acked)
    written = {path for path, _d, _f in futures}
    for path, slot in watch_counts.items():
        want = 1 if path in written else 0  # one-shot: exactly once, or never
        if slot["fired"] != want:
            violations.append(
                f"watch on {path} fired {slot['fired']} times (want {want})")
    # Every injected crash must have cost the sandbox its warm state.
    # (RetryBatch redeliveries also restart, so >= rather than ==.)
    if monkey.restarts < len(monkey.crashes):
        violations.append(
            f"{len(monkey.crashes)} crashes but only "
            f"{monkey.restarts} restarts")
    return violations, monkey, cloud, service, expected


@pytest.mark.parametrize("config_name,stage", MATRIX,
                         ids=[f"{c}-{s}" for c, s in MATRIX])
def test_exactly_once_under_seeded_crashes(config_name, stage):
    seeds = chaos_seeds()
    crashes_seen = 0
    for seed in seeds:
        violations, monkey, _cloud, _svc, _exp = run_scenario(
            seed, config_name, stage)
        crashes_seen += len(monkey.crashes)
        if violations:
            pytest.fail(
                f"[config={config_name} stage={stage} seed={seed}] "
                + "; ".join(violations)
                + f"\ncrash schedule: {monkey.crashes}"
                + f"\nreproduce locally: FK_CHAOS_SEED={seed} "
                f"python -m pytest "
                f"'tests/integration/test_chaos.py::"
                f"test_exactly_once_under_seeded_crashes"
                f"[{config_name}-{stage}]'")
    # The suite must actually exercise crashes, not pass vacuously.
    assert crashes_seen > 0, \
        f"no crash ever triggered across seeds {seeds[:3]}..{seeds[-1:]}"


@pytest.mark.parametrize("backend", chaos_backends())
def test_exactly_once_across_user_store_backends(backend):
    """The backend sweep leg: one distributor-crash scenario per user
    store.  Depth (all stages, all shard counts) lives in the main
    matrix; this axis proves the audit is backend-independent."""
    seeds = chaos_seeds()[:4]
    crashes_seen = 0
    for seed in seeds:
        violations, monkey, _cloud, _svc, _exp = run_scenario(
            seed, "s1-dist", "distributor", backend=backend)
        crashes_seen += len(monkey.crashes)
        if violations:
            pytest.fail(
                f"[backend={backend} seed={seed}] " + "; ".join(violations)
                + f"\ncrash schedule: {monkey.crashes}"
                + f"\nreproduce locally: FK_CHAOS_SEED={seed} "
                f"FK_CHAOS_BACKEND={backend} python -m pytest "
                f"'tests/integration/test_chaos.py::"
                f"test_exactly_once_across_user_store_backends[{backend}]'")
    assert crashes_seen > 0, \
        f"no crash ever triggered across seeds {seeds} on {backend}"


def test_region_wipe_after_chaos_recovers_from_snapshot():
    """Disaster drill on top of a chaos run: crash the distributor during
    the workload, snapshot + compact, wipe the secondary region, cold
    recover, and audit the rebuilt replica like any other region."""
    seeds = chaos_seeds()[:3]
    for seed in seeds:
        violations, monkey, cloud, service, expected = run_scenario(
            seed, "s1-dist", "distributor")
        assert not violations, f"[seed={seed}] pre-wipe: {violations}"
        cloud.run_process(service.snapshots.take_snapshot(service.system_ctx))
        cloud.run_process(service.snapshots.compact(service.system_ctx))
        region = "eu-west-1"
        wipe_user_region(service, region)
        cloud.run_process(service.snapshots.recover_region(
            service.system_ctx, region, cold=True))
        for path, final in expected.items():
            image = region_user_image(service, region, path)
            if final is None:
                assert image is None, \
                    f"[seed={seed}] {path}@{region} resurrected after recovery"
            else:
                assert image is not None and image.get("data") == final, \
                    (f"[seed={seed}] {path}@{region} lost after recovery; "
                     f"reproduce: FK_CHAOS_SEED={seed}")


def test_chaos_seed_env_pins_single_seed(monkeypatch):
    monkeypatch.setenv("FK_CHAOS_SEED", "42")
    assert chaos_seeds() == [42]
    monkeypatch.setenv("FK_CHAOS_SEED", "")  # CI passes '' when not pinning
    monkeypatch.setenv("FK_CHAOS_SEEDS", "3")
    assert chaos_seeds() == [1, 2, 3]
