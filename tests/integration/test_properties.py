"""Property-based tests (hypothesis) on kernel, expressions, queues, locks."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import Cloud, OpContext
from repro.cloud.expressions import (
    Add,
    Attr,
    ListAppend,
    ListPopHead,
    ListRemove,
    Set,
    apply_updates,
    item_size_kb,
)
from repro.primitives import AtomicCounter, TimedLock
from repro.sim import Environment

FAST = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])
SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ------------------------------------------------------------------ kernel
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
@FAST
def test_kernel_fires_timeouts_in_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=30))
@FAST
def test_kernel_clock_never_goes_backwards(delays):
    env = Environment()
    observed = []

    def proc(env):
        for d in delays:
            yield env.timeout(d)
            observed.append(env.now)

    env.process(proc(env))
    env.run()
    assert observed == sorted(observed)


# -------------------------------------------------------------- expressions
@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=30))
@FAST
def test_add_accumulates_like_sum(deltas):
    item = {}
    apply_updates(item, [Add("n", d) for d in deltas])
    assert item.get("n", 0) == sum(deltas)


@given(st.lists(st.integers(), max_size=20),
       st.lists(st.integers(), max_size=20))
@FAST
def test_list_append_concatenates(first, second):
    item = {}
    apply_updates(item, [ListAppend("l", first), ListAppend("l", second)])
    assert item["l"] == first + second


@given(st.lists(st.integers(min_value=0, max_value=5), max_size=15),
       st.lists(st.integers(min_value=0, max_value=5), max_size=5))
@FAST
def test_list_remove_drops_first_occurrences(base, to_remove):
    item = {"l": list(base)}
    apply_updates(item, [ListRemove("l", to_remove)])
    expected = list(base)
    for v in to_remove:
        if v in expected:
            expected.remove(v)
    assert item["l"] == expected


@given(st.lists(st.integers(), max_size=15),
       st.integers(min_value=0, max_value=20))
@FAST
def test_list_pop_head_is_slice(base, count):
    item = {"l": list(base)}
    apply_updates(item, [ListPopHead("l", count)])
    assert item["l"] == base[count:]


@given(st.integers(min_value=-10**6, max_value=10**6),
       st.integers(min_value=-10**6, max_value=10**6))
@FAST
def test_comparison_conditions_match_python(threshold, value):
    item = {"v": value}
    assert (Attr("v") < threshold).evaluate(item) == (value < threshold)
    assert (Attr("v") >= threshold).evaluate(item) == (value >= threshold)
    assert (Attr("v") == threshold).evaluate(item) == (value == threshold)


@given(st.binary(max_size=4096), st.text(max_size=200))
@FAST
def test_item_size_monotone_in_payload(blob, text):
    small = item_size_kb({"d": blob})
    bigger = item_size_kb({"d": blob, "t": text})
    assert bigger >= small
    assert small >= len(blob) / 1024.0


# ------------------------------------------------------------------ queues
@given(st.lists(st.integers(min_value=0, max_value=999), min_size=1,
                max_size=60),
       st.sets(st.integers(min_value=1, max_value=30)))
@SLOW
def test_fifo_order_preserved_under_crashes(messages, crash_invocations):
    """FIFO delivery with transient handler crashes never reorders."""
    cloud = Cloud.aws(seed=13)
    received = []

    def handler(fctx, batch):
        yield fctx.env.timeout(1)
        fctx.crash_point("work")
        received.extend(batch)
        return None

    q = cloud.fifo_queue("q", max_receive=None)
    fn = cloud.deploy_function("h", handler)
    fn.plan_crash("work", invocations=sorted(crash_invocations))
    q.attach(fn)
    ctx = OpContext()
    for m in messages:
        q.send_nowait(ctx, m)
    cloud.run(until=600_000)
    assert received == messages


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=6))
@SLOW
def test_counter_concurrent_total(n_workers, per_worker):
    cloud = Cloud.aws(seed=21)
    kv = cloud.kv()
    kv.create_table("t")
    counter = AtomicCounter(kv, "t", "c")
    ctx = OpContext()

    def worker():
        for _ in range(per_worker):
            yield from counter.increment(ctx)

    for _ in range(n_workers):
        cloud.env.process(worker())
    cloud.run(until=600_000)
    assert cloud.run_process(counter.get(ctx)) == n_workers * per_worker


@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=3000))
@SLOW
def test_lock_mutual_exclusion_with_random_hold_times(n_contenders, hold_ms):
    """No two holders' critical sections may overlap unless a lease expired."""
    cloud = Cloud.aws(seed=5)
    kv = cloud.kv()
    kv.create_table("t")
    lock = TimedLock(kv, "t", max_hold_ms=2000)
    ctx = OpContext()
    intervals = []

    def contender():
        handle = yield from lock.acquire(ctx, "/n")
        if handle is None:
            return
        start = cloud.now
        yield cloud.env.timeout(min(hold_ms, 1900))  # stay within the lease
        released = yield from lock.release(ctx, handle)
        if released:
            intervals.append((start, cloud.now))

    for _ in range(n_contenders):
        cloud.env.process(contender())
    cloud.run(until=600_000)
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2  # no overlap among successful lease-respecting holds
