"""Unit tests for the DES kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [5.0, 7.5]


def test_timeout_value_is_delivered():
    env = Environment()
    out = []

    def proc(env):
        v = yield env.timeout(1, value="hello")
        out.append(v)

    env.process(proc(env))
    env.run()
    assert out == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25)
    assert env.now == 25


def test_run_until_past_raises():
    env = Environment()
    env.run(until=0)
    def proc(env):
        yield env.timeout(10)
    env.process(proc(env))
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    out = []

    def waiter(env):
        v = yield ev
        out.append((env.now, v))

    def firer(env):
        yield env.timeout(7)
        ev.succeed("payload")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert out == [(7.0, "payload")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_unhandled_process_exception_propagates():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_awaiting_failed_process_reraises():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "caught"
        return "missed"

    p = env.process(parent(env))
    assert env.run(until=p) == "caught"


def test_fifo_order_of_simultaneous_timeouts():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_any_of_returns_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(3, value="fast")
        t2 = env.timeout(9, value="slow")
        result = yield AnyOf(env, [t1, t2])
        return (env.now, list(result.values()))

    p = env.process(proc(env))
    now, values = env.run(until=p)
    assert now == 3.0
    assert values == ["fast"]


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(3, value=1)
        t2 = env.timeout(9, value=2)
        result = yield AllOf(env, [t1, t2])
        return (env.now, sorted(result.values()))

    p = env.process(proc(env))
    now, values = env.run(until=p)
    assert now == 9.0
    assert values == [1, 2]


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        yield AllOf(env, [])
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 0.0


def test_interrupt_delivers_cause():
    env = Environment()
    out = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            out.append((env.now, exc.cause))

    def attacker(env, target):
        yield env.timeout(4)
        target.interrupt("preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert out == [(4.0, "preempted")]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def victim(env):
        yield env.timeout(1)

    v = env.process(victim(env))
    env.run()
    with pytest.raises(SimulationError):
        v.interrupt()


def test_yield_non_event_is_error():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_run_until_event_with_dry_schedule_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError, match="ran dry"):
        env.run(until=ev)


def test_nested_yield_from_processes():
    env = Environment()

    def inner(env):
        yield env.timeout(2)
        return 10

    def outer(env):
        a = yield from inner(env)
        b = yield from inner(env)
        return a + b

    p = env.process(outer(env))
    assert env.run(until=p) == 20
    assert env.now == 4.0


def test_immediate_event_yield():
    """Yielding an already-processed event resumes without rescheduling."""
    env = Environment()

    def proc(env):
        ev = env.event()
        ev.succeed("x")
        yield env.timeout(0)  # let the event be processed
        v = yield ev
        return v

    p = env.process(proc(env))
    assert env.run(until=p) == "x"
