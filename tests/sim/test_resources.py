"""Unit tests for Store, Resource and TokenBucketLimiter."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store, TokenBucketLimiter


# ---------------------------------------------------------------- Store
def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    out = []

    def consumer(env):
        item = yield store.get()
        out.append(env.now)
        assert item == "late"

    def producer(env):
        yield env.timeout(42)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert out == [42.0]


def test_store_get_nowait():
    env = Environment()
    store = Store(env)
    assert store.get_nowait() is None
    store.put("a")
    store.put("b")
    assert store.get_nowait() == "a"
    assert len(store) == 1


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    served = []

    def consumer(env, tag):
        item = yield store.get()
        served.append((tag, item))

    for tag in ("first", "second"):
        env.process(consumer(env, tag))

    def producer(env):
        yield env.timeout(1)
        store.put(1)
        store.put(2)

    env.process(producer(env))
    env.run()
    assert served == [("first", 1), ("second", 2)]


def test_store_cancel_get():
    env = Environment()
    store = Store(env)
    ev = store.get()
    store.cancel_get(ev)
    store.put("x")
    # the cancelled getter must not consume the item
    assert store.get_nowait() == "x"
    assert not ev.triggered


# ---------------------------------------------------------------- Resource
def test_resource_serializes_capacity_one():
    env = Environment()
    res = Resource(env, capacity=1)
    trace = []

    def worker(env, tag, hold):
        req = res.request()
        yield req
        trace.append(("start", tag, env.now))
        yield env.timeout(hold)
        trace.append(("end", tag, env.now))
        res.release(req)

    env.process(worker(env, "a", 10))
    env.process(worker(env, "b", 5))
    env.run()
    assert trace == [
        ("start", "a", 0.0),
        ("end", "a", 10.0),
        ("start", "b", 10.0),
        ("end", "b", 15.0),
    ]


def test_resource_capacity_two_runs_pair_in_parallel():
    env = Environment()
    res = Resource(env, capacity=2)
    ends = []

    def worker(env, hold):
        req = res.request()
        yield req
        yield env.timeout(hold)
        ends.append(env.now)
        res.release(req)

    for _ in range(3):
        env.process(worker(env, 10))
    env.run()
    assert ends == [10.0, 10.0, 20.0]


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.count == 1
    assert res.queued == 1
    res.release(r2)  # cancel a queued request
    assert res.queued == 0
    res.release(r1)
    assert res.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_release_unknown_request():
    env = Environment()
    res = Resource(env, capacity=1)
    bogus = env.event()
    with pytest.raises(SimulationError):
        res.release(bogus)


# ------------------------------------------------------- TokenBucketLimiter
def test_limiter_idle_admissions_free():
    env = Environment()
    lim = TokenBucketLimiter(env, rate_per_s=100, burst=5)
    assert lim.admit() == 0.0


def test_limiter_saturation_spaces_ops():
    env = Environment()
    lim = TokenBucketLimiter(env, rate_per_s=10, burst=1)  # 100 ms spacing
    waits = [lim.admit() for _ in range(4)]
    assert waits[0] == 0.0
    # subsequent admissions at t=0 must queue at 100ms intervals
    assert waits[1] == pytest.approx(100.0)
    assert waits[2] == pytest.approx(200.0)
    assert waits[3] == pytest.approx(300.0)


def test_limiter_refills_over_time():
    env = Environment()
    lim = TokenBucketLimiter(env, rate_per_s=10, burst=2)
    assert lim.admit() == 0.0
    assert lim.admit() == 0.0

    def later(env):
        yield env.timeout(1000)  # 1 s -> 10 tokens, capped at burst=2
        assert lim.admit() == 0.0
        assert lim.admit() == 0.0
        assert lim.admit() > 0.0

    env.process(later(env))
    env.run()


def test_limiter_rejects_bad_rate():
    env = Environment()
    with pytest.raises(SimulationError):
        TokenBucketLimiter(env, rate_per_s=0)
