"""Unit tests for the simulated key-value store."""

import pytest

from repro.cloud import (
    Add,
    Attr,
    ConditionFailed,
    ItemTooLarge,
    ListAppend,
    NoSuchTable,
    Set,
)


def test_put_and_get_roundtrip(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"a": 1})
        item = yield from kv.get_item(ctx, "t", "k")
        return item

    item = cloud.run_process(flow())
    assert item == {"a": 1}
    assert cloud.now > 0  # latency was charged


def test_get_missing_returns_none(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")
    item = cloud.run_process(kv.get_item(ctx, "t", "nope"))
    assert item is None


def test_no_such_table(cloud, ctx):
    kv = cloud.kv()
    with pytest.raises(NoSuchTable):
        cloud.run_process(kv.get_item(ctx, "missing", "k"))


def test_returned_item_is_a_copy(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"a": [1]})
        item = yield from kv.get_item(ctx, "t", "k")
        item["a"].append(99)  # must not leak into the store
        again = yield from kv.get_item(ctx, "t", "k")
        return again

    assert cloud.run_process(flow()) == {"a": [1]}


def test_conditional_put_fails(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"v": 1})
        yield from kv.put_item(ctx, "t", "k", {"v": 2},
                               condition=Attr("v") == 99)

    with pytest.raises(ConditionFailed):
        cloud.run_process(flow())
    assert kv.table("t").raw("k") == {"v": 1}


def test_update_item_applies_actions(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"cnt": 0})
        new = yield from kv.update_item(ctx, "t", "k",
                                        [Add("cnt", 5), Set("flag", True)])
        return new

    new = cloud.run_process(flow())
    assert new == {"cnt": 5, "flag": True}


def test_update_item_creates_item_when_missing(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")
    new = cloud.run_process(
        kv.update_item(cloud.client_ctx(), "t", "fresh", [Add("cnt", 1)])
    )
    assert new == {"cnt": 1}


def test_update_condition_failure_leaves_item_untouched(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"v": 1})
        try:
            yield from kv.update_item(ctx, "t", "k", [Set("v", 2)],
                                      condition=Attr("v") == 42)
        except ConditionFailed as exc:
            return exc.item

    old = cloud.run_process(flow())
    assert old == {"v": 1}
    assert kv.table("t").raw("k") == {"v": 1}


def test_item_size_limit_enforced(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")
    big = {"data": b"x" * (401 * 1024)}
    with pytest.raises(ItemTooLarge):
        cloud.run_process(kv.put_item(ctx, "t", "k", big))


def test_update_growing_past_limit_rejected(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"data": b"x" * (399 * 1024)})
        yield from kv.update_item(ctx, "t", "k",
                                  [Set("more", b"y" * (2 * 1024))])

    with pytest.raises(ItemTooLarge):
        cloud.run_process(flow())


def test_delete_item(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"v": 1})
        yield from kv.delete_item(ctx, "t", "k")
        return (yield from kv.get_item(ctx, "t", "k"))

    assert cloud.run_process(flow()) is None


def test_delete_conditional_failure(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"v": 1})
        yield from kv.delete_item(ctx, "t", "k", condition=Attr("v") == 9)

    with pytest.raises(ConditionFailed):
        cloud.run_process(flow())
    assert kv.table("t").raw("k") == {"v": 1}


def test_scan_returns_all_items(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        for i in range(5):
            yield from kv.put_item(ctx, "t", f"k{i}", {"i": i})
        return (yield from kv.scan(ctx, "t"))

    items = cloud.run_process(flow())
    assert len(items) == 5
    assert items["k3"] == {"i": 3}


def test_strong_read_sees_latest_write(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"v": 1})
        yield from kv.put_item(ctx, "t", "k", {"v": 2})
        return (yield from kv.get_item(ctx, "t", "k", consistent=True))

    assert cloud.run_process(flow()) == {"v": 2}


def test_eventual_read_can_be_stale(cloud, ctx):
    """At least one eventually-consistent read right after a write must
    return the previous version (this is why FaaSKeeper's system storage
    requires strong reads, Section 3.3)."""
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"v": 1})
        yield from kv.put_item(ctx, "t", "k", {"v": 2})
        stale = 0
        for _ in range(60):
            item = yield from kv.get_item(ctx, "t", "k", consistent=False)
            if item == {"v": 1}:
                stale += 1
        return stale

    assert cloud.run_process(flow()) > 0


def test_costs_metered_per_kb(cloud, ctx):
    kv = cloud.kv()
    kv.create_table("t")

    def flow():
        yield from kv.put_item(ctx, "t", "k", {"data": b"x" * 10 * 1024})

    cloud.run_process(flow())
    # 10 kB write = ~11 write units at $1.25e-6 (attribute overhead rounds up)
    total = cloud.meter.total
    assert 10 * 1.25e-6 <= total <= 12 * 1.25e-6


def test_write_latency_grows_with_size(cloud):
    kv = cloud.kv()
    kv.create_table("t")
    ctx = cloud.client_ctx()

    def timed_write(size):
        def flow():
            t0 = cloud.now
            yield from kv.put_item(ctx, "t", "k", {"data": b"x" * size})
            return cloud.now - t0
        return cloud.run_process(flow())

    small = min(timed_write(1024) for _ in range(5))
    large = min(timed_write(64 * 1024) for _ in range(5))
    assert large > small * 5  # ~1 ms/kB bandwidth term (Table 6a)


def test_conditional_update_slower_than_regular(cloud):
    """Table 6a: the timed-lock path adds ~2.5 ms to the median write."""
    kv = cloud.kv()
    kv.create_table("t")
    ctx = cloud.client_ctx()

    def run_many(conditional):
        def flow():
            yield from kv.put_item(ctx, "t", "k", {"v": 0})
            times = []
            for _ in range(80):
                t0 = cloud.now
                cond = (Attr("v") >= 0) if conditional else None
                yield from kv.update_item(ctx, "t", "k", [Set("v", 1)],
                                          condition=cond)
                times.append(cloud.now - t0)
            times.sort()
            return times[len(times) // 2]
        return cloud.run_process(flow())

    regular = run_many(False)
    locked = run_many(True)
    assert 1.5 < locked - regular < 4.5


def test_stream_records_emitted_in_order(cloud, ctx):
    kv = cloud.kv()
    table = kv.create_table("t")
    records = []
    table.stream_listeners.append(records.append)

    def flow():
        yield from kv.put_item(ctx, "t", "a", {"v": 1})
        yield from kv.update_item(ctx, "t", "a", [Set("v", 2)])
        yield from kv.delete_item(ctx, "t", "a")

    cloud.run_process(flow())
    assert [r.sequence for r in records] == [1, 2, 3]
    assert records[0].old_image is None and records[0].new_image == {"v": 1}
    assert records[1].old_image == {"v": 1} and records[1].new_image == {"v": 2}
    assert records[2].new_image is None


def test_cross_region_read_penalty(cloud):
    kv = cloud.kv()
    kv.create_table("t")
    local = cloud.client_ctx()
    remote = cloud.client_ctx(region="eu-west-1")

    def timed(ctx_):
        def flow():
            t0 = cloud.now
            yield from kv.get_item(ctx_, "t", "k")
            return cloud.now - t0
        return cloud.run_process(flow())

    cloud.run_process(kv.put_item(local, "t", "k", {"v": 1}))
    near = min(timed(local) for _ in range(5))
    far = min(timed(remote) for _ in range(5))
    assert far > near + 100  # Figure 4b inter-region penalty
