"""Unit tests for the simulated object store."""

import pytest

from repro.cloud import NoSuchBucket, NoSuchObject


def test_put_get_roundtrip(cloud, ctx):
    s3 = cloud.objectstore()
    s3.create_bucket("b")

    def flow():
        yield from s3.put_object(ctx, "b", "k", b"payload", {"ver": 1})
        return (yield from s3.get_object(ctx, "b", "k"))

    payload, meta = cloud.run_process(flow())
    assert payload == b"payload"
    assert meta == {"ver": 1}


def test_missing_object_raises(cloud, ctx):
    s3 = cloud.objectstore()
    s3.create_bucket("b")
    with pytest.raises(NoSuchObject):
        cloud.run_process(s3.get_object(ctx, "b", "nope"))


def test_missing_bucket_raises(cloud, ctx):
    s3 = cloud.objectstore()
    with pytest.raises(NoSuchBucket):
        cloud.run_process(s3.get_object(ctx, "nope", "k"))


def test_duplicate_bucket_rejected(cloud):
    s3 = cloud.objectstore()
    s3.create_bucket("b")
    with pytest.raises(ValueError):
        s3.create_bucket("b")


def test_overwrite_is_whole_object(cloud, ctx):
    s3 = cloud.objectstore()
    s3.create_bucket("b")

    def flow():
        yield from s3.put_object(ctx, "b", "k", b"version-1", {"m": 1})
        yield from s3.put_object(ctx, "b", "k", b"v2", {"m": 2})
        return (yield from s3.get_object(ctx, "b", "k"))

    payload, meta = cloud.run_process(flow())
    assert payload == b"v2"
    assert meta == {"m": 2}


def test_delete_object(cloud, ctx):
    s3 = cloud.objectstore()
    s3.create_bucket("b")

    def flow():
        yield from s3.put_object(ctx, "b", "k", b"x")
        yield from s3.delete_object(ctx, "b", "k")

    cloud.run_process(flow())
    assert s3.raw("b", "k") is None


def test_write_cost_flat_regardless_of_size(cloud, ctx):
    """Figure 4a: object storage bills per operation, not per kB."""
    s3 = cloud.objectstore()
    s3.create_bucket("b")
    cloud.run_process(s3.put_object(ctx, "b", "small", b"x"))
    small_cost = cloud.meter.total
    cloud.run_process(s3.put_object(ctx, "b", "big", b"x" * 500_000))
    big_cost = cloud.meter.total - small_cost
    assert small_cost == pytest.approx(5e-6)
    assert big_cost == pytest.approx(small_cost)


def test_write_12_5x_more_expensive_than_read(cloud, ctx):
    """Figure 4a annotation: S3 writes cost 12.5x reads."""
    prices = cloud.profile.prices
    assert prices.object_write_cost(1) / prices.object_read_cost(1) == pytest.approx(12.5)


def test_latency_grows_with_size(cloud):
    s3 = cloud.objectstore()
    s3.create_bucket("b")
    ctx = cloud.client_ctx()

    def timed_put(size):
        def flow():
            t0 = cloud.now
            yield from s3.put_object(ctx, "b", "k", b"x" * size)
            return cloud.now - t0
        return cloud.run_process(flow())

    small = min(timed_put(1024) for _ in range(5))
    large = min(timed_put(400 * 1024) for _ in range(5))
    assert large > small + 40  # ~0.2 ms/kB bandwidth term


def test_cross_region_penalty(cloud):
    s3 = cloud.objectstore()
    s3.create_bucket("b")
    local = cloud.client_ctx()
    remote = cloud.client_ctx(region="eu-west-1")
    cloud.run_process(s3.put_object(local, "b", "k", b"x" * 1024))

    def timed(c):
        def flow():
            t0 = cloud.now
            yield from s3.get_object(c, "b", "k")
            return cloud.now - t0
        return cloud.run_process(flow())

    assert min(timed(remote) for _ in range(5)) > min(timed(local) for _ in range(5)) + 100


def test_total_stored_kb(cloud, ctx):
    s3 = cloud.objectstore()
    s3.create_bucket("b")
    cloud.run_process(s3.put_object(ctx, "b", "a", b"x" * 2048))
    cloud.run_process(s3.put_object(ctx, "b", "c", b"x" * 1024))
    assert s3.total_stored_kb("b") == pytest.approx(3.0)
    assert s3.bucket_keys("b") == ["a", "c"]
