"""Unit tests for FIFO/standard queues and the stream trigger."""

import pytest

from repro.cloud import PayloadTooLarge


def _collector(log):
    def handler(fctx, batch):
        yield fctx.env.timeout(1)
        log.extend(batch)
        return len(batch)
    return handler


def test_fifo_delivers_in_order(cloud, ctx):
    log = []
    q = cloud.fifo_queue("q")
    fn = cloud.deploy_function("h", _collector(log))
    q.attach(fn)

    def producer():
        for i in range(20):
            yield from q.send(ctx, i, group="s1")

    cloud.run_process(producer())
    cloud.run(until=cloud.now + 10_000)
    assert log == list(range(20))
    assert q.delivered == 20


def test_fifo_sequence_numbers_monotone(cloud, ctx):
    q = cloud.fifo_queue("q")
    seqs = []

    def producer():
        for i in range(5):
            seq = yield from q.send(ctx, i)
            seqs.append(seq)

    cloud.run_process(producer())
    assert seqs == [1, 2, 3, 4, 5]


def test_fifo_batching_respects_limit(cloud, ctx):
    batches = []

    def handler(fctx, batch):
        yield fctx.env.timeout(1)
        batches.append(len(batch))
        return None

    q = cloud.fifo_queue("q")
    fn = cloud.deploy_function("h", handler)
    # enqueue 25 messages instantly, then attach: first batch capped at 10
    for i in range(25):
        q.send_nowait(ctx, i)
    q.attach(fn)
    cloud.run(until=10_000)
    assert sum(batches) == 25
    assert max(batches) <= 10  # SQS FIFO batch restriction (Section 5.2.2)


def test_fifo_single_instance_no_overlap(cloud, ctx):
    """Requirement (c): only one function instance at a time."""
    active = {"n": 0, "max": 0}

    def handler(fctx, batch):
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        yield fctx.env.timeout(50)
        active["n"] -= 1
        return None

    q = cloud.fifo_queue("q")
    fn = cloud.deploy_function("h", handler)
    q.attach(fn, batch_limit=1)
    for i in range(10):
        q.send_nowait(ctx, i)
    cloud.run(until=60_000)
    assert active["max"] == 1


def test_fifo_retry_preserves_order(cloud, ctx):
    """A failed batch is redelivered before younger messages."""
    log = []

    def handler(fctx, batch):
        yield fctx.env.timeout(1)
        fctx.crash_point("work")
        log.extend(batch)
        return None

    q = cloud.fifo_queue("q")
    fn = cloud.deploy_function("h", handler)
    fn.plan_crash("work", invocations=[1])  # first delivery dies
    q.attach(fn, batch_limit=1)
    for i in range(5):
        q.send_nowait(ctx, i)
    cloud.run(until=60_000)
    assert log == [0, 1, 2, 3, 4]
    assert fn.failures == 1


def test_fifo_drops_poison_message_after_max_receive(cloud, ctx):
    log = []
    dropped = []

    def handler(fctx, batch):
        yield fctx.env.timeout(1)
        if batch == ["poison"]:
            fctx.crash_point("poison")
        log.extend(batch)
        return None

    q = cloud.fifo_queue("q", max_receive=3)
    q.on_drop = dropped.append
    fn = cloud.deploy_function("h", handler)
    fn.plan_crash("poison", predicate=lambda i: True)
    q.attach(fn, batch_limit=1)
    q.send_nowait(ctx, "poison")
    q.send_nowait(ctx, "ok")
    cloud.run(until=60_000)
    assert log == ["ok"]
    assert len(q.dropped) == 1
    assert dropped[0].receive_count == 3


def test_fifo_payload_limit(cloud, ctx):
    q = cloud.fifo_queue("q")
    with pytest.raises(PayloadTooLarge):
        cloud.run_process(q.send(ctx, "big", size_kb=300.0))


def test_queue_cost_billed_in_64kb_chunks(cloud, ctx):
    q = cloud.fifo_queue("q")
    cloud.run_process(q.send(ctx, "small", size_kb=1.0))
    small = cloud.meter.total
    cloud.run_process(q.send(ctx, "large", size_kb=100.0))
    large = cloud.meter.total - small
    assert small == pytest.approx(0.5e-6)
    assert large == pytest.approx(1.0e-6)  # two 64 kB chunks


def test_standard_queue_delivers_everything(cloud, ctx):
    log = []
    q = cloud.standard_queue("q")
    fn = cloud.deploy_function("h", _collector(log))
    q.attach(fn)

    def producer():
        for i in range(30):
            yield from q.send(ctx, i)

    cloud.run_process(producer())
    cloud.run(until=cloud.now + 60_000)
    assert sorted(log) == list(range(30))


def test_standard_queue_batches_larger_than_fifo(cloud, ctx):
    """The jittered collection window accumulates large batches (Fig. 7b)."""
    batches = []

    def handler(fctx, batch):
        yield fctx.env.timeout(1)
        batches.append(len(batch))
        return None

    q = cloud.standard_queue("q", concurrency=1)
    fn = cloud.deploy_function("h", handler)
    q.attach(fn)
    for i in range(50):
        q.send_nowait(ctx, i)
    cloud.run(until=60_000)
    assert max(batches) > 10


def test_stream_trigger_delivers_table_changes(cloud, ctx):
    from repro.cloud import Set

    kv = cloud.kv()
    table = kv.create_table("t")
    seen = []

    def handler(fctx, records):
        yield fctx.env.timeout(1)
        seen.extend((r.key, r.new_image) for r in records)
        return None

    fn = cloud.deploy_function("h", handler)
    cloud.stream_trigger("s", table, fn)

    def writer():
        yield from kv.put_item(ctx, "t", "a", {"v": 1})
        yield from kv.update_item(ctx, "t", "a", [Set("v", 2)])

    cloud.run_process(writer())
    cloud.run(until=cloud.now + 10_000)
    assert seen == [("a", {"v": 1}), ("a", {"v": 2})]


def test_stream_latency_much_higher_than_fifo(cloud, ctx):
    """Table 7a: Streams ~243 ms vs SQS FIFO ~24 ms median."""
    kv = cloud.kv()
    table = kv.create_table("t")
    arrivals = []

    def handler(fctx, records):
        arrivals.append(fctx.now)
        yield fctx.env.timeout(0)
        return None

    fn = cloud.deploy_function("h", handler)
    cloud.stream_trigger("s", table, fn)
    t0 = cloud.now
    cloud.run_process(kv.put_item(ctx, "t", "a", {"v": 1}))
    cloud.run(until=cloud.now + 10_000)
    # first delivery includes a cold start (~180ms) + stream latency (~240ms)
    assert arrivals[0] - t0 > 200
