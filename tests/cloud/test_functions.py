"""Unit tests for the simulated function runtime."""

import pytest

from repro.cloud import FunctionCrash
from repro.cloud.calibration import io_multiplier
from repro.cloud.functions import SANDBOX_IDLE_MS


def _echo(fctx, payload):
    yield fctx.env.timeout(1)
    return payload


def test_direct_invocation_returns_result(cloud):
    fn = cloud.deploy_function("echo", _echo)
    done = cloud.runtime.invoke_direct(fn, {"x": 1})
    result = cloud.env.run(until=done)
    assert result == {"x": 1}
    assert fn.invocations == 1


def test_cold_then_warm_start(cloud):
    fn = cloud.deploy_function("echo", _echo)

    def timed():
        t0 = cloud.now
        done = fn.invoke("p")
        cloud.env.run(until=done)
        return cloud.now - t0

    first = timed()
    second = timed()
    assert fn.cold_starts == 1
    assert first > second + 50  # cold start is ~180 ms


def test_sandbox_expiry_causes_new_cold_start(cloud):
    fn = cloud.deploy_function("echo", _echo)
    cloud.env.run(until=fn.invoke("a"))
    cloud.run(until=cloud.now + SANDBOX_IDLE_MS + 1)
    cloud.env.run(until=fn.invoke("b"))
    assert fn.cold_starts == 2


def test_concurrent_invocations_need_multiple_sandboxes(cloud):
    fn = cloud.deploy_function("echo", _echo)
    d1 = fn.invoke("a")
    d2 = fn.invoke("b")
    cloud.env.run(until=d1)
    cloud.env.run(until=d2)
    assert fn.cold_starts == 2  # both started while no warm sandbox existed


def test_billing_charges_gb_seconds(cloud):
    def slow(fctx, payload):
        yield fctx.env.timeout(1000)  # 1 s
        return None

    fn = cloud.deploy_function("slow", slow, memory_mb=1024)
    cloud.env.run(until=fn.invoke(None))
    cost = cloud.meter.service_total("fn:slow")
    # 1 GB-s at 1.66667e-5 plus request fee; duration includes overheads
    assert 1.6e-5 < cost < 2.5e-5


def test_arm_billing_cheaper(cloud):
    def slow(fctx, payload):
        yield fctx.env.timeout(1000)
        return None

    x86 = cloud.deploy_function("sx", slow, memory_mb=1024, arch="x86")
    arm = cloud.deploy_function("sa", slow, memory_mb=1024, arch="arm")
    cloud.env.run(until=x86.invoke(None))
    cloud.env.run(until=arm.invoke(None))
    assert cloud.meter.service_total("fn:sa") < cloud.meter.service_total("fn:sx")


def test_io_multiplier_monotone():
    assert io_multiplier(2048) == pytest.approx(1.0)
    assert io_multiplier(512) > io_multiplier(1024) > io_multiplier(2048)
    # 512 MB should be roughly 33% slower than 2048 MB
    assert 1.25 < io_multiplier(512) < 1.45
    with pytest.raises(ValueError):
        io_multiplier(0)


def test_function_io_slower_with_less_memory(cloud):
    kv = cloud.kv()
    kv.create_table("t")

    def writer(fctx, payload):
        yield from kv.put_item(fctx.ctx, "t", "k", {"data": b"x" * 65536})
        return None

    small = cloud.deploy_function("w512", writer, memory_mb=512)
    large = cloud.deploy_function("w2048", writer, memory_mb=2048)

    def median_duration(fn):
        for _ in range(30):
            cloud.env.run(until=fn.invoke(None))
        durs = sorted(fn.durations_ms)
        return durs[len(durs) // 2]

    assert median_duration(small) > median_duration(large) * 1.15


def test_crash_point_injection(cloud):
    def fragile(fctx, payload):
        yield fctx.env.timeout(1)
        fctx.crash_point("mid")
        return "survived"

    fn = cloud.deploy_function("fragile", fragile)
    fn.plan_crash("mid", invocations=[2])

    assert cloud.env.run(until=fn.invoke(None)) == "survived"
    with pytest.raises(FunctionCrash):
        cloud.env.run(until=fn.invoke(None))
    assert cloud.env.run(until=fn.invoke(None)) == "survived"
    assert fn.failures == 1


def test_segment_probes_recorded(cloud):
    def probed(fctx, payload):
        t0 = fctx.now
        yield fctx.env.timeout(5)
        fctx.record("phase-a", fctx.now - t0)
        return None

    fn = cloud.deploy_function("probed", probed)
    cloud.env.run(until=fn.invoke(None))
    assert fn.segments["phase-a"] == pytest.approx([5.0])


def test_scheduled_function_fires_periodically(cloud):
    calls = []

    def tick(fctx, payload):
        calls.append(fctx.now)
        yield fctx.env.timeout(1)
        return None

    fn = cloud.deploy_function("tick", tick)
    task = cloud.runtime.schedule(fn, period_ms=60_000)
    cloud.run(until=5 * 60_000 + 1000)
    assert task.fired == 5
    assert len(calls) == 5


def test_scheduled_function_stop(cloud):
    def tick(fctx, payload):
        yield fctx.env.timeout(1)
        return None

    fn = cloud.deploy_function("tick", tick)
    task = cloud.runtime.schedule(fn, period_ms=10_000)
    cloud.run(until=35_000)
    task.stop()
    cloud.run(until=100_000)
    assert task.fired == 3


def test_scheduled_function_survives_handler_failure(cloud):
    def flaky(fctx, payload):
        yield fctx.env.timeout(1)
        fctx.crash_point("always")
        return None

    fn = cloud.deploy_function("flaky", flaky)
    fn.plan_crash("always", predicate=lambda i: i <= 2)  # first tick fails twice
    task = cloud.runtime.schedule(fn, period_ms=10_000)
    cloud.run(until=45_000)
    assert task.fired == 4  # loop kept going


def test_compute_arm_penalty_on_payload(cloud):
    def cruncher(fctx, payload):
        yield fctx.compute(base_ms=1.0, payload_kb=250.0)
        return None

    x86 = cloud.deploy_function("cx", cruncher, arch="x86")
    arm = cloud.deploy_function("ca", cruncher, arch="arm")
    cloud.env.run(until=x86.invoke(None))
    cloud.env.run(until=arm.invoke(None))
    # warm-up a second round to exclude cold start noise
    cloud.env.run(until=x86.invoke(None))
    cloud.env.run(until=arm.invoke(None))
    assert arm.durations_ms[-1] > x86.durations_ms[-1] * 1.5


def test_duplicate_deploy_rejected(cloud):
    cloud.deploy_function("dup", _echo)
    with pytest.raises(ValueError):
        cloud.deploy_function("dup", _echo)
