"""Unit tests for the condition/update expression engine."""

import pytest

from repro.cloud.expressions import (
    Add,
    Always,
    Attr,
    ListAppend,
    ListPopHead,
    ListRemove,
    Remove,
    Set,
    SetIfNotExists,
    apply_updates,
    item_exists,
    item_size_kb,
)


# ------------------------------------------------------------- conditions
def test_always_true_on_missing_item():
    assert Always().evaluate(None)


def test_attr_exists():
    assert Attr("a").exists().evaluate({"a": 1})
    assert not Attr("a").exists().evaluate({"b": 1})
    assert not Attr("a").exists().evaluate(None)


def test_attr_not_exists():
    assert Attr("a").not_exists().evaluate({"b": 1})
    assert Attr("a").not_exists().evaluate(None)
    assert not Attr("a").not_exists().evaluate({"a": 0})


def test_comparisons():
    item = {"n": 5}
    assert (Attr("n") == 5).evaluate(item)
    assert (Attr("n") != 4).evaluate(item)
    assert (Attr("n") < 6).evaluate(item)
    assert (Attr("n") <= 5).evaluate(item)
    assert (Attr("n") > 4).evaluate(item)
    assert (Attr("n") >= 5).evaluate(item)
    assert not (Attr("n") > 5).evaluate(item)


def test_comparison_on_missing_attr_is_false():
    assert not (Attr("n") == 0).evaluate({})
    assert not (Attr("n") < 100).evaluate(None)


def test_nested_paths():
    item = {"lock": {"ts": 42}}
    assert (Attr("lock.ts") == 42).evaluate(item)
    assert Attr("lock.ts").exists().evaluate(item)
    assert not Attr("lock.owner").exists().evaluate(item)


def test_boolean_combinators():
    item = {"a": 1, "b": 2}
    cond = (Attr("a") == 1) & (Attr("b") == 2)
    assert cond.evaluate(item)
    cond = (Attr("a") == 9) | (Attr("b") == 2)
    assert cond.evaluate(item)
    assert (~(Attr("a") == 9)).evaluate(item)


def test_between_and_contains():
    item = {"n": 5, "lst": [1, 2, 3]}
    assert Attr("n").between(1, 5).evaluate(item)
    assert not Attr("n").between(6, 9).evaluate(item)
    assert Attr("lst").contains(2).evaluate(item)
    assert not Attr("lst").contains(99).evaluate(item)
    assert not Attr("missing").contains(1).evaluate(item)


def test_item_exists_condition():
    assert item_exists().evaluate({})
    assert not item_exists().evaluate(None)


# ------------------------------------------------------------- updates
def test_set_and_nested_set():
    item = {}
    apply_updates(item, [Set("a", 1), Set("b.c", 2)])
    assert item == {"a": 1, "b": {"c": 2}}


def test_set_if_not_exists():
    item = {"a": 1}
    apply_updates(item, [SetIfNotExists("a", 99), SetIfNotExists("b", 2)])
    assert item == {"a": 1, "b": 2}


def test_add_creates_and_increments():
    item = {}
    apply_updates(item, [Add("cnt", 5)])
    apply_updates(item, [Add("cnt", -2)])
    assert item["cnt"] == 3


def test_add_non_numeric_raises():
    with pytest.raises(TypeError):
        apply_updates({"cnt": "x"}, [Add("cnt", 1)])


def test_remove():
    item = {"a": 1, "b": {"c": 2, "d": 3}}
    apply_updates(item, [Remove("a"), Remove("b.c"), Remove("missing")])
    assert item == {"b": {"d": 3}}


def test_list_append_creates_list():
    item = {}
    apply_updates(item, [ListAppend("w", [1, 2]), ListAppend("w", [3])])
    assert item["w"] == [1, 2, 3]


def test_list_remove_first_occurrences():
    item = {"w": [1, 2, 1, 3]}
    apply_updates(item, [ListRemove("w", [1, 3, 99])])
    assert item["w"] == [2, 1]
    apply_updates({}, [ListRemove("missing", [1])])  # no-op, no raise


def test_list_pop_head():
    item = {"q": [1, 2, 3]}
    apply_updates(item, [ListPopHead("q", 2)])
    assert item["q"] == [3]
    apply_updates(item, [ListPopHead("q", 5)])
    assert item["q"] == []


def test_update_order_matters():
    item = {}
    apply_updates(item, [Set("a", 1), Add("a", 1), Set("a", 10)])
    assert item["a"] == 10


# ------------------------------------------------------------- sizes
def test_item_size_none_is_zero():
    assert item_size_kb(None) == 0.0


def test_item_size_scales_with_payload():
    small = item_size_kb({"data": b"x" * 100})
    large = item_size_kb({"data": b"x" * 100_000})
    assert small < 0.2
    assert 95 < large < 100


def test_item_size_counts_strings_and_numbers():
    sz = item_size_kb({"a": 1, "b": "hello", "c": [1.0, 2.0]})
    assert sz > 0
