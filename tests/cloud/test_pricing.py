"""Unit tests for price sheets and the cost meter."""

import pytest

from repro.cloud.pricing import (
    AWS_PRICES,
    GCP_PRICES,
    VM_DAY_RATE,
    CostMeter,
)


# ------------------------------------------------------------- AWS sheet
def test_aws_object_prices_flat():
    assert AWS_PRICES.object_write_cost(1) == AWS_PRICES.object_write_cost(500)
    assert AWS_PRICES.object_read_cost(0.001) == 4e-7


def test_aws_kv_write_units_round_up():
    assert AWS_PRICES.kv_write_cost(0.5) == 1.25e-6
    assert AWS_PRICES.kv_write_cost(1.0) == 1.25e-6
    assert AWS_PRICES.kv_write_cost(1.1) == 2 * 1.25e-6
    assert AWS_PRICES.kv_write_cost(64) == 64 * 1.25e-6


def test_aws_kv_read_units_and_eventual_discount():
    assert AWS_PRICES.kv_read_cost(4.0) == 0.25e-6
    assert AWS_PRICES.kv_read_cost(4.1) == 2 * 0.25e-6
    assert AWS_PRICES.kv_read_cost(4.0, consistent=False) == 0.125e-6


def test_aws_queue_chunks():
    assert AWS_PRICES.queue_cost(1) == 0.5e-6
    assert AWS_PRICES.queue_cost(64) == 0.5e-6
    assert AWS_PRICES.queue_cost(64.1) == 1.0e-6
    assert AWS_PRICES.queue_cost(250) == 2.0e-6


def test_aws_fn_cost_components():
    # 1 GB for 1 s = 1.66667e-5 plus the request fee
    cost = AWS_PRICES.fn_cost(1024, 1000.0)
    assert cost == pytest.approx(1.66667e-5 + 0.2e-6)
    # ARM is ~20% cheaper per GB-second
    arm = AWS_PRICES.fn_cost(1024, 1000.0, arch="arm")
    assert arm < cost
    assert arm == pytest.approx(1.33334e-5 + 0.2e-6)


# ------------------------------------------------------------- GCP sheet
def test_gcp_kv_prices_size_independent():
    """Section 4.5: Datastore ops bill per operation, not per kB."""
    assert GCP_PRICES.kv_write_cost(0.1) == GCP_PRICES.kv_write_cost(400)
    assert GCP_PRICES.kv_read_cost(0.1) == GCP_PRICES.kv_read_cost(400)
    # the 2.4x / 1.44x relations vs DynamoDB's <=1 kB prices
    assert GCP_PRICES.kv_read_cost(1) == pytest.approx(2.4 * 0.25e-6)
    assert GCP_PRICES.kv_write_cost(1) == pytest.approx(1.44 * 1.25e-6)


def test_gcp_queue_minimum_1kb():
    """Pub/Sub bills at least 1 kB per message, $40/TB each way."""
    tiny = GCP_PRICES.queue_cost(0.0625)
    assert tiny == GCP_PRICES.queue_cost(1.0)
    assert GCP_PRICES.queue_cost(10) == pytest.approx(10 * 2 * 4.0e-8)
    # small messages are several times cheaper than SQS (paper: 6.7x)
    assert AWS_PRICES.queue_cost(0.0625) / tiny > 4


def test_vm_day_rates():
    assert VM_DAY_RATE["t3.small"] == 0.5
    assert VM_DAY_RATE["t3.medium"] == 1.0
    assert VM_DAY_RATE["t3.large"] == 2.0


# ------------------------------------------------------------- CostMeter
def test_meter_accumulates_and_groups():
    meter = CostMeter()
    meter.charge("s3", "write", 5e-6)
    meter.charge("s3", "write", 5e-6)
    meter.charge("s3", "read", 4e-7)
    meter.charge("fn:leader", "invoke", 1e-6)
    assert meter.total == pytest.approx(1.04e-5 + 1e-6)
    by = meter.by_service()
    assert by["s3"] == pytest.approx(1.04e-5)
    assert meter.service_total("fn:leader") == pytest.approx(1e-6)
    lines = meter.lines()
    assert [(l.service, l.operation, l.count) for l in lines] == [
        ("fn:leader", "invoke", 1), ("s3", "read", 1), ("s3", "write", 2)]


def test_meter_snapshot_delta():
    meter = CostMeter()
    meter.charge("s3", "write", 1e-6)
    before = meter.snapshot()
    meter.charge("s3", "write", 3e-6)
    meter.charge("sqs", "send", 0.5e-6)
    delta = meter.delta(before)
    assert delta["s3"] == pytest.approx(3e-6)
    assert delta["sqs"] == pytest.approx(0.5e-6)


def test_meter_reset():
    meter = CostMeter()
    meter.charge("s3", "write", 1e-6)
    meter.reset()
    assert meter.total == 0.0
    assert meter.lines() == []
