"""Unit tests for latency models and calibration profiles."""

import random

import pytest

from repro.cloud.calibration import aws_profile, gcp_profile
from repro.cloud.latency import Fixed, SizeAware, scaled
from repro.sim.rng import lognormal_from_percentiles, percentile


def test_fixed_model():
    m = Fixed(5.0)
    rng = random.Random(1)
    assert m.sample(rng) == 5.0
    assert m.median(100.0) == 5.0


def test_lognormal_fit_roundtrip():
    mu, sigma = lognormal_from_percentiles(10.0, 30.0)
    import math
    assert math.exp(mu) == pytest.approx(10.0)
    assert math.exp(mu + 2.3263478740408408 * sigma) == pytest.approx(30.0)


def test_lognormal_fit_validation():
    with pytest.raises(ValueError):
        lognormal_from_percentiles(0, 10)
    with pytest.raises(ValueError):
        lognormal_from_percentiles(10, 5)


def test_size_aware_percentiles_match_calibration():
    """Sampled p50/p99 must land near the fitted targets."""
    m = SizeAware(p50_ms=4.35, p99_ms=6.33, outlier_p=0.0)
    rng = random.Random(7)
    samples = [m.sample(rng) for _ in range(20_000)]
    assert percentile(samples, 50) == pytest.approx(4.35, rel=0.05)
    assert percentile(samples, 99) == pytest.approx(6.33, rel=0.10)


def test_size_aware_bandwidth_term():
    m = SizeAware(p50_ms=4.0, p99_ms=6.0, per_kb_ms=1.0, outlier_p=0.0)
    rng = random.Random(3)
    small = sorted(m.sample(rng, 0.0) for _ in range(2000))
    large = sorted(m.sample(rng, 64.0) for _ in range(2000))
    assert large[1000] - small[1000] == pytest.approx(64.0, rel=0.1)


def test_size_aware_min_clamp():
    m = SizeAware(p50_ms=4.0, p99_ms=40.0, min_ms=3.5)
    rng = random.Random(5)
    assert min(m.sample(rng) for _ in range(5000)) >= 3.5


def test_size_aware_outliers_produce_heavy_max():
    m = SizeAware(p50_ms=4.0, p99_ms=6.0, outlier_p=0.01, outlier_scale=10.0)
    rng = random.Random(11)
    samples = [m.sample(rng) for _ in range(5000)]
    assert max(samples) > 5 * percentile(samples, 99)


def test_scaled_wrapper():
    base = Fixed(10.0)
    m = scaled(base, factor=2.0, extra_ms=5.0)
    rng = random.Random(1)
    assert m.sample(rng) == 25.0
    assert m.median() == 25.0
    assert scaled(base) is base  # identity shortcut


def test_median_is_deterministic():
    m = SizeAware(p50_ms=11.0, p99_ms=25.0, per_kb_ms=0.04)
    assert m.median(100.0) == pytest.approx(15.0)


def test_profiles_are_complete_and_distinct():
    aws = aws_profile()
    gcp = gcp_profile()
    assert aws.name == "aws" and gcp.name == "gcp"
    # the calibrated orderings the evaluation depends on
    assert aws.invoke_fifo.median() < aws.invoke_direct.median()   # Table 7a
    assert gcp.invoke_fifo.median() > gcp.invoke_direct.median()   # Table 7c
    assert gcp.kv_conditional_extra_ms > 5 * aws.kv_conditional_extra_ms
    assert aws.obj_read.median() < gcp.obj_read.median()           # Figure 8
    assert aws.kv_item_limit_kb == 400.0
    assert gcp.kv_item_limit_kb == 1024.0


def test_profile_zk_models_sub_ms_reads():
    aws = aws_profile()
    assert aws.zk_read.median(1.0) < 1.5
    assert aws.zk_write.median(1.0) < 5.0
