"""Shared fixtures for cloud-layer tests."""

import pytest

from repro.cloud import Cloud, OpContext


@pytest.fixture
def cloud():
    return Cloud.aws(seed=1234)


@pytest.fixture
def ctx():
    return OpContext()
