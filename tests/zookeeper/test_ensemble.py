"""ZooKeeper baseline tests: replication, sessions, watches, API parity."""

import pytest

from repro.cloud import Cloud
from repro.faaskeeper import (
    BadVersionError,
    EventType,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    SessionClosedError,
)
from repro.zookeeper import deploy_zookeeper


@pytest.fixture
def cloud():
    return Cloud.aws(seed=55)


@pytest.fixture
def zk(cloud):
    return deploy_zookeeper(cloud, n_servers=3)


@pytest.fixture
def client(zk):
    return zk.connect(server_index=0)


def test_crud_roundtrip(client):
    client.create("/a", b"data")
    data, stat = client.get_data("/a")
    assert data == b"data" and stat.version == 0
    client.set_data("/a", b"new")
    data, stat = client.get_data("/a")
    assert data == b"new" and stat.version == 1
    client.create("/a/b")
    assert client.get_children("/a") == ["b"]
    client.delete("/a/b")
    client.delete("/a")
    assert client.exists("/a") is None


def test_error_parity_with_faaskeeper(client):
    with pytest.raises(NoNodeError):
        client.get_data("/nope")
    client.create("/a")
    with pytest.raises(NodeExistsError):
        client.create("/a")
    with pytest.raises(BadVersionError):
        client.set_data("/a", b"x", version=9)
    client.create("/a/b")
    with pytest.raises(NotEmptyError):
        client.delete("/a")


def test_invalid_ensemble_sizes(cloud):
    with pytest.raises(ValueError):
        deploy_zookeeper(cloud, n_servers=2)
    with pytest.raises(ValueError):
        deploy_zookeeper(cloud, n_servers=4)


def test_followers_converge(cloud, zk):
    c_leader = zk.connect(server_index=0)
    c_follower = zk.connect(server_index=2)
    c_leader.create("/x", b"v")
    cloud.run(until=cloud.now + 50)  # propagation delay
    data, _ = c_follower.get_data("/x")
    assert data == b"v"
    assert zk.ensemble.servers[2].applied_zxid == zk.ensemble.leader.applied_zxid


def test_zxid_total_order(client):
    txids = []
    client.create("/a")
    for i in range(5):
        res = client.set_data("/a", str(i).encode())
        txids.append(res.txid)
    assert txids == sorted(txids)
    assert len(set(txids)) == len(txids)


def test_sequential_nodes(client):
    client.create("/q")
    a = client.create("/q/n-", sequence=True)
    b = client.create("/q/n-", sequence=True)
    assert a == "/q/n-0000000000"
    assert b == "/q/n-0000000001"


def test_watch_fires_on_local_apply(cloud, zk):
    c1 = zk.connect(server_index=1)
    c2 = zk.connect(server_index=2)
    events = []
    c1.create("/w", b"")
    cloud.run(until=cloud.now + 10)
    c2.get_data("/w", watch=events.append)
    c1.set_data("/w", b"x")
    cloud.run(until=cloud.now + 50)
    assert len(events) == 1
    assert events[0].type == EventType.NODE_DATA_CHANGED


def test_watch_one_shot(cloud, client):
    events = []
    client.create("/w", b"")
    client.get_data("/w", watch=events.append)
    client.set_data("/w", b"1")
    client.set_data("/w", b"2")
    cloud.run(until=cloud.now + 50)
    assert len(events) == 1


def test_ephemeral_deleted_on_close(cloud, zk):
    c1 = zk.connect()
    c2 = zk.connect()
    c1.create("/e", b"", ephemeral=True)
    c1.close()
    cloud.run(until=cloud.now + 100)
    assert c2.exists("/e") is None


def test_session_expiry_on_missed_heartbeats(cloud, zk):
    c1 = zk.connect()
    c2 = zk.connect()
    c1.create("/e", b"", ephemeral=True)
    c1.stop_heartbeats()
    cloud.run(until=cloud.now + 30_000)
    assert c1.closed
    assert c2.exists("/e") is None
    with pytest.raises(SessionClosedError):
        c1.create("/x")


def test_live_session_not_expired(cloud, zk):
    c = zk.connect()
    c.create("/e", b"", ephemeral=True)
    cloud.run(until=cloud.now + 60_000)
    assert not c.closed
    assert c.exists("/e") is not None


def test_read_latency_sub_millisecond(cloud, client):
    client.create("/n", b"x" * 100)
    times = []
    for _ in range(50):
        t0 = cloud.now
        client.get_data("/n")
        times.append(cloud.now - t0)
    times.sort()
    assert times[len(times) // 2] < 2.0


def test_write_slower_with_more_servers():
    medians = {}
    for n in (3, 9):
        cloud = Cloud.aws(seed=66)
        zk = deploy_zookeeper(cloud, n_servers=n)
        c = zk.connect(server_index=0)
        c.create("/a", b"")
        times = []
        for _ in range(60):
            t0 = cloud.now
            c.set_data("/a", b"x")
            times.append(cloud.now - t0)
        times.sort()
        medians[n] = times[len(times) // 2]
    assert medians[9] > medians[3]


def test_daily_cost_scales_with_vms(cloud):
    zk3 = deploy_zookeeper(cloud, n_servers=3, vm_type="t3.small")
    assert zk3.daily_cost(storage_gb=0) == pytest.approx(1.5)
    zk9s = ZooKeeperDeployment = None  # noqa: avoid reuse confusion
    cloud2 = Cloud.aws(seed=1)
    zk9 = deploy_zookeeper(cloud2, n_servers=9, vm_type="t3.large")
    assert zk9.daily_cost(storage_gb=0) == pytest.approx(18.0)


def test_utilization_accounting(cloud, zk, client):
    client.create("/a", b"")
    for _ in range(100):
        client.get_data("/a")
    busy = zk.ensemble.servers[0].busy_ms
    assert busy > 0
    util = zk.ensemble.utilization(window_ms=cloud.now)
    assert 0 < util[0] <= 1.0
