"""Sharded leader pipeline invariants.

Covers the partition map, shards=1 being behaviorally identical to the
paper's single-leader deployment, per-session ordering across shards
(session fences), cross-shard watch delivery with epoch accounting, root
(cross-shard parent) metadata convergence, and write coalescing.
"""

import pytest

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig
from repro.faaskeeper.layout import shard_of_path, top_component
from repro.faaskeeper.service import SessionFenceBoard
from .conftest import make_service


def _two_cross_shard_subtrees(num_shards):
    """Two top-level names guaranteed to live on different shards."""
    names = [f"t{i}" for i in range(64)]
    first = names[0]
    for other in names[1:]:
        if shard_of_path(f"/{other}", num_shards) != shard_of_path(f"/{first}", num_shards):
            return first, other
    raise AssertionError("no cross-shard pair found")  # pragma: no cover


# ------------------------------------------------------------ partition map
def test_shard_map_is_stable_and_subtree_affine():
    assert shard_of_path("/a/b/c", 4) == shard_of_path("/a", 4)
    assert shard_of_path("/a/b", 4) == shard_of_path("/a/zzz/deep", 4)
    # root and shards=1 route to shard 0
    assert shard_of_path("/", 4) == 0
    assert shard_of_path("/anything/at/all", 1) == 0
    # the map covers every shard for a modest set of subtree names
    seen = {shard_of_path(f"/t{i}", 4) for i in range(32)}
    assert seen == {0, 1, 2, 3}
    assert top_component("/a/b") == "a"
    assert top_component("/a") == "a"
    assert top_component("/") == ""


def test_config_validates_shard_count():
    with pytest.raises(ValueError):
        FaaSKeeperConfig(leader_shards=0)
    assert FaaSKeeperConfig().coalesce_enabled is False
    assert FaaSKeeperConfig(leader_shards=4).coalesce_enabled is True
    assert FaaSKeeperConfig(leader_shards=4,
                            leader_coalesce=False).coalesce_enabled is False
    assert FaaSKeeperConfig(leader_coalesce=True).coalesce_enabled is True


# ------------------------------------------------------------ fence board
def test_fence_board_orders_waiters():
    cloud = Cloud.aws(seed=1)
    board = SessionFenceBoard(cloud.env)
    assert board.issue("s1") == 1
    assert board.issue("s1") == 2
    assert board.issue("s2") == 1  # sessions are independent
    order = []

    def waiter(fence):
        yield from board.wait_turn("s1", fence)
        order.append(fence)

    cloud.env.process(waiter(3))
    cloud.env.process(waiter(2))
    cloud.run(until=cloud.now + 1)
    assert order == []  # fence 1 not applied yet
    board.advance("s1", 1)
    cloud.run(until=cloud.now + 1)
    assert order == [2]
    board.advance("s1", 2)
    cloud.run(until=cloud.now + 1)
    assert order == [2, 3]
    board.advance("s1", 1)  # idempotent, never regresses
    assert board.applied("s1") == 2


# ------------------------------------------------------------ shards=1 parity
def _workload_fingerprint(seed, **config_kwargs):
    cloud, service = make_service(seed=seed, **config_kwargs)
    c = service.connect()
    events = []
    c.create("/a", b"")
    c.create("/a/x", b"v0")
    hits = []
    c.get_data("/a/x", watch=lambda ev: hits.append(ev.txid))
    for i in range(4):
        res = c.set_data("/a/x", f"v{i}".encode())
        events.append((res.txid, res.version))
    data, stat = c.get_data("/a/x")
    cloud.run(until=cloud.now + 15_000)
    events.append((data, stat.version, stat.modified_tx, tuple(hits)))
    events.append(round(cloud.now, 6))
    events.append(round(sum(cloud.meter.by_service().values()), 12))
    return events


def test_shards1_identical_to_default_single_leader():
    """leader_shards=1 must be the paper's pipeline, not a near-copy: same
    txids, versions, watch events, virtual-clock timing and metered cost."""
    assert _workload_fingerprint(77) == _workload_fingerprint(77, leader_shards=1)


def test_shards1_deploys_legacy_topology():
    _cloud, service = make_service(seed=78, leader_shards=1)
    assert [q.name for q in service.leader_queues] == ["fk-leader-q"]
    assert [f.spec.name for f in service.leader_fns] == ["fk-leader"]
    assert service.fence_board is None
    assert service.leader_queue is service.leader_queues[0]
    assert service.leader_fn is service.leader_fns[0]
    # single-leader messages carry no fence fields
    captured = []
    original = service.leader_queue.send

    def spy(ctx, body, **kwargs):
        captured.append(body)
        return (yield from original(ctx, body, **kwargs))

    service.leader_queue.send = spy
    c = service.connect()
    c.create("/a", b"")
    assert captured and all("fence" not in body for body in captured)


def test_sharded_deploys_one_queue_and_leader_per_shard():
    _cloud, service = make_service(seed=79, leader_shards=4)
    assert [q.name for q in service.leader_queues] == [
        "fk-leader-q", "fk-leader-q-1", "fk-leader-q-2", "fk-leader-q-3"]
    assert [f.spec.name for f in service.leader_fns] == [
        "fk-leader", "fk-leader-1", "fk-leader-2", "fk-leader-3"]
    assert service.fence_board is not None
    assert len(service.leader_logics) == 4
    assert service.leader_logics[2].shard == 2


# ------------------------------------------------------------ functional
def test_sharded_and_single_leader_agree_on_final_state():
    def final_state(shards):
        cloud, service = make_service(seed=80, leader_shards=shards)
        c = service.connect()
        out = {}
        for i in range(6):
            c.create(f"/t{i}", b"")
            c.create(f"/t{i}/x", b"v0")
        for i in range(12):
            c.set_data(f"/t{i % 6}/x", f"v{i}".encode())
        c.delete("/t5/x")
        cloud.run(until=cloud.now + 15_000)
        for i in range(5):
            data, stat = c.get_data(f"/t{i}/x")
            out[f"/t{i}/x"] = (data, stat.version)
        out["/t5 children"] = c.get_children("/t5")
        out["/ children"] = c.get_children("/")
        return out

    assert final_state(1) == final_state(4)


def test_per_session_order_across_shards():
    """A session's writes land on different shards but their responses are
    delivered in request order (the fence guarantee: a shard leader starts
    write k+1 only after write k finished on its own shard)."""
    cloud, service = make_service(seed=81, leader_shards=4,
                                  leader_coalesce=False)
    a, b = _two_cross_shard_subtrees(4)
    c = service.connect()
    c.create(f"/{a}", b"")
    c.create(f"/{b}", b"")
    c.create(f"/{a}/x", b"")
    c.create(f"/{b}/x", b"")

    arrival = []
    original = c._deliver_response

    def spy(response):
        arrival.append(response.rid)
        original(response)

    c._deliver_response = spy
    futures = []
    for i in range(10):
        path = f"/{a}/x" if i % 2 == 0 else f"/{b}/x"
        futures.append(c.set_data_async(path, f"v{i}".encode()))
    cloud.run(until=cloud.now + 120_000)
    assert all(f.done for f in futures)
    results = [f.wait() for f in futures]
    # raw delivery order (before the client's completion chain) already
    # follows request order: leaders fence on the session sequence
    assert arrival == sorted(arrival)
    # txids were assigned from the shared sequence in request order
    txids = [r.txid for r in results]
    assert txids == sorted(txids)
    # both shards really were exercised
    shards_used = {service.shard_of(f"/{a}/x"), service.shard_of(f"/{b}/x")}
    assert len(shards_used) == 2
    assert c.get_data(f"/{a}/x")[0] == b"v8"
    assert c.get_data(f"/{b}/x")[0] == b"v9"
    # every client-stamped shard hint agreed with the follower's routing
    assert service.shard_hint_mismatches == 0


def test_per_session_completion_order_with_coalescing():
    """With write coalescing, raw deliveries of superseded writes are held
    to batch end, but the client still completes futures in request order
    and an acknowledged write is never read stale."""
    cloud, service = make_service(seed=87, leader_shards=4)
    a, b = _two_cross_shard_subtrees(4)
    c = service.connect()
    c.create(f"/{a}", b"")
    c.create(f"/{b}", b"")
    c.create(f"/{a}/x", b"")
    c.create(f"/{b}/x", b"")
    completion = []
    futures = []
    for i in range(12):
        path = f"/{a}/x" if i % 2 == 0 else f"/{b}/x"
        fut = c.set_data_async(path, f"v{i}".encode())
        fut.event.callbacks.append(lambda ev, i=i: completion.append(i))
        futures.append(fut)
    read = c.get_data_async(f"/{a}/x")
    cloud.run(until=cloud.now + 120_000)
    assert all(f.done for f in futures) and read.done
    assert completion == list(range(12))
    data, stat = read.wait()
    assert data == b"v10"  # the read (issued last) sees the final /a write
    assert stat.version == 6


def test_write_visible_before_next_cross_shard_ack():
    """Fence semantics: when write k+1 (on shard B) is acknowledged, write
    k (on shard A) has already been replicated to the user store."""
    cloud, service = make_service(seed=82, leader_shards=4)
    a, b = _two_cross_shard_subtrees(4)
    c = service.connect()
    c.create(f"/{a}", b"")
    c.create(f"/{b}", b"")
    c.create(f"/{a}/x", b"")
    c.create(f"/{b}/x", b"")

    write_times = {}
    store = service.user_store
    original_write = store.write_node

    def spy(ctx, region, path, image):
        result = yield from original_write(ctx, region, path, image)
        write_times.setdefault((path, image.get("version")), cloud.now)
        return result

    store.write_node = spy
    f1 = c.set_data_async(f"/{a}/x", b"first")
    f2 = c.set_data_async(f"/{b}/x", b"second")
    ack_times = {}
    f1.event.callbacks.append(lambda ev: ack_times.setdefault("f1", cloud.now))
    f2.event.callbacks.append(lambda ev: ack_times.setdefault("f2", cloud.now))
    cloud.run(until=cloud.now + 60_000)
    assert f1.done and f2.done
    assert write_times[(f"/{a}/x", 1)] <= ack_times["f2"]


def test_watches_fire_across_shards_and_epoch_drains():
    cloud, service = make_service(seed=83, leader_shards=4)
    a, b = _two_cross_shard_subtrees(4)
    writer = service.connect()
    watcher = service.connect()
    for name in (a, b):
        writer.create(f"/{name}", b"")
        writer.create(f"/{name}/x", b"v0")
    hits = []
    watcher.get_data(f"/{a}/x", watch=lambda ev: hits.append((a, ev.txid)))
    watcher.get_data(f"/{b}/x", watch=lambda ev: hits.append((b, ev.txid)))
    writer.set_data(f"/{a}/x", b"w")
    writer.set_data(f"/{b}/x", b"w")
    cloud.run(until=cloud.now + 30_000)
    assert sorted(name for name, _ in hits) == sorted([a, b])
    # watch txids order like the writes (shared txid sequence)
    assert hits[0][1] < hits[1][1] or hits[1][1] < hits[0][1]
    # epoch counters drained in every region once deliveries completed
    for region in service.config.regions:
        assert service.epoch_ledger.snapshot(region) == []
    # fan-out bookkeeping saw two different shards
    assert len(service.watch_logic.deliveries_by_shard) == 2


def test_root_children_converge_across_shards():
    """The root is a cross-shard parent: concurrent top-level creates from
    several sessions must all end up in the root's user-store child list
    (the per-path pending-transaction gate orders its replication)."""
    cloud, service = make_service(seed=84, leader_shards=4)
    clients = [service.connect() for _ in range(3)]
    futures = []
    for i, c in enumerate(clients):
        for j in range(3):
            futures.append(c.create_async(f"/n{i}-{j}", b""))
    cloud.run(until=cloud.now + 120_000)
    assert all(f.done for f in futures)
    expected = sorted(f"n{i}-{j}" for i in range(3) for j in range(3))
    assert clients[0].get_children("/") == expected
    raw = service.system_store.table("fk-system-nodes").raw("/")
    assert raw["transactions"] == []  # all root appends drained


def test_coalescing_reduces_user_store_writes():
    def run_burst(coalesce):
        cloud, service = make_service(seed=85, leader_shards=2,
                                      leader_coalesce=coalesce)
        c = service.connect()
        c.create("/t", b"")
        c.create("/t/hot", b"")
        counts = {"writes": 0}
        original_write = service.user_store.write_node

        def spy(ctx, region, path, image):
            counts["writes"] += 1
            return (yield from original_write(ctx, region, path, image))

        service.user_store.write_node = spy
        futures = [c.set_data_async("/t/hot", f"v{i}".encode())
                   for i in range(12)]
        cloud.run(until=cloud.now + 120_000)
        assert all(f.done and f.event.ok for f in futures)
        versions = [f.wait().version for f in futures]
        assert versions == list(range(1, 13))  # every write committed, in order
        data, stat = c.get_data("/t/hot")
        assert data == b"v11" and stat.version == 12
        return counts["writes"]

    plain = run_burst(False)
    coalesced = run_burst(True)
    assert coalesced < plain  # superseded images were skipped
    assert plain == 12


def test_leader_drop_advances_fence_and_fails_future():
    """A leader-queue message dropped after exhausting leader_max_receive
    must advance its session fence (or the session's next write would wedge
    its whole shard) and fail the client's request."""
    from repro.cloud.queues import Message
    from repro.faaskeeper.model import Response

    cloud, service = make_service(seed=88, leader_shards=2,
                                  leader_max_receive=2)
    c = service.connect()
    c.create("/t0", b"")
    fence = service.fence_board.issue(c.session_id)
    event = cloud.env.event()
    event.defused()
    c._pending[999] = event
    dropped = Message(
        body={"session": c.session_id, "rid": 999, "fence": fence,
              "op": "set_data", "path": "/t0/x"},
        size_kb=0.1, group="updates", seq=12345, enqueued_at=cloud.now)
    service.leader_queues[0].on_drop(dropped)
    assert service.fence_board.applied(c.session_id) >= fence
    assert event.triggered
    response = event.value
    assert isinstance(response, Response)
    assert response.ok is False and response.error == "system_failure"


def test_sharded_sequential_creates_and_ephemerals():
    """Sequence-suffixed and ephemeral nodes behave under sharding; session
    close cleans ephemerals across shards."""
    cloud, service = make_service(seed=86, leader_shards=4)
    a, b = _two_cross_shard_subtrees(4)
    owner = service.connect()
    observer = service.connect()
    owner.create(f"/{a}", b"")
    owner.create(f"/{b}", b"")
    p1 = owner.create(f"/{a}/seq-", b"", sequence=True)
    p2 = owner.create(f"/{a}/seq-", b"", sequence=True)
    assert p1 == f"/{a}/seq-0000000000"
    assert p2 == f"/{a}/seq-0000000001"
    owner.create(f"/{a}/eph", b"", ephemeral=True)
    owner.create(f"/{b}/eph", b"", ephemeral=True)
    owner.close()
    cloud.run(until=cloud.now + 60_000)
    assert observer.exists(f"/{a}/eph") is None
    assert observer.exists(f"/{b}/eph") is None
    assert observer.get_children(f"/{a}") == ["seq-0000000000", "seq-0000000001"]
