"""Fixtures for FaaSKeeper tests."""

import pytest

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService


@pytest.fixture
def cloud():
    return Cloud.aws(seed=2024)


@pytest.fixture
def service(cloud):
    return FaaSKeeperService.deploy(cloud)


@pytest.fixture
def client(service):
    return service.connect()


def make_service(seed=2024, **config_kwargs):
    cloud = Cloud.aws(seed=seed)
    service = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(**config_kwargs))
    return cloud, service
