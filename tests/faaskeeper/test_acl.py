"""ACL tests (Section 4.4): write permissions enforced by functions, read
permissions at the storage boundary."""

import pytest

from repro.faaskeeper import AccessDeniedError
from repro.faaskeeper.model import OPEN_ACL, acl_allows
from .conftest import make_service


def test_acl_allows_semantics():
    assert acl_allows(None, "write", "s1")            # no ACL = open
    assert acl_allows(OPEN_ACL, "read", "anyone")
    acl = {"write": ["s1"], "read": ["world"]}
    assert acl_allows(acl, "write", "s1")
    assert not acl_allows(acl, "write", "s2")
    assert acl_allows(acl, "read", "s2")
    assert not acl_allows(acl, "delete", "s2")        # unlisted perm = denied


def test_owner_only_write():
    cloud, service = make_service(seed=300)
    owner = service.connect()
    other = service.connect()
    acl = {"read": ["world"], "write": [owner.session_id],
           "delete": [owner.session_id], "create": ["world"]}
    owner.create("/protected", b"v0", acl=acl)

    owner.set_data("/protected", b"v1")  # owner may write
    with pytest.raises(AccessDeniedError):
        other.set_data("/protected", b"x")
    data, _ = other.get_data("/protected")  # world-readable
    assert data == b"v1"


def test_read_denied_at_storage():
    cloud, service = make_service(seed=301)
    owner = service.connect()
    other = service.connect()
    acl = {"read": [owner.session_id], "write": [owner.session_id],
           "delete": [owner.session_id], "create": []}
    owner.create("/secret", b"classified", acl=acl)
    assert owner.get_data("/secret")[0] == b"classified"
    with pytest.raises(AccessDeniedError):
        other.get_data("/secret")
    with pytest.raises(AccessDeniedError):
        other.exists("/secret")


def test_delete_permission():
    cloud, service = make_service(seed=302)
    owner = service.connect()
    other = service.connect()
    acl = {"read": ["world"], "write": ["world"],
           "delete": [owner.session_id], "create": ["world"]}
    owner.create("/node", b"", acl=acl)
    with pytest.raises(AccessDeniedError):
        other.delete("/node")
    owner.delete("/node")
    assert owner.exists("/node") is None


def test_create_permission_on_parent():
    cloud, service = make_service(seed=303)
    owner = service.connect()
    other = service.connect()
    acl = {"read": ["world"], "write": ["world"],
           "delete": ["world"], "create": [owner.session_id]}
    owner.create("/dir", b"", acl=acl)
    owner.create("/dir/mine")
    with pytest.raises(AccessDeniedError):
        other.create("/dir/theirs")
    assert other.get_children("/dir") == ["mine"]


def test_acl_survives_set_data():
    cloud, service = make_service(seed=304)
    owner = service.connect()
    other = service.connect()
    acl = {"read": ["world"], "write": [owner.session_id],
           "delete": ["world"], "create": ["world"]}
    owner.create("/node", b"v0", acl=acl)
    owner.set_data("/node", b"v1")
    with pytest.raises(AccessDeniedError):
        other.set_data("/node", b"x")  # still protected after the write
    assert owner.get_acl("/node")["write"] == [owner.session_id]


def test_get_acl_open_node():
    cloud, service = make_service(seed=305)
    c = service.connect()
    c.create("/open", b"")
    assert c.get_acl("/open") is None


def test_get_acl_validates_like_other_reads():
    """get_acl rides the same read pipeline as get_data/exists: closed
    sessions and malformed paths are rejected client-side."""
    from repro.faaskeeper import BadArgumentsError, SessionClosedError

    cloud, service = make_service(seed=306)
    c = service.connect()
    c.create("/n", b"")
    with pytest.raises(BadArgumentsError):
        c.get_acl("no-leading-slash")
    with pytest.raises(BadArgumentsError):
        c.get_acl("/n/")
    assert c.get_acl_async("/n").wait() is None  # async variant, aligned
    c.close()
    with pytest.raises(SessionClosedError):
        c.get_acl("/n")
