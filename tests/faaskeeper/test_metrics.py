"""The metrics registry (metrics.py) and its service-level wiring.

Unit coverage for the Prometheus data model (Counter / Gauge / Histogram,
labels, callback children, snapshot + text exposition) plus the
deployment-side guarantees: ``metrics_snapshot()`` covers every pipeline
stage, the old ad-hoc counter attributes survive as registry-backed
properties, and ``cost_breakdown()`` returns exactly what the cost meter
says — the registry is a view, not a second bookkeeper.
"""

import json

import pytest

from repro.faaskeeper.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .conftest import make_service


# --------------------------------------------------------------------------
# Counter / Gauge / Histogram semantics
# --------------------------------------------------------------------------

def test_counter_monotone_increments():
    c = MetricsRegistry().counter("c_total", "help")
    assert c.value == 0.0
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways_and_supports_callbacks():
    g = MetricsRegistry().gauge("g", "help")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12.0
    box = {"n": 7}
    g.set_function(lambda: box["n"])
    assert g.value == 7.0
    box["n"] = 9  # callback children are sampled at read time
    assert g.value == 9.0


def test_histogram_buckets_sum_count_and_quantiles():
    h = MetricsRegistry().histogram("h_ms", "help", buckets=(10.0, 100.0))
    for v in (1, 5, 50, 500):
        h.observe(v)
    snap = h._solo().histogram_snapshot()
    assert snap["count"] == 4 and snap["sum"] == 556.0
    # cumulative counts, +Inf catches the overflow
    assert snap["buckets"] == {"10": 2, "100": 3, "+Inf": 4}
    assert 0 < h.quantile(0.5) <= 10.0
    assert h.quantile(1.0) == 100.0  # clamped to the top finite bucket
    assert MetricsRegistry().histogram("empty", "").quantile(0.99) == 0.0


def test_histogram_buckets_are_sorted_and_required():
    h = Histogram("h", buckets=(100.0, 1.0, 10.0))
    assert h._buckets == (1.0, 10.0, 100.0)
    with pytest.raises(ValueError):
        Histogram("h2", buckets=())


# --------------------------------------------------------------------------
# Labels
# --------------------------------------------------------------------------

def test_labels_positional_and_keyword_reach_the_same_child():
    c = MetricsRegistry().counter("c_total", "", ("region", "shard"))
    c.labels("us-east-1", "0").inc()
    c.labels(region="us-east-1", shard="0").inc()
    c.labels("eu-west-1", "0").inc(5)
    assert c.labels("us-east-1", "0").value == 2.0
    assert dict(c.items()) != {}
    assert [lv for lv, _ in c.items()] == \
        [("eu-west-1", "0"), ("us-east-1", "0")]  # items() sorts


def test_label_arity_and_name_mismatches_raise():
    c = MetricsRegistry().counter("c_total", "", ("region",))
    with pytest.raises(ValueError):
        c.labels()                       # missing value
    with pytest.raises(ValueError):
        c.labels("a", "b")               # too many
    with pytest.raises(ValueError):
        c.labels(zone="a")               # wrong name
    with pytest.raises(ValueError):
        c.labels("a", region="a")        # mixed styles
    with pytest.raises(ValueError):
        c.inc()  # labelled metric has no solo child


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

def test_registration_is_idempotent_but_shape_changes_raise():
    r = MetricsRegistry()
    c = r.counter("x_total", "help", ("a",))
    assert r.counter("x_total", "other help", ("a",)) is c
    assert "x_total" in r and r.get("x_total") is c
    with pytest.raises(ValueError):
        r.gauge("x_total")                       # different type
    with pytest.raises(ValueError):
        r.counter("x_total", "", ("a", "b"))     # different labels
    h = r.histogram("h_ms", "", buckets=(1.0, 2.0))
    assert r.histogram("h_ms", "", buckets=(2.0, 1.0)) is h  # sorted-equal
    with pytest.raises(ValueError):
        r.histogram("h_ms", "", buckets=(1.0, 3.0))


def test_snapshot_is_stable_and_json_able():
    r = MetricsRegistry()
    r.counter("b_total").inc(2)
    r.gauge("a", "", ("k",)).labels(k="v").set(1.5)
    r.histogram("h_ms").observe(3.0)
    first = r.snapshot()
    assert json.loads(json.dumps(first)) == first
    assert first == r.snapshot()  # reading is side-effect free
    assert list(first) == sorted(first)  # stable name order
    assert first["b_total"] == {"type": "counter", "help": "",
                                "values": {"": 2.0}}
    assert first["a"]["values"] == {'k="v"': 1.5}
    assert first["h_ms"]["values"][""]["count"] == 1


def test_expose_renders_prometheus_text():
    r = MetricsRegistry()
    r.counter("req_total", "requests", ("code",)).labels(code="200").inc(3)
    r.histogram("lat_ms", "latency", buckets=(10.0,)).observe(4.0)
    text = r.expose()
    assert "# HELP req_total requests" in text
    assert "# TYPE req_total counter" in text
    assert 'req_total{code="200"} 3' in text
    assert 'lat_ms_bucket{le="10"} 1' in text
    assert 'lat_ms_bucket{le="+Inf"} 1' in text
    assert "lat_ms_sum 4" in text and "lat_ms_count 1" in text
    assert text.endswith("\n")


# --------------------------------------------------------------------------
# Service wiring
# --------------------------------------------------------------------------

def test_metrics_snapshot_covers_every_stage():
    cloud, service = make_service(
        seed=900, commit_log_enabled=True, outbox_enabled=True,
        distributor_enabled=True, regions=["us-east-1", "eu-west-1"],
        client_cache_entries=8)
    c = service.connect()
    c.create("/a", b"x")
    c.get_data("/a")
    cloud.run(until=cloud.now + 10_000)
    snap = service.metrics_snapshot()
    for name in ("fk_stage_segment_ms", "fk_fn_invocations",
                 "fk_fn_cold_starts", "fk_fn_failures", "fk_sessions_active",
                 "fk_client_cache", "fk_cost_dollars", "fk_log_appends_total",
                 "fk_snapshots_taken_total", "fk_outbox_appended_total",
                 "fk_outbox_drains_total", "fk_distributor_batches_total",
                 "fk_watch_fanouts_total", "fk_heartbeat_sweeps_total",
                 "fk_gc_collected_total", "fk_shard_hint_mismatches_total"):
        assert name in snap, name
    assert json.loads(json.dumps(snap)) == snap
    # the per-stage timing histogram actually saw the pipeline run
    segs = snap["fk_stage_segment_ms"]["values"]
    assert any('fn="fk-follower"' in key for key in segs)
    assert any('fn="fk-leader' in key for key in segs)
    text = service.metrics_text()
    assert "fk_fn_invocations" in text and "fk_cost_dollars" in text


def test_stage_counters_survive_as_registry_backed_properties():
    cloud, service = make_service(seed=901, client_cache_entries=4)
    c = service.connect()
    c.create("/a", b"x")
    fired = []
    c.get_data("/a", watch=lambda ev: fired.append(ev))
    c.set_data("/a", b"y")
    cloud.run(until=cloud.now + 10_000)
    assert fired
    # old attribute API, now reading through the registry
    assert service.watch_logic.deliveries_by_shard[0] >= 1
    assert service.watch_logic.deliveries_by_origin["leader"] >= 1
    m = service.metrics
    assert m.get("fk_watch_fanouts_total").value >= 1
    delivered = sum(ch.value for _lv, ch in
                    m.get("fk_watch_deliveries_total").items())
    assert delivered == sum(service.watch_logic.deliveries_by_shard.values())


def test_cost_breakdown_matches_the_cost_meter():
    """Parity gate: the registry-backed ``cost_breakdown()`` must return
    exactly what the pre-registry implementation computed straight from
    ``cloud.meter.by_service`` — same keys, same order, same dollars."""
    cloud, service = make_service(seed=902, user_store="hybrid")
    c = service.connect()
    for i in range(5):
        c.create(f"/n{i}", b"x" * 64)
    c.get_data("/n0")
    cloud.run(until=cloud.now + 10_000)
    got = service.cost_breakdown()
    assert list(got) == ["client_cache_hits", "client_cache_misses",
                         "queue", "system_store", "user_store", "s3",
                         "dynamodb", "follower", "leader", "distributor",
                         "watch", "heartbeat"]
    by = service.cloud.meter.by_service()
    expected = {
        "client_cache_hits": 0.0,
        "client_cache_misses": 0.0,
        "queue": sum(v for k, v in by.items() if k.startswith("sqs")),
        "system_store": by.get("dynamodb:system", 0.0),
        "user_store": by.get("dynamodb:user", 0.0) + by.get("s3", 0.0),
        "s3": by.get("s3", 0.0),
        "dynamodb": by.get("dynamodb:system", 0.0)
        + by.get("dynamodb:user", 0.0),
        "follower": by.get("fn:fk-follower", 0.0),
        "leader": sum(v for k, v in by.items()
                      if k.startswith("fn:fk-leader")),
        "distributor": sum(v for k, v in by.items()
                           if k.startswith("fn:fk-distributor")),
        "watch": by.get("fn:fk-watch", 0.0),
        "heartbeat": by.get("fn:fk-heartbeat", 0.0),
    }
    assert got == expected
    assert got["queue"] > 0 and got["follower"] > 0  # non-vacuous


def test_metrics_do_not_perturb_the_simulation():
    """Reading the registry mid-run must not change the deterministic
    trace: two identically seeded runs agree bit-for-bit even when one
    of them snapshots and exposes constantly."""
    def run(observe):
        cloud, service = make_service(seed=903)
        c = service.connect()
        for i in range(4):
            c.create(f"/n{i}", b"d")
            if observe:
                service.metrics_snapshot()
                service.metrics_text()
                service.cost_breakdown()
        cloud.run(until=cloud.now + 5_000)
        return cloud.now, service.cloud.meter.total, \
            service.system_store.table("fk-system-nodes").raw("/n3")
    assert run(observe=False) == run(observe=True)


def test_default_buckets_are_finite_and_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert all(b > 0 for b in DEFAULT_BUCKETS)
    assert isinstance(Counter("c"), Counter)
    assert isinstance(Gauge("g"), Gauge)
