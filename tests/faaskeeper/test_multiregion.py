"""Multi-region deployments (Section 4.1, "User data locality")."""

import pytest

from repro.cloud import Cloud
from repro.faaskeeper import FaaSKeeperConfig, FaaSKeeperService

REGIONS = ["us-east-1", "eu-west-1", "ap-south-1"]


def deploy(seed=400, **kw):
    cloud = Cloud.aws(seed=seed)
    config = FaaSKeeperConfig(regions=list(REGIONS), user_store="dynamodb", **kw)
    return cloud, FaaSKeeperService.deploy(cloud, config)


def test_writes_replicate_to_all_regions():
    cloud, service = deploy()
    writer = service.connect(region="us-east-1")
    writer.create("/global", b"payload")
    cloud.run(until=cloud.now + 3000)
    for region in REGIONS:
        reader = service.connect(region=region)
        data, stat = reader.get_data("/global")
        assert data == b"payload"


def test_clients_read_from_local_region_at_local_latency():
    """Cross-region reads pay the Figure 4b penalty; local reads do not."""
    cloud, service = deploy(seed=401)
    writer = service.connect(region="us-east-1")
    writer.create("/n", b"x" * 1024)
    cloud.run(until=cloud.now + 3000)

    def median_read(region):
        client = service.connect(region=region)
        times = []
        for _ in range(30):
            t0 = cloud.now
            client.get_data("/n")
            times.append(cloud.now - t0)
        times.sort()
        return times[len(times) // 2]

    # every region has a local replica: all reads are fast
    for region in REGIONS:
        assert median_read(region) < 20


def test_all_region_replicas_converge():
    cloud, service = deploy(seed=402)
    c = service.connect()
    c.create("/a", b"")
    for i in range(5):
        c.set_data("/a", f"v{i}".encode())
    cloud.run(until=cloud.now + 5000)
    images = []
    for region in REGIONS:
        kv = cloud.kv("dynamodb:user", region=region)
        images.append(kv.table("fk-user-nodes").raw("/a"))
    assert all(img["data"] == b"v4" for img in images)
    assert len({img["modified_tx"] for img in images}) == 1


def test_deletes_propagate_to_all_regions():
    cloud, service = deploy(seed=403)
    c = service.connect()
    c.create("/gone", b"")
    c.delete("/gone")
    cloud.run(until=cloud.now + 3000)
    for region in REGIONS:
        reader = service.connect(region=region)
        assert reader.exists("/gone") is None


def test_watches_fire_regardless_of_region():
    cloud, service = deploy(seed=404)
    writer = service.connect(region="us-east-1")
    watcher = service.connect(region="ap-south-1")
    events = []
    writer.create("/w", b"")
    cloud.run(until=cloud.now + 3000)
    watcher.get_data("/w", watch=events.append)
    writer.set_data("/w", b"x")
    cloud.run(until=cloud.now + 5000)
    assert len(events) == 1


def test_multi_region_write_slower_than_single():
    """Replication is parallel across regions, so the penalty is bounded by
    the slowest region write, not the sum."""
    def median_write(regions, seed):
        cloud = Cloud.aws(seed=seed)
        service = FaaSKeeperService.deploy(
            cloud, FaaSKeeperConfig(regions=regions, user_store="dynamodb"))
        c = service.connect(region=regions[0])
        c.create("/n", b"")
        times = []
        for _ in range(25):
            t0 = cloud.now
            c.set_data("/n", b"x" * 1024)
            times.append(cloud.now - t0)
        times.sort()
        return times[len(times) // 2]

    single = median_write(["us-east-1"], 405)
    triple = median_write(list(REGIONS), 405)
    # The two remote replicas are written in parallel: the commit pays ONE
    # inter-region penalty (~140 ms), not one per region.
    assert single + 80 < triple < single + 300


def test_epoch_counters_per_region():
    cloud, service = deploy(seed=406)
    for region in REGIONS:
        raw = service.system_store.table("fk-system-state").raw(
            f"epoch:{region}")
        assert raw == {"items": []}
