"""Fault injection: follower/leader crashes, lock expiry, retries (Z1).

The crash points are planted in the follower (Algorithm 1) between its
numbered steps; the leader's TryCommit (Algorithm 2, step ➋) must recover
or reject the transaction so that no partial state is ever user-visible.
"""

import pytest

from repro.faaskeeper import NoNodeError, RequestFailedError
from .conftest import make_service


def test_follower_crash_before_push_is_retried_transparently():
    """Crash after validation, before the leader push: the queue redelivers
    the request and the client still gets a success."""
    cloud, service = make_service(seed=11)
    c = service.connect()
    c.create("/a", b"")
    service.follower_fn.plan_crash("after_validate",
                                   invocations=[service.follower_fn.invocations + 1])
    res = c.set_data("/a", b"v1")
    assert res.version == 1
    data, _ = c.get_data("/a")
    assert data == b"v1"
    assert service.follower_fn.failures == 1


def test_follower_crash_after_push_leader_try_commits():
    """Crash between push (➂) and commit (➃) with redeliveries disabled:
    the leader must commit on the follower's behalf once the lease expires."""
    cloud, service = make_service(seed=12, follower_max_receive=1)
    c = service.connect()
    c.create("/a", b"")
    # Silence the queue's drop notification: this test observes the pure
    # recovery path (the drop/recovery ack race is covered separately).
    service._session_queues[c.session_id].on_drop = None
    service.follower_fn.plan_crash("after_push",
                                   invocations=[service.follower_fn.invocations + 1])
    fut = c.set_data_async("/a", b"recovered")
    cloud.run(until=cloud.now + 30_000)
    assert fut.done
    res = fut.wait()
    assert res.version == 1
    data, stat = c.get_data("/a")
    assert data == b"recovered"
    # system storage carries the leader-committed transaction
    raw = service.system_store.table("fk-system-nodes").raw("/a")
    assert raw["version"] == 1
    assert raw["transactions"] == []


def test_follower_crash_after_commit_no_double_apply():
    """Crash after commit (➃): the redelivered request must be deduplicated
    by the session watermark — the node version is bumped exactly once."""
    cloud, service = make_service(seed=13)
    c = service.connect()
    c.create("/a", b"")
    service.follower_fn.plan_crash("after_commit",
                                   invocations=[service.follower_fn.invocations + 1])
    fut = c.set_data_async("/a", b"once")
    cloud.run(until=cloud.now + 30_000)
    assert fut.done and fut.wait().version == 1
    data, stat = c.get_data("/a")
    assert data == b"once"
    assert stat.version == 1  # not applied twice


def test_multi_node_create_commit_is_atomic_under_crash():
    """Z1: a crash between push and commit of a create must never leave the
    child registered without the node (or vice versa)."""
    cloud, service = make_service(seed=14, follower_max_receive=1)
    c = service.connect()
    c.create("/p", b"")
    service.follower_fn.plan_crash("after_push",
                                   invocations=[service.follower_fn.invocations + 1])
    fut = c.create_async("/p/child", b"x")
    cloud.run(until=cloud.now + 30_000)
    nodes = service.system_store.table("fk-system-nodes")
    child = nodes.raw("/p/child")
    parent = nodes.raw("/p")
    child_exists = bool(child and child.get("exists"))
    child_registered = "child" in parent.get("children", [])
    assert child_exists == child_registered  # all-or-nothing
    if fut.done:
        try:
            fut.wait()
            assert child_exists  # success ack implies the commit happened
        except RequestFailedError:
            # The drop notification may race the leader's TryCommit recovery
            # (at-most-once ack); the state itself stays atomic either way.
            pass


def test_leader_crash_is_retried_by_queue():
    cloud, service = make_service(seed=15)
    c = service.connect()
    c.create("/a", b"")
    service.leader_fn.plan_crash("leader_entry",
                                 invocations=[service.leader_fn.invocations + 1])
    # plant the crash point by wrapping the handler segment: use generic
    # crash at function start via base compute -- emulate by planning on a
    # point the leader hits every time.
    res = c.set_data("/a", b"v1")
    assert res.version == 1


def test_poison_request_eventually_fails_future():
    """A request whose follower processing always crashes is dropped by the
    queue after max_receive and the client future fails."""
    cloud, service = make_service(seed=16, follower_max_receive=2)
    c = service.connect()
    c.create("/a", b"")
    service.follower_fn.plan_crash("after_validate", predicate=lambda i: True)
    fut = c.set_data_async("/a", b"x")
    cloud.run(until=cloud.now + 60_000)
    assert fut.done
    with pytest.raises(RequestFailedError):
        fut.wait()


def test_lock_expiry_does_not_corrupt_state():
    """A follower whose lease expired mid-request must not clobber a newer
    holder's committed data."""
    cloud, service = make_service(seed=17)
    c = service.connect()
    c.create("/a", b"")
    # Two sequential writes through the normal path still work after an
    # artificial long stall is injected by an expired-lock scenario: we
    # simulate by directly taking the node lock and letting it expire.
    from repro.cloud import OpContext

    def hog():
        handle = yield from service.node_lock.acquire(OpContext(), "/a")
        assert handle is not None
        # never release: the lease must expire on its own

    cloud.run_process(hog())
    res = c.set_data("/a", b"after-expiry")  # must eventually succeed
    assert res.version == 1
    data, _ = c.get_data("/a")
    assert data == b"after-expiry"


def test_consistency_after_random_follower_crashes():
    """Soak: every third follower invocation crashes at a random point; all
    acknowledged writes must be present and version numbers consistent."""
    cloud, service = make_service(seed=18)
    c = service.connect()
    c.create("/a", b"")
    service.follower_fn.plan_crash("after_validate", predicate=lambda i: i % 5 == 3)
    service.follower_fn.plan_crash("after_commit", predicate=lambda i: i % 7 == 4)
    acked = 0
    for i in range(12):
        fut = c.set_data_async("/a", f"v{i}".encode())
        cloud.run(until=cloud.now + 60_000)
        if fut.done:
            try:
                fut.wait()
                acked += 1
            except RequestFailedError:
                pass
    assert acked >= 8
    raw = service.system_store.table("fk-system-nodes").raw("/a")
    assert raw["transactions"] == []  # everything drained
    data, stat = c.get_data("/a")
    # the last acknowledged value is visible with a consistent version
    assert stat.version == raw["version"]
