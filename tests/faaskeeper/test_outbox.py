"""Transactional-outbox event streaming (outbox.py).

Covers the three layers: the sink registry and the concrete sinks
(in-proc, JSON-lines file, webhook with injectable transport), the
publisher's delivery contract (txid order, at-least-once via the durable
watermark, retry with exponential backoff, dead-lettering), and the
transactional append itself — the outbox record commits in the same
storage transaction as the commit-log record, so leader redelivery can
never double-append and a committed change can never miss its event.
"""

import json

import pytest

from repro.cloud.errors import FunctionCrash
from repro.faaskeeper import FaaSKeeperConfig
from repro.faaskeeper.chaos import verify_outbox_delivery
from repro.faaskeeper.layout import (
    OUTBOX_DEAD_LETTER_KEY,
    OUTBOX_PUBLISHED_KEY,
    SYSTEM_OUTBOX,
    SYSTEM_STATE,
    log_key,
)
from repro.faaskeeper.outbox import (
    FakeHttp,
    FileSink,
    InProcSink,
    Sink,
    WebhookSink,
    make_sink,
    register_sink,
)
from .conftest import make_service


def outbox_service(seed, **kwargs):
    kwargs.setdefault("commit_log_enabled", True)
    kwargs.setdefault("outbox_enabled", True)
    kwargs.setdefault("outbox_publish_ms", 0.0)  # manual drains
    return make_service(seed=seed, **kwargs)


# --------------------------------------------------------------------------
# Sink registry
# --------------------------------------------------------------------------

def test_make_sink_resolves_every_spec_form(tmp_path):
    ready = InProcSink()
    assert make_sink(ready) is ready
    assert isinstance(make_sink("inproc"), InProcSink)
    fs = make_sink(f"file:{tmp_path}/cdc.jsonl")
    assert isinstance(fs, FileSink) and fs.path == f"{tmp_path}/cdc.jsonl"
    wh = make_sink(("webhook", {"url": "http://example/hook"}))
    assert isinstance(wh, WebhookSink) and wh.url == "http://example/hook"
    with pytest.raises(ValueError):
        make_sink("kafka:topic")
    with pytest.raises(ValueError):
        make_sink(42)
    with pytest.raises(ValueError):
        FileSink("")
    with pytest.raises(ValueError):
        WebhookSink("")


def test_register_sink_plugs_in_new_kinds():
    @register_sink("null")
    class NullSink(Sink):
        def _emit(self, fctx, events):
            return None
            yield

    try:
        sink = make_sink("null")
        assert isinstance(sink, NullSink) and sink.kind == "null"
    finally:
        from repro.faaskeeper.outbox import SINK_SCHEMES
        del SINK_SCHEMES["null"]


def test_duplicate_sink_kinds_get_uniquified_labels():
    cloud, service = outbox_service(
        600, outbox_sinks=[InProcSink(), InProcSink()])
    labels = [label for label, _sink in service.outbox.sinks]
    assert labels == ["inproc", "inproc-2"]
    assert service.outbox.sink("inproc-2") is service.outbox.sinks[1][1]
    assert service.outbox.sink(0) is service.outbox.sinks[0][1]
    with pytest.raises(KeyError):
        service.outbox.sink("nope")


# --------------------------------------------------------------------------
# Append + publish happy path
# --------------------------------------------------------------------------

def test_events_flow_commit_to_sink_in_txid_order():
    seen = []
    cloud, service = outbox_service(
        601, outbox_sinks=[InProcSink(callback=seen.append)])
    c = service.connect()
    c.create("/a", b"x")
    c.set_data("/a", b"y")
    c.create("/b", b"z")
    c.delete("/b")
    result = service.outbox.drain()
    assert result["published"] == 4 and result["backlog"] == 0
    assert [ev["op"] for ev in seen] == \
        ["create", "set_data", "create", "delete"]
    txids = [ev["txid"] for ev in seen]
    assert txids == sorted(txids)
    per_path = [ev["txid"] for ev in seen if ev["path"] == "/a"]
    assert per_path == sorted(per_path)
    assert all(ev["session"] == c.session_id for ev in seen)
    mark = service.system_store.table(SYSTEM_STATE).raw(OUTBOX_PUBLISHED_KEY)
    assert mark["txid"] == max(txids)
    assert verify_outbox_delivery(service, txids) == []
    stats = service.outbox.stats()
    assert stats["appended"] == 4 and stats["published"] == 4
    assert stats["retries"] == 0 and stats["dead_letters"] == 0


def test_redelivered_leader_batch_appends_one_outbox_record():
    """Atomicity: the outbox row rides the commit log's conditional
    ``transact_update``, so the leader crash that redelivers a batch (and
    no-ops the log append) no-ops the outbox append too."""
    cloud, service = outbox_service(602)
    c = service.connect()
    c.create("/a", b"v0")
    service.leader_fn.plan_crash(
        "leader_after_log",
        invocations=[service.leader_fn.invocations + 1])
    res = c.set_data("/a", b"v1")
    assert service.leader_fn.failures == 1  # the crash really happened
    outbox = service.system_store.table(SYSTEM_OUTBOX)
    record = outbox.raw(log_key(res.txid))
    assert record is not None and record["events"] == [["/a", "set_data"]]
    # idempotent redelivery: still exactly one record per txid (the
    # re-append overwrites bit-identically), so exactly one delivery
    assert sorted(outbox.keys()) == [log_key(1), log_key(res.txid)]
    service.outbox.drain()
    assert service.outbox.sink(0).delivered_txids().count(res.txid) == 1
    assert verify_outbox_delivery(service, [1, res.txid]) == []


def test_pure_metadata_records_emit_no_events():
    cloud, service = outbox_service(603)
    assert service.outbox.append_ops(0.0, 99, 0, "s", []) == []
    only_parent = [("/", None, True, "set_children")]
    assert service.outbox.append_ops(0.0, 99, 0, "s", only_parent) == []


def test_drain_respects_batch_limit_and_compacts_published_records():
    cloud, service = outbox_service(604, outbox_batch=2)
    c = service.connect()
    for i in range(5):
        c.create(f"/n{i}", b"d")
    first = service.outbox.drain()
    assert first["published"] == 2 and first["backlog"] == 3
    second = service.outbox.drain()
    assert second["published"] == 2
    third = service.outbox.drain()
    assert third["published"] == 1 and third["backlog"] == 0
    # records below the watermark-at-pass-start are garbage-collected
    assert service.outbox.metrics["compacted"].value > 0
    final = service.outbox.drain()
    assert final["published"] == 0
    remaining = service.system_store.table(SYSTEM_OUTBOX).keys()
    assert len(list(remaining)) == 0  # everything published, everything GCed


def test_scheduled_publisher_drains_without_manual_help():
    cloud, service = make_service(
        seed=605, commit_log_enabled=True, outbox_enabled=True,
        outbox_publish_ms=1_000.0)
    c = service.connect()
    c.create("/a", b"x")
    cloud.run(until=cloud.now + 10_000)
    assert service.outbox.sink(0).delivered_txids() != []
    assert service.outbox.stats()["drains"] >= 1
    # scale-to-zero: closing the last session suspends the publisher
    c.close()
    assert service.outbox_task is not None
    assert not service.outbox_task.enabled


# --------------------------------------------------------------------------
# Sinks
# --------------------------------------------------------------------------

def test_file_sink_writes_a_json_lines_cdc_feed(tmp_path):
    feed = tmp_path / "cdc.jsonl"
    cloud, service = outbox_service(606, outbox_sinks=[f"file:{feed}"])
    c = service.connect()
    c.create("/a", b"x")
    c.set_data("/a", b"y")
    service.outbox.drain()
    lines = [json.loads(line) for line in
             feed.read_text().strip().splitlines()]
    assert [(ev["txid"], ev["path"], ev["op"]) for ev in lines] == \
        [(1, "/a", "create"), (2, "/a", "set_data")]
    assert service.outbox.sink("file").delivered_txids() == [1, 2]


def test_webhook_sink_retries_with_backoff_then_succeeds():
    http = FakeHttp(fail_times=2)
    cloud, service = outbox_service(
        607, outbox_sinks=[WebhookSink("http://example/hook", transport=http)],
        outbox_max_attempts=3, outbox_retry_base_ms=50.0)
    c = service.connect()
    c.create("/a", b"x")
    t0 = cloud.now
    result = service.outbox.drain()
    assert result["published"] == 1
    # 3 requests: two 503s, one 200; backoff 50ms + 100ms elapsed
    assert len(http.requests) == 3
    assert cloud.now - t0 >= 150.0
    assert http.requests[0][0] == "http://example/hook"
    assert http.requests[0][1]["events"][0]["path"] == "/a"
    sink = service.outbox.sink("webhook")
    assert sink.delivered_txids() == [1]
    assert service.outbox.metrics["retries"].labels(sink="webhook").value == 2
    assert service.outbox.dead_letters == []


def test_exhausted_sink_dead_letters_and_the_drain_moves_on():
    good = InProcSink()
    bad = WebhookSink("http://down/hook", transport=FakeHttp(fail_times=99))
    cloud, service = outbox_service(
        608, outbox_sinks=[good, bad], outbox_max_attempts=2,
        outbox_retry_base_ms=1.0)
    c = service.connect()
    c.create("/a", b"x")
    c.create("/b", b"y")
    result = service.outbox.drain()
    assert result["published"] == 2  # the healthy sink keeps the drain alive
    assert good.delivered_txids() == [1, 2]
    assert bad.delivered == []
    # both records parked durably for the webhook sink, with the error
    dead = service.system_store.table(SYSTEM_STATE).raw(
        OUTBOX_DEAD_LETTER_KEY)["items"]
    assert [(d["txid"], d["sink"]) for d in dead] == \
        [(1, "webhook"), (2, "webhook")]
    assert "503" in dead[0]["error"]
    assert service.outbox.dead_letters == dead
    assert service.outbox.metrics["dead_letters"].labels(
        sink="webhook").value == 2
    # the audit accepts dead-lettered events as accounted-for, not lost
    assert verify_outbox_delivery(service, [1, 2]) == []


def test_webhook_without_transport_fails_loudly():
    cloud, service = outbox_service(
        609, outbox_sinks=[WebhookSink("http://example/hook")],
        outbox_max_attempts=1, outbox_retry_base_ms=0.0)
    c = service.connect()
    c.create("/a", b"x")
    service.outbox.drain()
    assert "transport" in service.outbox.dead_letters[0]["error"]


# --------------------------------------------------------------------------
# At-least-once watermark
# --------------------------------------------------------------------------

def test_publisher_crash_before_watermark_redelivers():
    """A crash after the sink delivery but before the watermark write
    must re-deliver the record on the next drain (at-least-once): the
    sink sees a duplicate, the audit still passes because duplicates
    carry identical payloads."""
    cloud, service = outbox_service(610)
    c = service.connect()
    c.create("/a", b"x")
    service.outbox.fn.plan_crash(
        "outbox_after_sink",
        invocations=[service.outbox.fn.invocations + 1])
    with pytest.raises(FunctionCrash):
        service.outbox.drain()
    sink = service.outbox.sink(0)
    assert sink.delivered_txids() == [1]  # delivered, but not marked
    mark = service.system_store.table(SYSTEM_STATE).raw(OUTBOX_PUBLISHED_KEY)
    assert mark is None
    result = service.outbox.drain()
    assert result["published"] == 1
    assert sink.delivered_txids() == [1, 1]  # the at-least-once duplicate
    assert verify_outbox_delivery(service, [1]) == []


def test_crash_before_any_delivery_loses_nothing():
    cloud, service = outbox_service(611)
    c = service.connect()
    c.create("/a", b"x")
    c.create("/b", b"y")
    service.outbox.fn.plan_crash(
        "outbox_entry", invocations=[service.outbox.fn.invocations + 1])
    with pytest.raises(FunctionCrash):
        service.outbox.drain()
    assert service.outbox.sink(0).delivered == []
    result = service.outbox.drain()
    assert result["published"] == 2
    assert service.outbox.sink(0).delivered_txids() == [1, 2]


def test_publish_floor_is_min_over_shards():
    """A txid above the slowest shard's log head is not yet publishable:
    order below the floor is provably gapless, above it is not."""
    cloud, service = outbox_service(612, leader_shards=4)
    c = service.connect()
    paths = ["/a", "/b", "/c", "/d", "/e"]
    for p in paths:
        c.create(p, b"x")
    assert len({service.shard_of(p) for p in paths}) > 1
    floor = cloud.run_process(
        service.outbox.publish_floor(service.system_ctx))
    result = service.outbox.drain()
    assert result["floor"] == floor
    delivered = service.outbox.sink(0).delivered_txids()
    assert delivered == sorted(delivered)
    assert all(txid <= floor for txid in delivered)


# --------------------------------------------------------------------------
# Gating
# --------------------------------------------------------------------------

def test_default_deployment_has_no_outbox():
    cloud, service = make_service(seed=613, outbox_enabled=False)
    assert service.outbox is None and service.outbox_task is None
    c = service.connect()
    c.create("/a", b"x")
    assert SYSTEM_OUTBOX not in service.system_store.tables
    assert "fk_outbox_appended_total" not in service.metrics


def test_outbox_requires_commit_log():
    with pytest.raises(ValueError):
        FaaSKeeperConfig(outbox_enabled=True, commit_log_enabled=False)
    with pytest.raises(ValueError):
        FaaSKeeperConfig(outbox_enabled=True, commit_log_enabled=True,
                         outbox_sinks=[])
    with pytest.raises(ValueError):
        FaaSKeeperConfig(outbox_enabled=True, commit_log_enabled=True,
                         outbox_max_attempts=0)


def test_force_outbox_env_flips_the_default(monkeypatch):
    monkeypatch.setenv("FK_FORCE_OUTBOX", "1")
    forced = FaaSKeeperConfig()
    assert forced.outbox_enabled and forced.commit_log_enabled
    pinned = FaaSKeeperConfig(outbox_enabled=False)
    assert not pinned.outbox_enabled and not pinned.commit_log_enabled
    monkeypatch.delenv("FK_FORCE_OUTBOX")
    assert not FaaSKeeperConfig().outbox_enabled
