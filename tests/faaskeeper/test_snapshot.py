"""Commit log, fuzzy snapshots, compaction and recovery (snapshot.py).

ZooKeeper's durability design on the FaaSKeeper layout: the leader logs
every committed transaction's replication writes, a fuzzy snapshot folds
the log into a per-path checkpoint concurrent with commits, compaction
truncates the folded prefix (clamped by the slowest region's
``replicated_tx`` watermark), and a region's user store rebuilds from
snapshot + suffix after replica loss.
"""

import pytest

from repro.faaskeeper import FaaSKeeperConfig
from repro.faaskeeper.chaos import (
    region_user_image,
    wipe_system_tables,
    wipe_user_region,
)
from repro.faaskeeper.layout import (
    LOG_HEAD_KEY,
    SNAPSHOT_META_KEY,
    SYSTEM_LOG,
    SYSTEM_NODES,
    SYSTEM_SESSIONS,
    SYSTEM_SNAPSHOT,
    SYSTEM_STATE,
    SYSTEM_WATCHES,
    log_key,
    replicated_key,
)
from .conftest import make_service


def snapshot_now(cloud, service):
    return cloud.run_process(service.snapshots.take_snapshot(service.system_ctx))


def compact_now(cloud, service):
    return cloud.run_process(service.snapshots.compact(service.system_ctx))


def recover_now(cloud, service, region, cold):
    return cloud.run_process(service.snapshots.recover_region(
        service.system_ctx, region, cold=cold))


def log_txids(service):
    return sorted(int(k) for k in service.system_store.table(SYSTEM_LOG).keys())


def test_default_deployment_has_no_log():
    """The commit log is opt-in: the default deployment neither creates
    the tables nor pays any per-commit work.  (``outbox_enabled=False``
    pins the FK_FORCE_OUTBOX CI leg back to the paper's default — the
    override would otherwise force the commit log on.)"""
    cloud, service = make_service(seed=500, outbox_enabled=False)
    assert service.snapshots is None
    c = service.connect()
    c.create("/a", b"x")
    assert SYSTEM_LOG not in service.system_store.tables


def test_commit_log_records_every_committed_txid():
    cloud, service = make_service(seed=501, commit_log_enabled=True)
    c = service.connect()
    nodes = service.system_store.table("fk-system-nodes")
    c.create("/a", b"v0")
    c.create("/b", b"w0")
    txids = [nodes.raw("/a")["created_tx"],
             nodes.raw("/b")["created_tx"],
             c.set_data("/a", b"v1").txid]
    log = service.system_store.table(SYSTEM_LOG)
    for txid in txids:
        record = log.raw(log_key(txid))
        assert record is not None and record["txid"] == txid
    heads = service.system_store.table(SYSTEM_STATE).raw(LOG_HEAD_KEY)
    assert heads["s0"] == max(txids)


def test_fuzzy_snapshot_folds_newest_images():
    cloud, service = make_service(seed=502, commit_log_enabled=True)
    c = service.connect()
    c.create("/a", b"old")
    c.set_data("/a", b"new")
    c.create("/gone", b"bye")
    c.delete("/gone")
    floor = snapshot_now(cloud, service)
    heads = service.system_store.table(SYSTEM_STATE).raw(LOG_HEAD_KEY)
    assert floor == heads["s0"]
    snap = service.system_store.table(SYSTEM_SNAPSHOT)
    a = snap.raw("/a")
    assert a["image"]["data"] == b"new" and a["image"]["version"] == 1
    assert snap.raw("/gone") is None  # folded delete removes the item
    # parent metadata folded without clobbering data
    root = snap.raw("/")
    assert root is not None and "children" in root["image"]
    meta = service.system_store.table(SYSTEM_STATE).raw(SNAPSHOT_META_KEY)
    assert meta["txid"] == floor and meta["seq"] == 1


def test_snapshot_is_incremental_and_refold_is_idempotent():
    cloud, service = make_service(seed=503, commit_log_enabled=True)
    c = service.connect()
    c.create("/a", b"v0")
    first = snapshot_now(cloud, service)
    folded_first = service.snapshots.records_folded
    # nothing new: the floor does not move, nothing is re-folded
    assert snapshot_now(cloud, service) == first
    assert service.snapshots.records_folded == folded_first
    c.set_data("/a", b"v1")
    second = snapshot_now(cloud, service)
    assert second > first
    snap = service.system_store.table(SYSTEM_SNAPSHOT)
    assert snap.raw("/a")["image"]["data"] == b"v1"


def test_compaction_truncates_folded_prefix():
    cloud, service = make_service(seed=504, commit_log_enabled=True)
    c = service.connect()
    for i in range(6):
        c.set_data("/a", f"v{i}".encode()) if i else c.create("/a", b"v0")
    floor = snapshot_now(cloud, service)
    assert log_txids(service)  # records exist below the floor
    removed = compact_now(cloud, service)
    assert removed > 0
    assert all(txid > floor for txid in log_txids(service))
    meta = service.system_store.table(SYSTEM_STATE).raw(SNAPSHOT_META_KEY)
    assert meta["compacted"] == floor
    # a second sweep with no new snapshot is a no-op
    assert compact_now(cloud, service) == 0


def test_compaction_disabled_keeps_full_log():
    cloud, service = make_service(seed=505, commit_log_enabled=True,
                                  compaction_enabled=False)
    c = service.connect()
    c.create("/a", b"v0")
    c.set_data("/a", b"v1")
    snapshot_now(cloud, service)
    before = log_txids(service)
    assert compact_now(cloud, service) == 0
    assert log_txids(service) == before


def test_compaction_never_truncates_above_lagging_region_watermark():
    """Satellite regression: the compaction cut is clamped to the minimum
    per-region ``replicated_tx`` watermark, so a lagging region can still
    replay its suffix from its own watermark after the sweep."""
    cloud, service = make_service(
        seed=506, commit_log_enabled=True, distributor_enabled=True,
        regions=["us-east-1", "eu-west-1"])
    c = service.connect()
    for i in range(5):
        c.set_data("/a", f"v{i}".encode()) if i else c.create("/a", b"v0")
    cloud.run(until=cloud.now + 10_000)  # let both regions drain
    floor = snapshot_now(cloud, service)
    state = service.system_store.table(SYSTEM_STATE)
    # Make eu-west-1 lag: wind its watermark back below the floor, as if
    # its distributor had crashed before draining the later records.
    lag = 2
    assert lag < floor
    state._store(replicated_key("eu-west-1"), {"txid": lag})
    compact_now(cloud, service)
    meta = state.raw(SNAPSHOT_META_KEY)
    assert meta["compacted"] == lag  # clamped, not the snapshot floor
    remaining = log_txids(service)
    assert all(txid > lag for txid in remaining)
    # the lagging region's suffix is intact and warm recovery replays it
    wiped = [t for t in range(lag + 1, floor + 1)]
    assert set(wiped) <= set(remaining)
    stats = recover_now(cloud, service, "eu-west-1", cold=False)
    assert stats["replayed"] >= len(wiped)
    assert state.raw(replicated_key("eu-west-1"))["txid"] >= floor


def test_cold_recovery_rebuilds_wiped_region_from_snapshot_plus_suffix():
    cloud, service = make_service(seed=507, commit_log_enabled=True)
    c = service.connect()
    c.create("/a", b"v0")
    c.create("/a/kid", b"k0")
    c.set_data("/a", b"v1")
    snapshot_now(cloud, service)
    compact_now(cloud, service)
    c.set_data("/a/kid", b"k1")  # suffix: logged but not snapshotted
    c.create("/late", b"fresh")
    region = service.config.primary_region
    before = {p: region_user_image(service, region, p)
              for p in ("/a", "/a/kid", "/late")}
    wipe_user_region(service, region)
    assert region_user_image(service, region, "/a") is None
    stats = recover_now(cloud, service, region, cold=True)
    assert stats["loaded"] >= 2 and stats["replayed"] >= 2
    for path, image in before.items():
        got = region_user_image(service, region, path)
        assert got is not None, path
        assert got.get("data") == image.get("data"), path
        assert got.get("version") == image.get("version"), path
        assert got.get("modified_tx") == image.get("modified_tx"), path


def test_cold_recovery_applies_suffix_deletes():
    cloud, service = make_service(seed=508, commit_log_enabled=True)
    c = service.connect()
    c.create("/doomed", b"x")
    snapshot_now(cloud, service)
    c.delete("/doomed")  # delete lives only in the suffix
    region = service.config.primary_region
    wipe_user_region(service, region)
    recover_now(cloud, service, region, cold=True)
    assert region_user_image(service, region, "/doomed") is None


def test_scheduled_snapshot_function_runs_and_compacts():
    cloud, service = make_service(seed=509, commit_log_enabled=True,
                                  snapshot_auto_ms=5_000.0)
    c = service.connect()
    c.create("/a", b"v0")
    c.set_data("/a", b"v1")
    cloud.run(until=cloud.now + 30_000)
    assert service.snapshots.snapshots_taken >= 1
    assert service.snapshots.log_records_compacted >= 1
    snap = service.system_store.table(SYSTEM_SNAPSHOT)
    assert snap.raw("/a")["image"]["data"] == b"v1"


def test_snapshot_auto_requires_commit_log():
    with pytest.raises(ValueError):
        FaaSKeeperConfig(snapshot_auto_ms=1000.0)


def test_redelivered_append_does_not_regress_log_head():
    """A leader crash after the log append redelivers the batch; the
    second append is a no-op and the head watermark never regresses."""
    cloud, service = make_service(seed=510, commit_log_enabled=True)
    c = service.connect()
    c.create("/a", b"v0")
    service.leader_fn.plan_crash(
        "leader_after_log",
        invocations=[service.leader_fn.invocations + 1])
    res = c.set_data("/a", b"v1")
    assert res.version == 1
    assert service.leader_fn.failures == 1
    log = service.system_store.table(SYSTEM_LOG)
    record = log.raw(log_key(res.txid))
    assert record is not None and record["txid"] == res.txid
    heads = service.system_store.table(SYSTEM_STATE).raw(LOG_HEAD_KEY)
    assert heads["s0"] == res.txid
    data, _ = c.get_data("/a")
    assert data == b"v1"


def test_recover_system_rebuilds_wiped_system_region():
    """Satellite regression: losing the *system* region (node table,
    watch instances, session records) is recoverable from durables —
    snapshot images + ``sys:`` checkpoints + the log suffix.  The
    rebuilt deployment must keep serving: the pre-wipe watch still
    fires, the sequential counter does not reuse suffixes, and session
    teardown still reaps its ephemerals."""
    cloud, service = make_service(seed=512, commit_log_enabled=True)
    writer = service.connect()
    watcher = service.connect()
    writer.create("/a", b"v0")
    writer.create("/a/kid", b"k0")
    writer.create("/eph", b"e", ephemeral=True)
    seq1 = writer.create("/a/item-", b"s", sequence=True)
    fired = []
    watcher.get_data("/a", watch=fired.append)
    snapshot_now(cloud, service)          # checkpoints watches + sessions
    writer.set_data("/a/kid", b"k1")      # suffix: logged, not snapshotted
    writer.create("/late", b"fresh")

    nodes = service.system_store.table(SYSTEM_NODES)
    paths = ["/", "/a", "/a/kid", "/eph", "/late", seq1]
    before = {p: dict(nodes.raw(p)) for p in paths}
    def table_image(name):
        table = service.system_store.table(name)
        return {key: table.raw(key) for key in table.keys()}

    before_watches = table_image(SYSTEM_WATCHES)
    before_sessions = table_image(SYSTEM_SESSIONS)

    wipe_system_tables(service)
    assert nodes.raw("/a") is None  # the wipe really happened
    stats = cloud.run_process(
        service.snapshots.recover_system(service.system_ctx))
    assert stats["replayed"] >= 2 and stats["nodes"] >= len(paths)
    assert stats["watches"] == len(before_watches) >= 1
    assert stats["sessions"] == len(before_sessions) == 2

    for path in paths:
        got = nodes.raw(path)
        assert got is not None, path
        for field in ("version", "cversion", "modified_tx", "created_tx",
                      "ephemeral_owner"):
            assert got.get(field) == before[path].get(field), (path, field)
        assert sorted(got.get("children", [])) == \
            sorted(before[path].get("children", [])), path
    assert nodes.raw("/a")["cseq"] >= before["/a"]["cseq"]
    assert table_image(SYSTEM_WATCHES) == before_watches
    recovered_sessions = table_image(SYSTEM_SESSIONS)
    assert set(recovered_sessions) == set(before_sessions)
    assert recovered_sessions[writer.session_id].get("ephemeral") == \
        before_sessions[writer.session_id].get("ephemeral")

    # The rebuilt region serves: the checkpointed watch instance fires...
    writer.set_data("/a", b"v1")
    cloud.run(until=cloud.now + 10_000)
    assert len(fired) == 1
    # ...the recovered cseq never reuses a sequential suffix...
    seq2 = writer.create("/a/item-", b"s2", sequence=True)
    assert seq2 != seq1 and seq2 > seq1
    # ...and closing the session reaps the recovered ephemeral (tombstone
    # in the system table until the GC sweep, gone from the user store).
    writer.close()
    cloud.run(until=cloud.now + 10_000)
    eph = nodes.raw("/eph")
    assert eph is not None and not eph["exists"]
    assert region_user_image(service, service.config.primary_region,
                             "/eph") is None


def test_sharded_floor_is_min_over_shards():
    """With several shards the snapshot floor is the minimum per-shard
    head: traffic on one shard cannot advance the floor past another
    shard's unlogged pipeline."""
    cloud, service = make_service(seed=511, commit_log_enabled=True,
                                  leader_shards=4)
    c = service.connect()
    paths = ["/a", "/b", "/c", "/d", "/e"]
    for p in paths:
        c.create(p, b"x")
    shards_hit = {service.shard_of(p) for p in paths}
    assert len(shards_hit) > 1  # the workload actually spans shards
    heads = service.system_store.table(SYSTEM_STATE).raw(LOG_HEAD_KEY)
    per_shard = [heads.get(f"s{i}", 0)
                 for i in range(service.config.leader_shards)]
    floor = snapshot_now(cloud, service)
    assert floor == min(per_shard)
