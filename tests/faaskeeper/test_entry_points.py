"""Third-party backend discovery through the ``faaskeeper.backends``
entry-point group: a distribution that ships a UserStore subclass is
resolvable by scheme without touching this repo, passes the shared
conformance suite, and cannot perturb the built-in registry at import
time (discovery is lazy, one-shot, and type-checked)."""

import pytest

from repro.faaskeeper import userstore
from repro.faaskeeper.userstore import (
    BACKEND_ENTRY_POINT_GROUP,
    BACKEND_REGISTRY,
    MemBackend,
    backend_for,
    is_registered_scheme,
    load_entry_point_backends,
    registered_schemes,
)

from . import test_storage_conformance as conformance


class ToyBackend(MemBackend):
    """What a third-party package would ship: a UserStore subclass
    advertised under ``[project.entry-points."faaskeeper.backends"]``."""


class FakeEntryPoint:
    """Stand-in for ``importlib.metadata.EntryPoint`` — tests only need
    ``name`` and ``load()``."""

    def __init__(self, name, target):
        self.name = name
        self.group = BACKEND_ENTRY_POINT_GROUP
        self._target = target
        self.loads = 0

    def load(self):
        self.loads += 1
        return self._target


@pytest.fixture
def toy_entry_point(monkeypatch):
    """Fake an installed distribution advertising ``toy = ToyBackend``.

    Resets the one-shot latch for the test and restores the registry on
    teardown so the conformance suite's exact-schemes assertion (and any
    later discovery) is untouched."""
    ep = FakeEntryPoint("toy", ToyBackend)
    monkeypatch.setattr(userstore, "_iter_backend_entry_points", lambda: [ep])
    monkeypatch.setattr(userstore, "_ENTRY_POINTS_LOADED", False)
    before = dict(BACKEND_REGISTRY)
    yield ep
    for scheme in list(BACKEND_REGISTRY):
        if scheme not in before:
            del BACKEND_REGISTRY[scheme]


def test_entry_point_scheme_resolves(toy_entry_point):
    assert is_registered_scheme("toy")
    assert backend_for("toy") is ToyBackend
    assert ToyBackend.scheme == "toy"
    assert toy_entry_point.loads == 1


def test_discovery_is_lazy_and_one_shot(toy_entry_point):
    # Nothing loads until a registry miss asks for it...
    assert toy_entry_point.loads == 0
    assert backend_for("mem") is MemBackend      # hit: no discovery
    assert toy_entry_point.loads == 0
    assert load_entry_point_backends() == ["toy"]
    # ...and the latch makes the second sweep a no-op.
    assert load_entry_point_backends() == []
    assert toy_entry_point.loads == 1


def test_entry_point_backend_passes_conformance(toy_entry_point):
    """The acceptance bar for a third-party scheme is the same shared
    suite the built-ins face — run its core invariants against ``toy``."""
    conformance.test_crud_roundtrip("toy")
    conformance.test_read_returns_a_copy("toy")
    conformance.test_update_metadata_preserves_data("toy")


def test_entry_point_backend_deploys_through_config(toy_entry_point):
    cloud, store = conformance.make_store("toy")
    assert isinstance(store, ToyBackend)


def test_non_userstore_entry_point_is_rejected(monkeypatch):
    monkeypatch.setattr(userstore, "_iter_backend_entry_points",
                        lambda: [FakeEntryPoint("bogus", dict)])
    monkeypatch.setattr(userstore, "_ENTRY_POINTS_LOADED", False)
    with pytest.raises(TypeError, match="UserStore subclass"):
        load_entry_point_backends()
    assert "bogus" not in BACKEND_REGISTRY


def test_unknown_scheme_still_raises_after_discovery(toy_entry_point):
    with pytest.raises(ValueError, match="registered"):
        backend_for("cassandra")


def test_toy_scheme_never_leaks_into_the_builtin_registry():
    """Runs after the fixtured tests: teardown restored the registry, so
    the conformance suite's exact-schemes gate still holds."""
    assert registered_schemes() == ["dynamodb", "hybrid", "mem", "redis", "s3"]
