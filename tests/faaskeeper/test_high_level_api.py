"""High-level client API: session state machine, listeners, ensure_path,
SessionRetry, the self-re-arming watch decorators, and the exists() cache
route."""

import pytest

from repro.faaskeeper import (
    BadVersionError,
    KeeperState,
    NodeExistsError,
    RequestFailedError,
    RetryFailedError,
    SessionClosedError,
    SessionRetry,
)
from .conftest import make_service


# ---------------------------------------------------------------- state machine
def test_session_starts_connected_and_close_is_lost(cloud, service):
    client = service.connect()
    states = []
    client.add_listener(states.append)
    assert client.state is KeeperState.CONNECTED
    client.create("/a", b"x")
    assert states == []                       # healthy traffic: no transitions
    client.close()
    assert client.state is KeeperState.LOST
    assert states == [KeeperState.LOST]
    assert not client.evicted                 # client-initiated, not evicted
    with pytest.raises(SessionClosedError):
        client.create("/b")


def test_eviction_surfaces_suspended_then_lost(cloud, service):
    """Satellite: an evicted session learns of its death through the LOST
    transition the moment the evictor's close lands — not on its next
    failed request."""
    client = service.connect()
    states = []
    client.add_listener(states.append)
    client.create("/e", ephemeral=True)
    client.alive = False                      # stops answering heartbeats
    cloud.run(until=cloud.now + 3 * 60_000)
    # The missed ping suspends the session; the eviction makes it LOST —
    # without the client issuing a single request in between.
    assert states == [KeeperState.SUSPENDED, KeeperState.LOST]
    assert client.state is KeeperState.LOST
    assert client.closed and client.evicted


def test_lost_is_terminal_and_listeners_removable(cloud, service):
    client = service.connect()
    seen_a, seen_b = [], []
    client.add_listener(seen_a.append)
    client.add_listener(seen_b.append)
    client.remove_listener(seen_b.append)     # different bound object: no-op
    client.remove_listener(seen_a.append)     # also a different object
    # Listeners are compared by identity; hold the callable to remove it.
    holder = seen_b.append
    client.add_listener(holder)
    client.remove_listener(holder)
    client.close()
    assert seen_b == []
    # LOST is terminal: later transitions are ignored.
    client._transition(KeeperState.CONNECTED)
    assert client.state is KeeperState.LOST


def test_broken_listener_does_not_poison_the_session(cloud, service):
    client = service.connect()

    def bad_listener(_state):
        raise RuntimeError("boom")

    good = []
    client.add_listener(bad_listener)
    client.add_listener(good.append)
    client.close()
    assert good == [KeeperState.LOST]


# ---------------------------------------------------------------- ensure_path
def test_ensure_path_creates_missing_ancestors(cloud, service):
    client = service.connect()
    assert client.ensure_path("/app/config/region/primary")
    assert client.get_children("/app/config/region") == ["primary"]
    # Idempotent, and absorbs pre-existing segments.
    assert client.ensure_path("/app/config/region/primary")
    client.create("/app/config/region/primary/leaf", b"x")
    assert client.ensure_path("/app/config/region/primary/leaf")


def test_ensure_path_races_are_absorbed(cloud, service):
    a, b = service.connect(), service.connect()
    assert a.ensure_path("/shared/deep")
    assert b.ensure_path("/shared/deep/deeper")
    assert b.get_children("/shared/deep") == ["deeper"]


# ---------------------------------------------------------------- SessionRetry
def test_session_retry_retries_transient_failures(cloud, service):
    client = service.connect()
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise RequestFailedError("system_busy")
        return "ok"

    before = cloud.now
    assert client.retry(flaky) == "ok"
    assert calls["n"] == 3
    assert cloud.now > before                 # backoff advanced the clock


def test_session_retry_exhaustion_raises_with_cause(cloud, service):
    client = service.connect()
    retry = SessionRetry(client, max_tries=3, delay_ms=5.0)

    def always_busy():
        raise RequestFailedError("system_busy")

    with pytest.raises(RetryFailedError) as excinfo:
        retry(always_busy)
    assert isinstance(excinfo.value.__cause__, RequestFailedError)


def test_session_retry_extra_exceptions_and_copy(cloud, service):
    client = service.connect()
    assert BadVersionError not in client.retry.retry_exceptions
    versioned = client.retry.copy(retry_exceptions=(BadVersionError,),
                                  max_tries=2)
    assert BadVersionError in versioned.retry_exceptions
    calls = {"n": 0}

    def stale_once():
        calls["n"] += 1
        if calls["n"] == 1:
            raise BadVersionError("stale")
        return calls["n"]

    assert versioned(stale_once) == 2
    # Non-retryable errors surface immediately.
    with pytest.raises(NodeExistsError):
        client.retry(lambda: (_ for _ in ()).throw(NodeExistsError("x")))


# ---------------------------------------------------------------- exists cache
def test_exists_is_served_from_the_read_cache():
    """Satellite: exists() shares the (path, DATA) cache entry with
    get_data — in both directions — instead of always paying the user-store
    round trip."""
    cloud, service = make_service(seed=5, client_cache_entries=32)
    client = service.connect()
    client.create("/node", b"payload")

    # exists miss admits; the repeat exists and a get_data both hit.
    assert client.exists("/node") is not None
    stats = client._cache.stats()
    assert (stats["hits"], stats["misses"]) == (0, 1)
    assert client.exists("/node") is not None
    data, _stat = client.get_data("/node")
    assert data == b"payload"
    stats = client._cache.stats()
    assert (stats["hits"], stats["misses"]) == (2, 1)

    # And a get_data miss admits the entry exists() then hits.
    client.create("/other", b"x")
    client.get_data("/other")
    hits_before = client._cache.stats()["hits"]
    assert client.exists("/other") is not None
    assert client._cache.stats()["hits"] == hits_before + 1


def test_exists_with_watch_bypasses_the_cache():
    """A fresh EXISTS watch must never be paired with a cached image that
    predates changes the new instance will not report."""
    cloud, service = make_service(seed=5, client_cache_entries=32)
    client = service.connect()
    client.create("/node", b"payload")
    client.get_data("/node")                  # admit the (path, DATA) entry
    hits_before = client._cache.stats()["hits"]
    events = []
    assert client.exists("/node", watch=events.append) is not None
    assert client._cache.stats()["hits"] == hits_before  # storage read
    # The watch is live: a delete reports exactly once.
    client.delete("/node")
    cloud.run(until=cloud.now + 5_000)
    assert len(events) == 1


def test_exists_cached_entry_invalidated_by_own_write_and_foreign_write():
    cloud, service = make_service(seed=5, client_cache_entries=32)
    a, b = service.connect(), service.connect()
    a.create("/node", b"v1")
    assert a.exists("/node").data_length == 2
    # Read-your-writes through the cache: own set_data invalidates.
    a.set_data("/node", b"longer-value")
    assert a.exists("/node").data_length == len(b"longer-value")
    # Foreign write: the guarding DATA watch invalidates the entry.
    invalidations_before = a._cache.stats()["invalidations"]
    b.set_data("/node", b"x")
    cloud.run(until=cloud.now + 5_000)
    assert a._cache.stats()["invalidations"] > invalidations_before
    assert a.exists("/node").data_length == 1


def test_exists_registers_nothing_with_cache_off(cloud, service):
    """The default (cache-off) deployment keeps the historical exists()
    behaviour: a pure user-store stat, no watch-table traffic."""
    client = service.connect()
    client.create("/node", b"x")
    assert client.exists("/node") is not None
    assert client.exists("/missing") is None
    watch_item = service.system_store.table("fk-system-watches").raw("/node")
    assert not (watch_item or {}).get("inst")


# ---------------------------------------------------------------- watch decorators
def test_datawatch_observes_lifecycle(cloud, service):
    writer, watcher = service.connect(), service.connect()
    writer.create("/cfg", b"v0")
    seen = []
    handle = watcher.DataWatch("/cfg", lambda data, stat: seen.append(data))
    assert seen == [b"v0"]                    # immediate initial call
    writer.set_data("/cfg", b"v1")
    cloud.run(until=cloud.now + 5_000)
    writer.delete("/cfg")
    cloud.run(until=cloud.now + 5_000)
    writer.create("/cfg", b"v2")
    cloud.run(until=cloud.now + 5_000)
    assert seen == [b"v0", b"v1", None, b"v2"]
    assert handle.deliveries == 3
    handle.stop()
    writer.set_data("/cfg", b"v3")
    cloud.run(until=cloud.now + 5_000)
    assert seen[-1] == b"v2"                  # stopped: no further calls


def test_datawatch_missing_node_then_created(cloud, service):
    writer, watcher = service.connect(), service.connect()
    seen = []
    watcher.DataWatch("/later", lambda data, stat: seen.append(data))
    assert seen == [None]
    writer.create("/later", b"born")
    cloud.run(until=cloud.now + 5_000)
    assert seen == [None, b"born"]


def test_datawatch_stops_on_false_return(cloud, service):
    writer, watcher = service.connect(), service.connect()
    writer.create("/cfg", b"v0")
    calls = []

    @watcher.DataWatch("/cfg")
    def only_once(data, stat):
        calls.append(data)
        return False

    writer.set_data("/cfg", b"v1")
    cloud.run(until=cloud.now + 5_000)
    assert calls == [b"v0"]


def test_childrenwatch_observes_membership(cloud, service):
    writer, watcher = service.connect(), service.connect()
    writer.create("/grp", b"")
    seen = []
    watcher.ChildrenWatch("/grp", seen.append)
    writer.create("/grp/a", b"")
    cloud.run(until=cloud.now + 5_000)
    writer.create("/grp/b", b"")
    cloud.run(until=cloud.now + 5_000)
    writer.delete("/grp/a")
    cloud.run(until=cloud.now + 5_000)
    assert seen == [[], ["a"], ["a", "b"], ["b"]]


def test_childrenwatch_send_event_and_death_on_delete(cloud, service):
    writer, watcher = service.connect(), service.connect()
    writer.create("/grp", b"")
    seen = []
    handle = watcher.ChildrenWatch(
        "/grp", lambda children, event: seen.append((children, event)),
        send_event=True)
    assert seen == [([], None)]               # initial call carries no event
    writer.create("/grp/a", b"")
    cloud.run(until=cloud.now + 5_000)
    assert seen[-1][0] == ["a"]
    assert seen[-1][1] is not None and seen[-1][1].path == "/grp"
    writer.delete("/grp/a")
    cloud.run(until=cloud.now + 5_000)
    writer.delete("/grp")
    cloud.run(until=cloud.now + 5_000)
    assert not handle.active                  # watch died with the node


def test_childrenwatch_requires_existing_node(cloud, service):
    from repro.faaskeeper import NoNodeError
    watcher = service.connect()
    with pytest.raises(NoNodeError):
        watcher.ChildrenWatch("/nowhere", lambda children: None)


# ---------------------------------------------------------------- re-arm race
@pytest.mark.parametrize("shards", [1, 4])
def test_datawatch_rearm_race_under_coalesced_burst(shards):
    """Satellite: a coalesced write burst under ack_policy=on_commit must
    not lose a change between a delivery and the re-arm — the decorator
    registers before it re-reads, so the final value always lands.

    Faults pinned off: a fault-delayed re-arm registration can slip past
    the final fan-out's watch query, after which the one-shot contract
    only promises the (possibly stale, Z4-consistent) re-read — the
    exact-final-delivery property asserted here is a fault-free-timing
    guarantee, like the fingerprint gates."""
    cloud, service = make_service(seed=11, leader_shards=shards,
                                  distributor_enabled=True,
                                  ack_policy="on_commit",
                                  storage_faults=False)
    writer, watcher = service.connect(), service.connect()
    writer.create("/cfg", b"v0000")
    cloud.run(until=cloud.now + 10_000)       # let the create replicate

    seen = []
    handle = watcher.DataWatch("/cfg", lambda data, stat: seen.append(data))
    assert seen and seen[0] == b"v0000"

    burst = 30
    futures = [writer.set_data_async("/cfg", f"v{i:04d}".encode())
               for i in range(1, burst + 1)]
    for future in futures:
        future.wait()
    cloud.run(until=cloud.now + 120_000)      # drain distributor + watches

    # The final write is observed even though coalescing may have folded
    # arbitrarily many intermediate values into single notifications.
    assert seen[-1] == b"v%04d" % burst
    # Re-reads are monotone: the watcher never observes time running
    # backwards (per-path writes land in commit order).
    versions = [int(value[1:]) for value in seen if value is not None]
    assert versions == sorted(versions)
    # The burst collapsed into at least one delivery; each one re-armed.
    assert 1 <= handle.deliveries <= burst
    assert handle.active


@pytest.mark.parametrize("shards", [1, 4])
def test_childrenwatch_rearm_race_under_burst(shards):
    cloud, service = make_service(seed=13, leader_shards=shards,
                                  distributor_enabled=True,
                                  ack_policy="on_commit")
    writer, watcher = service.connect(), service.connect()
    writer.create("/grp", b"")
    cloud.run(until=cloud.now + 10_000)
    seen = []
    watcher.ChildrenWatch("/grp", seen.append)

    futures = [writer.create_async(f"/grp/kid-{i}", b"") for i in range(8)]
    futures += [writer.delete_async("/grp/kid-0")]
    for future in futures:
        future.wait()
    cloud.run(until=cloud.now + 120_000)
    assert seen[-1] == [f"kid-{i}" for i in range(1, 8)]
