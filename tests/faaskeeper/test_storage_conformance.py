"""Shared conformance suite for every registered user-store backend.

Registration is the contract: each scheme in ``registered_schemes()`` —
including third-party backends added later — must pass the same CRUD,
metadata-routing, entry-sizing, multi-region and inspection-hook
semantics.  ``mem://`` is the reference implementation the others are
diffed against.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.context import OpContext
from repro.faaskeeper import FaaSKeeperConfig
from repro.faaskeeper.layout import USER_BUCKET, USER_TABLE
from repro.faaskeeper.userstore import (
    BACKEND_REGISTRY,
    HybridBackend,
    MemBackend,
    UserStore,
    backend_for,
    make_user_store,
    parse_store_uri,
    register_backend,
    registered_schemes,
)

TWO_REGIONS = ["us-east-1", "eu-west-1"]
SCHEMES = registered_schemes()


def make_store(scheme, regions=TWO_REGIONS, seed=7, **config_kwargs):
    cloud = Cloud.aws(seed=seed)
    config = FaaSKeeperConfig(user_store=scheme, regions=list(regions),
                              **config_kwargs)
    return cloud, make_user_store(cloud, config)


def image(data=b"payload", **meta):
    base = {"version": 1, "cversion": 0, "children": [], "data": data}
    base.update(meta)
    return base


# ------------------------------------------------------------------ registry
def test_registry_covers_the_papers_backends_plus_mem():
    assert SCHEMES == ["dynamodb", "hybrid", "mem", "redis", "s3"]


def test_bare_kind_and_uri_resolve_to_the_same_backend():
    assert parse_store_uri("s3") == ("s3", {})
    assert parse_store_uri("hybrid://?threshold_kb=8") == \
        ("hybrid", {"threshold_kb": "8"})
    assert backend_for("dynamo") is backend_for("dynamodb")


def test_unknown_scheme_lists_registered_ones():
    with pytest.raises(ValueError, match="registered"):
        backend_for("cassandra")


def test_uri_host_or_path_parts_are_rejected():
    with pytest.raises(ValueError, match="host/path"):
        parse_store_uri("s3://bucket/prefix")


def test_unknown_uri_params_are_rejected():
    cloud = Cloud.aws(seed=1)
    config = FaaSKeeperConfig(user_store="s3")
    config.user_store = "s3://?nope=1"
    with pytest.raises(ValueError, match="no parameters"):
        make_user_store(cloud, config)


def test_hybrid_uri_threshold_param_overrides_config():
    cloud, store = make_store("hybrid://?threshold_kb=8.0",
                              hybrid_threshold_kb=4.0)
    assert isinstance(store, HybridBackend)
    assert store.threshold_kb == 8.0


def test_double_registration_of_a_scheme_is_an_error():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("mem")(type("Imposter", (UserStore,), {}))
    assert BACKEND_REGISTRY["mem"] is MemBackend  # registry unharmed


# --------------------------------------------------------------------- CRUD
@pytest.mark.parametrize("scheme", SCHEMES)
def test_crud_roundtrip(scheme):
    cloud, store = make_store(scheme)
    ctx = OpContext(region=TWO_REGIONS[0])

    def flow():
        yield from store.write_node(ctx, TWO_REGIONS[0], "/n", image())
        first = yield from store.read_node(ctx, TWO_REGIONS[0], "/n")
        yield from store.write_node(
            ctx, TWO_REGIONS[0], "/n", image(data=b"updated", version=2))
        second = yield from store.read_node(ctx, TWO_REGIONS[0], "/n")
        yield from store.delete_node(ctx, TWO_REGIONS[0], "/n")
        third = yield from store.read_node(ctx, TWO_REGIONS[0], "/n")
        return first, second, third

    first, second, third = cloud.run_process(flow())
    assert first == image()
    assert second == image(data=b"updated", version=2)
    assert third is None
    assert store.peek(TWO_REGIONS[0], "/n") is None


@pytest.mark.parametrize("scheme", SCHEMES)
def test_read_returns_a_copy(scheme):
    cloud, store = make_store(scheme)
    ctx = OpContext(region=TWO_REGIONS[0])

    def flow():
        yield from store.write_node(ctx, TWO_REGIONS[0], "/n",
                                    image(children=["a"]))
        got = yield from store.read_node(ctx, TWO_REGIONS[0], "/n")
        got["children"].append("intruder")
        return (yield from store.read_node(ctx, TWO_REGIONS[0], "/n"))

    assert cloud.run_process(flow())["children"] == ["a"]


# ----------------------------------------------------------------- metadata
@pytest.mark.parametrize("scheme", SCHEMES)
def test_update_metadata_preserves_data(scheme):
    """The leader's parent-node path: child list / cversion change while
    the node's data must survive untouched (covers the RedisBackend
    read-merge-write and the hybrid KV-only routing alike)."""
    cloud, store = make_store(scheme)
    ctx = OpContext(region=TWO_REGIONS[0])

    def flow():
        yield from store.write_node(ctx, TWO_REGIONS[0], "/p",
                                    image(data=b"keep-me"))
        meta = {"version": 1, "cversion": 3, "children": ["kid"],
                "data": b"STALE-MUST-BE-IGNORED"}
        yield from store.update_metadata(ctx, TWO_REGIONS[0], "/p", meta)
        return (yield from store.read_node(ctx, TWO_REGIONS[0], "/p"))

    after = cloud.run_process(flow())
    assert after["data"] == b"keep-me"
    assert after["cversion"] == 3
    assert after["children"] == ["kid"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_update_metadata_in_every_region(scheme):
    cloud, store = make_store(scheme)
    for region in TWO_REGIONS:
        ctx = OpContext(region=region)

        def flow(region=region, ctx=ctx):
            yield from store.write_node(ctx, region, "/r", image())
            yield from store.update_metadata(
                ctx, region, "/r", {"version": 1, "cversion": 9,
                                    "children": []})
            return (yield from store.read_node(ctx, region, "/r"))

        after = cloud.run_process(flow())
        assert after["data"] == b"payload", f"data lost in {region}"
        assert after["cversion"] == 9, f"metadata not routed in {region}"


# -------------------------------------------------------------- entry sizing
@pytest.mark.parametrize("scheme", SCHEMES)
def test_image_size_accounting_is_backend_independent(scheme):
    _cloud, store = make_store(scheme)
    small = store.image_size_kb(image(data=b""))
    large = store.image_size_kb(image(data=b"x" * 10_240))
    assert large > small
    assert large - small == pytest.approx(10.0, rel=0.05)


# --------------------------------------------------------------- multi-region
@pytest.mark.parametrize("scheme", SCHEMES)
def test_regions_are_isolated(scheme):
    cloud, store = make_store(scheme)
    r0, r1 = TWO_REGIONS
    ctx = OpContext(region=r0)

    def flow():
        yield from store.write_node(ctx, r0, "/only-r0", image())
        in_r0 = yield from store.read_node(ctx, r0, "/only-r0")
        in_r1 = yield from store.read_node(ctx, r1, "/only-r0")
        return in_r0, in_r1

    in_r0, in_r1 = cloud.run_process(flow())
    assert in_r0 == image()
    assert in_r1 is None, f"{scheme}: write to {r0} leaked into {r1}"


@pytest.mark.parametrize("scheme", SCHEMES)
def test_wipe_region_destroys_only_that_replica(scheme):
    cloud, store = make_store(scheme)
    r0, r1 = TWO_REGIONS

    def flow():
        for region in (r0, r1):
            yield from store.write_node(
                OpContext(region=region), region, "/n", image())
        return None

    cloud.run_process(flow())
    store.wipe_region(r0)
    assert store.peek(r0, "/n") is None
    assert store.peek(r1, "/n") is not None, \
        f"{scheme}: wiping {r0} destroyed {r1} too"


# ---------------------------------------------------------- inspection hooks
@pytest.mark.parametrize("scheme", SCHEMES)
def test_peek_matches_read_without_billing(scheme):
    cloud, store = make_store(scheme)
    region = TWO_REGIONS[0]
    ctx = OpContext(region=region)
    cloud.run_process(store.write_node(ctx, region, "/n", image()))
    t0 = cloud.now
    peeked = store.peek(region, "/n")
    assert cloud.now == t0  # zero latency
    read = cloud.run_process(store.read_node(ctx, region, "/n"))
    assert peeked == read


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fault_points_are_armable(scheme):
    _cloud, store = make_store(scheme)
    points = store.fault_points()
    assert points, f"{scheme}: no fault points to arm"
    for point in points:
        assert hasattr(point, "faults")
        assert getattr(point, "service_label")
        assert getattr(point, "region")


def test_ttl_capability_flags():
    caps = {s: backend_for(s).supports_ttl for s in SCHEMES}
    assert caps == {"dynamodb": True, "hybrid": True, "mem": True,
                    "redis": False, "s3": False}


# ------------------------------------------------------------ hybrid routing
def test_hybrid_routes_by_threshold_across_regions():
    cloud, store = make_store("hybrid://?threshold_kb=2.0")
    for region in TWO_REGIONS:
        ctx = OpContext(region=region)
        small = image(data=b"x" * 1024)
        big = image(data=b"x" * 4096)

        def flow(region=region, ctx=ctx, small=small, big=big):
            yield from store.write_node(ctx, region, "/small", small)
            yield from store.write_node(ctx, region, "/big", big)
            return None

        cloud.run_process(flow())
        kv_small = cloud.kv("dynamodb:user", region=region).table(
            USER_TABLE).raw("/small")
        kv_big = cloud.kv("dynamodb:user", region=region).table(
            USER_TABLE).raw("/big")
        s3 = cloud.objectstore("s3", region=region)
        assert kv_small["data"] == b"x" * 1024
        assert s3.raw(USER_BUCKET, "/small") is None
        assert kv_big["data_in_s3"] is True and "data" not in kv_big
        assert s3.raw(USER_BUCKET, "/big") == b"x" * 4096


def test_hybrid_metadata_update_leaves_spilled_data_in_s3():
    """A parent-update on a large node must stay KV-only (the layout's
    cheap-parent-update advantage) and keep routing intact."""
    cloud, store = make_store("hybrid://?threshold_kb=2.0")
    region = TWO_REGIONS[0]
    ctx = OpContext(region=region)
    big = image(data=b"x" * 4096)
    cloud.run_process(store.write_node(ctx, region, "/big", big))
    s3 = cloud.objectstore("s3", region=region)
    writes_before = s3._write_count if hasattr(s3, "_write_count") else None
    cloud.run_process(store.update_metadata(
        ctx, region, "/big", {"version": 2, "cversion": 1, "children": []}))
    after = cloud.run_process(store.read_node(ctx, region, "/big"))
    assert after["data"] == b"x" * 4096
    assert after["version"] == 2
    kv_item = cloud.kv("dynamodb:user", region=region).table(
        USER_TABLE).raw("/big")
    assert kv_item["data_in_s3"] is True and "data" not in kv_item
    if writes_before is not None:
        assert s3._write_count == writes_before  # data was not rewritten
