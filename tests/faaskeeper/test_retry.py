"""The self-healing storage layer: retry policy, backoff, idempotent
replay, circuit breaker, and the session-state consequences."""

import random

import pytest

from repro.cloud import Cloud, ListAppend
from repro.cloud.context import OpContext
from repro.cloud.errors import ConditionFailed, StorageUnavailable
from repro.cloud.expressions import Attr
from repro.cloud.faults import FaultInjector
from repro.faaskeeper.layout import SYSTEM_SESSIONS
from repro.faaskeeper.metrics import MetricsRegistry
from repro.faaskeeper.model import KeeperState
from repro.faaskeeper.retry import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RetryingKeyValueStore,
    RetryPolicy,
)

from .conftest import make_service


class ScriptedInjector(FaultInjector):
    """Deterministic fault script: fire the listed kinds in order, then
    behave cleanly.  Bypasses the RNG draw so tests are exact."""

    def __init__(self, env, kinds):
        super().__init__(env, rng=random.Random(0), rate=1.0)
        self._script = list(kinds)

    def draw(self, op, mutating):
        if not self._script:
            return None
        kind = self._script.pop(0)
        if kind is not None:
            self.injected[kind] += 1
        return kind


class FakeEnv:
    def __init__(self):
        self.now = 0.0


def make_wrapped(policy=None, threshold=8, cooldown=10_000.0, seed=11,
                 probe_interval=0.0):
    cloud = Cloud.aws(seed=seed)
    kv = cloud.kv("dynamodb:test")
    kv.create_table("t")
    wrapped = RetryingKeyValueStore(
        kv, cloud.env, lambda: cloud.rng.stream("test-retry"),
        policy or RetryPolicy(), threshold, cooldown, MetricsRegistry(),
        label="system", breaker_probe_interval_ms=probe_interval)
    return cloud, kv, wrapped


# -------------------------------------------------------------- RetryPolicy
def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_ms=10.0, cap_ms=100.0, jitter=0.0)
    waits = [policy.backoff_ms(n, u=0.5) for n in (1, 2, 3, 4, 5, 6)]
    assert waits == [10.0, 20.0, 40.0, 80.0, 100.0, 100.0]


def test_backoff_jitter_bounds():
    policy = RetryPolicy(base_ms=100.0, cap_ms=1e9, jitter=0.5)
    assert policy.backoff_ms(1, u=0.0) == pytest.approx(75.0)
    assert policy.backoff_ms(1, u=1.0) == pytest.approx(125.0)


# ----------------------------------------------------------- CircuitBreaker
def test_breaker_trips_after_threshold_and_recovers():
    env = FakeEnv()
    transitions = []
    breaker = CircuitBreaker(env, threshold=3, cooldown_ms=100.0,
                             on_transition=transitions.append)
    assert breaker.state == BREAKER_CLOSED
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()                # shedding
    env.now = 99.0
    assert not breaker.allow()                # still cooling down
    env.now = 100.0
    assert breaker.allow()                    # the half-open probe
    assert breaker.state == BREAKER_HALF_OPEN
    assert not breaker.allow()                # only one probe in flight
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED and breaker.allow()
    assert transitions == [BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED]


def test_breaker_failed_probe_reopens_with_fresh_cooldown():
    env = FakeEnv()
    breaker = CircuitBreaker(env, threshold=1, cooldown_ms=100.0)
    breaker.record_failure()
    env.now = 100.0
    assert breaker.allow()
    breaker.record_failure()                  # probe failed
    assert breaker.state == BREAKER_OPEN
    assert breaker.opened_at == 100.0         # cooldown restarted
    assert not breaker.allow()


def test_success_resets_the_consecutive_failure_count():
    env = FakeEnv()
    breaker = CircuitBreaker(env, threshold=3, cooldown_ms=100.0)
    for _ in range(2):
        breaker.record_failure()
    breaker.record_success()
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED    # never 3 *consecutive*


def test_probe_interval_rate_limits_half_open_probes():
    """During a brown-out (every probe fails) the cooldown alone lets the
    breaker hammer the sick endpoint once per cooldown; the probe interval
    must impose the slower of the two clocks."""
    env = FakeEnv()
    breaker = CircuitBreaker(env, threshold=1, cooldown_ms=100.0,
                             probe_interval_ms=500.0)
    breaker.record_failure()
    env.now = 100.0
    assert breaker.allow()                    # first probe rides cooldown
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.probes == 1 and breaker.last_probe_at == 100.0
    breaker.record_failure()                  # probe failed -> OPEN again
    assert breaker.state == BREAKER_OPEN

    env.now = 200.0                           # cooldown elapsed...
    assert not breaker.allow()                # ...but probe not yet due
    assert breaker.state == BREAKER_OPEN and breaker.probes == 1
    env.now = 599.0
    assert not breaker.allow()
    env.now = 600.0                           # 100.0 + interval
    assert breaker.allow()
    assert breaker.probes == 2


def test_probe_interval_spaces_probes_while_half_open():
    env = FakeEnv()
    breaker = CircuitBreaker(env, threshold=1, cooldown_ms=10.0,
                             probe_interval_ms=300.0)
    breaker.record_failure()
    env.now = 10.0
    assert breaker.allow()
    breaker.record_success()                  # probe succeeded: CLOSED
    assert breaker.state == BREAKER_CLOSED

    breaker.record_failure()                  # relapse at t=10
    env.now = 30.0                            # cooldown elapsed at t=20
    assert not breaker.allow()                # but last probe was t=10
    env.now = 310.0
    assert breaker.allow() and breaker.probes == 2


def test_probe_interval_zero_keeps_legacy_cadence():
    """The default (0) must reproduce the historical one-probe-per-
    cooldown behavior exactly — the knob is opt-in."""
    env = FakeEnv()
    breaker = CircuitBreaker(env, threshold=1, cooldown_ms=100.0)
    breaker.record_failure()
    for cycle in range(1, 4):
        env.now = cycle * 100.0
        assert breaker.allow()                # every cooldown admits
        breaker.record_failure()
    assert breaker.probes == 3


# ------------------------------------------------------------- retry engine
def test_transient_faults_are_absorbed():
    cloud, kv, wrapped = make_wrapped()
    kv.faults = ScriptedInjector(cloud.env, ["throttle", "conn_reset"])
    ctx = OpContext()

    def flow():
        yield from wrapped.put_item(ctx, "t", "k", {"a": 1})
        return (yield from wrapped.get_item(ctx, "t", "k"))

    assert cloud.run_process(flow()) == {"a": 1}
    retries = wrapped.retrier._retries
    assert retries.labels(store="system", op="put_item",
                          error="ThrottlingError").value == 1


def test_backoff_consumes_virtual_time_only_on_retries():
    policy = RetryPolicy(base_ms=10.0, cap_ms=100.0, jitter=0.0)
    cloud, kv, wrapped = make_wrapped(policy=policy)
    ctx = OpContext()
    cloud.run_process(wrapped.put_item(ctx, "t", "clean", {}))
    clean = cloud.now
    kv.faults = ScriptedInjector(cloud.env, ["throttle", "throttle"])
    t0 = cloud.now
    cloud.run_process(wrapped.put_item(ctx, "t", "flaky", {}))
    assert cloud.now - t0 >= clean + 10.0 + 20.0  # two backoffs waited


def test_partial_write_replays_instead_of_reapplying():
    """The ambiguous failure: the first attempt applied server-side and
    died after.  A blind retry would double-append; the idempotence token
    must make the replay return the recorded result."""
    cloud, kv, wrapped = make_wrapped()
    ctx = OpContext()
    cloud.run_process(wrapped.put_item(ctx, "t", "k", {"log": []}))
    kv.faults = ScriptedInjector(cloud.env, ["partial_write"])
    cloud.run_process(wrapped.update_item(
        ctx, "t", "k", [ListAppend("log", ["entry"])]))
    item = cloud.run_process(wrapped.get_item(ctx, "t", "k"))
    assert item["log"] == ["entry"]           # exactly once, not twice


def test_exhaustion_raises_storage_unavailable_with_cause():
    policy = RetryPolicy(max_attempts=3, base_ms=1.0, jitter=0.0)
    cloud, kv, wrapped = make_wrapped(policy=policy, threshold=100)
    kv.faults = ScriptedInjector(cloud.env, ["throttle"] * 10)
    with pytest.raises(StorageUnavailable, match="after 3 attempts"):
        cloud.run_process(wrapped.put_item(OpContext(), "t", "k", {}))
    assert wrapped.retrier._exhausted.labels(
        store="system", op="put_item").value == 1


def test_condition_failed_is_never_retried():
    cloud, kv, wrapped = make_wrapped()
    ctx = OpContext()
    cloud.run_process(wrapped.put_item(ctx, "t", "k", {"v": 1}))
    with pytest.raises(ConditionFailed):
        cloud.run_process(wrapped.put_item(
            ctx, "t", "k", {"v": 2}, condition=Attr("v") == 99))
    assert wrapped.retrier._retries.labels(
        store="system", op="put_item", error="ConditionFailed").value == 0


def test_open_breaker_sheds_without_touching_the_store():
    policy = RetryPolicy(max_attempts=2, base_ms=1.0, jitter=0.0)
    cloud, kv, wrapped = make_wrapped(policy=policy, threshold=2)
    kv.faults = ScriptedInjector(cloud.env, ["throttle"] * 100)
    with pytest.raises(StorageUnavailable):
        cloud.run_process(wrapped.put_item(OpContext(), "t", "k", {}))
    breaker = wrapped.retrier.breakers[kv.region]
    assert breaker.state == BREAKER_OPEN
    drawn_before = len(kv.faults._script)
    with pytest.raises(StorageUnavailable, match="circuit open"):
        cloud.run_process(wrapped.put_item(OpContext(), "t", "k2", {}))
    assert len(kv.faults._script) == drawn_before  # shed, not attempted


def test_disabled_policy_passes_errors_straight_through():
    from repro.cloud.errors import ThrottlingError

    policy = RetryPolicy(enabled=False)
    cloud, kv, wrapped = make_wrapped(policy=policy)
    kv.faults = ScriptedInjector(cloud.env, ["throttle"])
    with pytest.raises(ThrottlingError):
        cloud.run_process(wrapped.put_item(OpContext(), "t", "k", {}))


# ------------------------------------------------------- session-state arc
def test_breaker_open_suspends_sessions_then_eviction_loses_them():
    """Retry exhaustion under a persistent outage: SUSPENDED while the
    breaker sheds, LOST once the eviction close lands."""
    cloud, service = make_service(user_store="mem",
                                  storage_breaker_threshold=6)
    client = service.connect()
    cloud.run(until=cloud.now + 5_000)
    assert client.state == KeeperState.CONNECTED

    inner = service.system_store._inner
    inner.faults = ScriptedInjector(cloud.env, ["throttle"] * 1000)
    ctx = OpContext(region=service.config.primary_region)
    # 5 attempts fail (exhaustion), the next call's second failure is the
    # 6th consecutive: the breaker opens and suspends the session.
    for _ in range(2):
        with pytest.raises(StorageUnavailable):
            cloud.run_process(service.system_store.get_item(
                ctx, SYSTEM_SESSIONS, client.session_id))
    assert client.state == KeeperState.SUSPENDED
    assert not client.closed                   # suspended, not killed

    # The outage outlives the session: the eviction close is LOST.
    service.on_session_closed(client.session_id, evicted=True)
    assert client.state == KeeperState.LOST
    assert client.evicted


def test_breaker_recovery_heals_instead_of_evicting():
    cloud, service = make_service(user_store="mem",
                                  storage_breaker_threshold=6,
                                  storage_breaker_cooldown_ms=1_000.0)
    client = service.connect()
    cloud.run(until=cloud.now + 5_000)
    inner = service.system_store._inner
    inner.faults = ScriptedInjector(cloud.env, ["throttle"] * 10)
    ctx = OpContext(region=service.config.primary_region)
    for _ in range(2):
        with pytest.raises(StorageUnavailable):
            cloud.run_process(service.system_store.get_item(
                ctx, SYSTEM_SESSIONS, client.session_id))
    assert client.state == KeeperState.SUSPENDED

    # Outage ends; after the cooldown the half-open probe closes the
    # breaker and a successful client round trip heals the session.
    inner.faults = None
    cloud.run(until=cloud.now + 2_000)
    client.create("/healed", b"x")
    assert client.state == KeeperState.CONNECTED
    assert service.system_store.retrier.breakers[
        inner.region].state == BREAKER_CLOSED


# ---------------------------------------------------------------- brown-out
def _brownout_probe_count(probe_interval, seed=23):
    """Seeded brown-out: a store that throttles every request for 5s of
    virtual time while a caller keeps retrying.  Returns (probes counted
    by the breaker, probes counted by the metric)."""
    policy = RetryPolicy(max_attempts=2, base_ms=1.0, jitter=0.0)
    cloud, kv, wrapped = make_wrapped(policy=policy, threshold=2,
                                      cooldown=50.0, seed=seed,
                                      probe_interval=probe_interval)
    kv.faults = ScriptedInjector(cloud.env, ["throttle"] * 10_000)
    deadline = cloud.now + 5_000.0
    while cloud.now < deadline:
        with pytest.raises(StorageUnavailable):
            cloud.run_process(wrapped.put_item(OpContext(), "t", "k", {}))
        cloud.run(until=cloud.now + 10.0)     # caller retry cadence
    breaker = wrapped.retrier.breakers[kv.region]
    metric = wrapped.retrier._breaker_probes.labels(
        store="system", region=kv.region).value
    return breaker.probes, metric


def test_brownout_probe_rate_is_bounded_by_the_interval():
    legacy_probes, legacy_metric = _brownout_probe_count(0.0)
    capped_probes, capped_metric = _brownout_probe_count(1_000.0)
    # Metric and breaker agree on what was admitted.
    assert legacy_metric == legacy_probes > 0
    assert capped_metric == capped_probes > 0
    # Legacy probes once per ~50ms cooldown; the interval slows that to
    # once per second — a hard upper bound over the 5s brown-out.
    assert capped_probes < legacy_probes
    assert capped_probes <= 5_000.0 / 1_000.0 + 1
    assert legacy_probes >= 10 * capped_probes


def test_service_probe_interval_reaches_the_system_breaker():
    cloud, service = make_service(
        user_store="mem", storage_breaker_threshold=2,
        storage_breaker_cooldown_ms=50.0,
        storage_breaker_probe_interval_ms=750.0)
    inner = service.system_store._inner
    inner.faults = ScriptedInjector(cloud.env, ["throttle"] * 1000)
    ctx = OpContext(region=service.config.primary_region)
    for _ in range(2):
        with pytest.raises(StorageUnavailable):
            cloud.run_process(service.system_store.get_item(
                ctx, SYSTEM_SESSIONS, "s"))
    breaker = service.system_store.retrier.breakers[inner.region]
    assert breaker.probe_interval_ms == 750.0
    assert breaker.state == BREAKER_OPEN
    # After the cooldown one probe is admitted; it fails, and the counter
    # lands in the service-wide metrics snapshot.
    cloud.run(until=cloud.now + 100.0)
    with pytest.raises(StorageUnavailable):
        cloud.run_process(service.system_store.get_item(
            ctx, SYSTEM_SESSIONS, "s"))
    snap = service.metrics_snapshot()["fk_storage_breaker_probes_total"]
    assert sum(snap["values"].values()) >= 1


# ------------------------------------------------------------- fingerprint
def test_retry_layer_is_invisible_without_faults():
    """Acceptance gate: faults off + retry on (the default) must not move
    the write fingerprint by a single event — same timings, same costs as
    a deployment with the whole layer disabled."""

    def run(**cfg):
        # storage_faults pinned off: this gate is *about* the no-fault
        # path, and the retry-off arm cannot survive an injected fault.
        cloud, service = make_service(seed=97, user_store="hybrid",
                                      storage_faults=False, **cfg)
        c = service.connect()
        trace = []
        for i in range(12):
            c.create(f"/n{i}", b"x" * (i * 512))
            trace.append(cloud.now)
        for i in range(12):
            c.set_data(f"/n{i}", b"y" * 256)
            trace.append(cloud.now)
        trace.append(cloud.meter.total)
        return trace

    assert run(storage_retry_enabled=True) == run(storage_retry_enabled=False)
