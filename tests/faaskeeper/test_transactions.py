"""Atomic multi()/transaction() semantics (ZooKeeper's multi, Section 3.5).

Covers all-or-nothing commits, per-op typed results and errors, rollback
on mid-batch failures, duplicate-delivery idempotence, behaviour under
leader_shards in {1, 4} (including cross-shard transactions through the
coordinator shard), exactly-once watch delivery per committed multi, and
the coalescing interplay (a multi supersedes earlier pending writes).
"""

import pytest

from repro.faaskeeper import (
    BadArgumentsError,
    BadVersionError,
    CheckOp,
    CheckResult,
    CreateOp,
    DeleteOp,
    NodeExistsError,
    RolledBackError,
    SetDataOp,
    TransactionFailedError,
    WriteResult,
)
from repro.faaskeeper.layout import shard_of_path
from .conftest import make_service


def _cross_shard_pair(num_shards):
    names = [f"t{i}" for i in range(64)]
    first = names[0]
    for other in names[1:]:
        if shard_of_path(f"/{other}", num_shards) != shard_of_path(f"/{first}", num_shards):
            return first, other
    raise AssertionError("no cross-shard pair found")  # pragma: no cover


# ------------------------------------------------------------ basic commits
@pytest.mark.parametrize("shards", [1, 4])
def test_multi_commits_atomically(shards):
    cloud, service = make_service(seed=101, leader_shards=shards)
    c = service.connect()
    c.create("/app", b"")
    c.create("/app/cfg", b"v1")
    c.create("/staging", b"tmp")
    results = c.multi([
        CheckOp("/app/cfg", version=0),
        SetDataOp("/app/cfg", b"v2"),
        CreateOp("/app/new", b"n"),
        DeleteOp("/staging"),
    ])
    assert results[0] == CheckResult(path="/app/cfg", version=0)
    assert isinstance(results[1], WriteResult)
    assert results[1].version == 1 and results[1].txid > 0
    assert results[2] == "/app/new"
    assert results[3] is None
    assert c.get_data("/app/cfg")[0] == b"v2"
    assert c.get_data("/app/new")[0] == b"n"
    assert c.exists("/staging") is None
    # all member writes share one transaction id
    _, stat_cfg = c.get_data("/app/cfg")
    _, stat_new = c.get_data("/app/new")
    assert stat_cfg.modified_tx == stat_new.created_tx == results[1].txid


def test_multi_members_see_earlier_members(client):
    """Later ops validate against earlier ops' staged effects (ZooKeeper
    multi semantics): create a node and write to it in the same batch."""
    results = client.multi([
        CreateOp("/chain", b"first"),
        SetDataOp("/chain", b"second"),
        CreateOp("/chain/leaf", b"x"),
    ])
    assert results[1].version == 1
    data, stat = client.get_data("/chain")
    assert data == b"second" and stat.version == 1
    assert client.get_children("/chain") == ["leaf"]


def test_multi_same_path_watch_fires_once(service):
    cloud = service.cloud
    writer = service.connect()
    watcher = service.connect()
    writer.create("/w", b"")
    writer.create("/w/x", b"v0")
    hits = []
    watcher.get_data("/w/x", watch=lambda ev: hits.append(ev))
    results = writer.multi([
        SetDataOp("/w/x", b"v1"),
        SetDataOp("/w/x", b"v2"),
    ])
    cloud.run(until=cloud.now + 20_000)
    assert len(hits) == 1  # two member writes, one node, one notification
    assert hits[0].txid == results[0].txid
    for region in service.config.regions:
        assert service.epoch_ledger.snapshot(region) == []


@pytest.mark.parametrize("shards", [1, 4])
def test_multi_watches_fire_once_per_path(shards):
    cloud, service = make_service(seed=102, leader_shards=shards)
    writer = service.connect()
    watcher = service.connect()
    for name in ("a", "b"):
        writer.create(f"/{name}", b"")
        writer.create(f"/{name}/x", b"v0")
    hits = []
    watcher.get_data("/a/x", watch=lambda ev: hits.append(ev))
    watcher.get_data("/b/x", watch=lambda ev: hits.append(ev))
    results = writer.multi([
        SetDataOp("/a/x", b"w"),
        SetDataOp("/b/x", b"w"),
    ])
    cloud.run(until=cloud.now + 30_000)
    assert sorted(h.path for h in hits) == ["/a/x", "/b/x"]
    assert {h.txid for h in hits} == {results[0].txid}  # the batch txid
    for region in service.config.regions:
        assert service.epoch_ledger.snapshot(region) == []


# ------------------------------------------------------------ rollback
@pytest.mark.parametrize("shards", [1, 4])
def test_multi_rolls_back_on_mid_batch_bad_version(shards):
    cloud, service = make_service(seed=103, leader_shards=shards)
    c = service.connect()
    c.create("/a", b"orig")
    c.create("/b", b"keep")
    with pytest.raises(TransactionFailedError) as excinfo:
        c.multi([
            SetDataOp("/a", b"changed"),
            SetDataOp("/b", b"bumped", version=7),   # stale version: culprit
            CreateOp("/c", b"never"),
        ])
    results = excinfo.value.results
    assert isinstance(results[0], RolledBackError)
    assert isinstance(results[1], BadVersionError)
    assert isinstance(results[2], RolledBackError)
    # nothing committed: versions, data and the child list are untouched
    data_a, stat_a = c.get_data("/a")
    assert data_a == b"orig" and stat_a.version == 0
    assert c.get_data("/b")[0] == b"keep"
    assert c.exists("/c") is None
    raw = service.system_store.table("fk-system-nodes").raw("/a")
    assert raw["version"] == 0 and raw["transactions"] == []


def test_multi_rolls_back_on_node_exists(client):
    client.create("/dup", b"")
    with pytest.raises(TransactionFailedError) as excinfo:
        client.multi([CreateOp("/fresh", b""), CreateOp("/dup", b"")])
    assert isinstance(excinfo.value.results[0], RolledBackError)
    assert isinstance(excinfo.value.results[1], NodeExistsError)
    assert client.exists("/fresh") is None  # rolled back with the batch


def test_transaction_builder_and_context_manager(client):
    client.create("/cfg", b"v1")
    # kazoo-style: commit() returns per-op results, failures embedded
    t = client.transaction()
    t.check("/cfg", version=0).set_data("/cfg", b"v2").create("/cfg2", b"")
    results = t.commit()
    assert results[0] == CheckResult(path="/cfg", version=0)
    assert results[1].version == 1
    assert results[2] == "/cfg2"
    # failed commit: embedded exceptions, nothing raised, nothing applied
    t = client.transaction()
    results = t.check("/cfg", version=0).set_data("/cfg", b"v3").commit()
    assert isinstance(results[0], BadVersionError)
    assert isinstance(results[1], RolledBackError)
    assert client.get_data("/cfg")[0] == b"v2"
    # context manager commits on clean exit
    with client.transaction() as txn:
        txn.create("/cm", b"x")
    assert client.get_data("/cm")[0] == b"x"


def test_empty_and_malformed_multi_rejected(client):
    with pytest.raises(BadArgumentsError):
        client.multi([])
    with pytest.raises(BadArgumentsError):
        client.multi(["not an operation"])
    with pytest.raises(BadArgumentsError):
        client.multi([CreateOp("relative/path")])


def test_check_only_multi(client):
    """A guard-only multi verifies under locks and answers directly."""
    client.create("/g", b"")
    client.set_data("/g", b"x")
    results = client.multi([CheckOp("/g", version=1), CheckOp("/g")])
    assert results == [CheckResult(path="/g", version=1),
                       CheckResult(path="/g", version=1)]
    with pytest.raises(TransactionFailedError):
        client.multi([CheckOp("/g", version=0)])
    with pytest.raises(TransactionFailedError):
        client.multi([CheckOp("/missing")])


# ------------------------------------------------------------ sequencing
def test_multi_sequence_and_ephemeral(service):
    cloud = service.cloud
    owner = service.connect()
    observer = service.connect()
    owner.create("/q", b"")
    results = owner.multi([
        CreateOp("/q/task-", sequence=True),
        CreateOp("/q/task-", sequence=True),
        CreateOp("/q/worker", ephemeral=True),
    ])
    assert results[0] == "/q/task-0000000000"
    assert results[1] == "/q/task-0000000001"
    assert observer.exists("/q/worker").ephemeral_owner == owner.session_id
    owner.close()
    cloud.run(until=cloud.now + 20_000)
    assert observer.exists("/q/worker") is None  # ephemeral cleaned up
    assert observer.get_children("/q") == ["task-0000000000", "task-0000000001"]


def test_multi_create_then_delete_same_path(client):
    client.create("/p", b"")
    client.multi([CreateOp("/p/tmp", b"x"), DeleteOp("/p/tmp")])
    assert client.exists("/p/tmp") is None
    assert client.get_children("/p") == []


# ------------------------------------------------------------ sharding
def test_cross_shard_multi_commits_atomically():
    cloud, service = make_service(seed=104, leader_shards=4)
    a, b = _cross_shard_pair(4)
    c = service.connect()
    c.create(f"/{a}", b"")
    c.create(f"/{b}", b"")
    c.create(f"/{a}/x", b"v0")
    c.create(f"/{b}/x", b"v0")
    assert service.shard_of(f"/{a}/x") != service.shard_of(f"/{b}/x")
    results = c.multi([
        SetDataOp(f"/{a}/x", b"both"),
        SetDataOp(f"/{b}/x", b"both"),
    ])
    assert results[0].txid == results[1].txid
    assert c.get_data(f"/{a}/x")[0] == b"both"
    assert c.get_data(f"/{b}/x")[0] == b"both"
    cloud.run(until=cloud.now + 30_000)
    for path in (f"/{a}/x", f"/{b}/x"):
        raw = service.system_store.table("fk-system-nodes").raw(path)
        assert raw["transactions"] == []
    # interleaves correctly with ordinary single-op traffic afterwards
    assert c.set_data(f"/{a}/x", b"after").version == 2
    assert service.shard_hint_mismatches == 0


def test_cross_shard_multi_interleaved_with_writes():
    """Multis and singles to the same paths from one session stay in
    request order across shards (fences + per-path pending gates)."""
    cloud, service = make_service(seed=105, leader_shards=4,
                                  leader_coalesce=False)
    a, b = _cross_shard_pair(4)
    c = service.connect()
    c.create(f"/{a}", b"")
    c.create(f"/{b}", b"")
    c.create(f"/{a}/x", b"")
    c.create(f"/{b}/x", b"")
    futures = [
        c.set_data_async(f"/{a}/x", b"s1"),
        c.multi_async([SetDataOp(f"/{a}/x", b"m1"),
                       SetDataOp(f"/{b}/x", b"m1")]),
        c.set_data_async(f"/{b}/x", b"s2"),
        c.multi_async([SetDataOp(f"/{a}/x", b"m2"),
                       SetDataOp(f"/{b}/x", b"m2")]),
    ]
    cloud.run(until=cloud.now + 120_000)
    assert all(f.done for f in futures)
    [f.wait() for f in futures]
    assert c.get_data(f"/{a}/x")[0] == b"m2"
    assert c.get_data(f"/{b}/x")[0] == b"m2"
    assert c.get_data(f"/{a}/x")[1].version == 3
    assert c.get_data(f"/{b}/x")[1].version == 3


def test_multi_final_state_matches_across_shard_counts():
    def final_state(shards):
        cloud, service = make_service(seed=106, leader_shards=shards)
        c = service.connect()
        for i in range(4):
            c.create(f"/t{i}", b"")
        c.multi([CreateOp(f"/t{i}/x", b"v0") for i in range(4)])
        c.multi([SetDataOp(f"/t{i}/x", f"v{i}".encode()) for i in range(4)]
                + [CreateOp("/t0/extra", b"e")])
        c.multi([DeleteOp("/t3/x"), SetDataOp("/t3", b"mark")])
        cloud.run(until=cloud.now + 30_000)
        out = {}
        for i in range(3):
            data, stat = c.get_data(f"/t{i}/x")
            out[f"/t{i}/x"] = (data, stat.version)
        out["t0 children"] = c.get_children("/t0")
        out["t3 children"] = c.get_children("/t3")
        out["t3 data"] = c.get_data("/t3")[0]
        return out

    assert final_state(1) == final_state(4)


# ------------------------------------------------------------ coalescing
def test_multi_supersedes_pending_writes_to_same_paths():
    """With coalescing on, a multi later in the delivery batch supersedes
    earlier pending single writes to its paths, and every acknowledged
    write is still readable afterwards."""
    cloud, service = make_service(seed=107, leader_shards=2)
    c = service.connect()
    c.create("/t", b"")
    c.create("/t/hot", b"")
    c.create("/t/cold", b"")
    counts = {"writes": 0}
    original_write = service.user_store.write_node

    def spy(ctx, region, path, image):
        counts["writes"] += 1
        return (yield from original_write(ctx, region, path, image))

    service.user_store.write_node = spy
    futures = [c.set_data_async("/t/hot", f"v{i}".encode()) for i in range(6)]
    futures.append(c.multi_async([SetDataOp("/t/hot", b"final"),
                                  SetDataOp("/t/cold", b"final")]))
    cloud.run(until=cloud.now + 120_000)
    assert all(f.done and f.event.ok for f in futures)
    assert counts["writes"] < 8  # superseded singles were skipped
    assert c.get_data("/t/hot")[0] == b"final"
    assert c.get_data("/t/hot")[1].version == 7
    assert c.get_data("/t/cold")[0] == b"final"


# ------------------------------------------------------------ fault tolerance
def test_multi_duplicate_delivery_is_idempotent():
    """Crash after commit (➃): the redelivered envelope is deduplicated by
    the session watermark — every member applies exactly once."""
    cloud, service = make_service(seed=108)
    c = service.connect()
    c.create("/a", b"")
    c.create("/b", b"")
    service.follower_fn.plan_crash(
        "after_commit", invocations=[service.follower_fn.invocations + 1])
    fut = c.multi_async([SetDataOp("/a", b"once"), SetDataOp("/b", b"once")])
    cloud.run(until=cloud.now + 30_000)
    assert fut.done
    results = fut.wait()
    assert [r.version for r in results] == [1, 1]
    for path in ("/a", "/b"):
        data, stat = c.get_data(path)
        assert data == b"once" and stat.version == 1  # not applied twice


def test_multi_crash_before_push_retried_transparently():
    cloud, service = make_service(seed=109)
    c = service.connect()
    c.create("/a", b"")
    service.follower_fn.plan_crash(
        "after_validate", invocations=[service.follower_fn.invocations + 1])
    results = c.multi([SetDataOp("/a", b"v1"), CreateOp("/a/child", b"")])
    assert results[0].version == 1
    assert c.get_data("/a/child")[0] == b""
    assert service.follower_fn.failures == 1


def test_transaction_context_manager_raises_on_abort(client):
    """The with-form has no results list to hand back, so a rolled-back
    batch raises instead of failing silently (unlike commit())."""
    client.create("/cfg", b"v1")
    with pytest.raises(TransactionFailedError):
        with client.transaction() as txn:
            txn.check("/cfg", version=99)
            txn.set_data("/cfg", b"v2")
    assert client.get_data("/cfg")[0] == b"v1"  # nothing applied


def test_transaction_not_resubmitted_by_with_block(client):
    """An explicit commit() inside a with-block must not be resubmitted on
    exit, and a committed builder refuses reuse (kazoo semantics)."""
    with client.transaction() as txn:
        txn.create("/once", b"x")
        results = txn.commit()
    assert results == ["/once"]  # __exit__ did not double-submit
    assert client.get_data("/once")[0] == b"x"
    with pytest.raises(BadArgumentsError):
        txn.commit_async()


def test_multi_create_then_touch_crash_after_push_recovers():
    """TryCommit of a create-then-set batch: the set's overlay-observed
    version must not become a storage guard (the node does not exist in
    the store yet) — the leader still commits the whole batch."""
    cloud, service = make_service(seed=111, follower_max_receive=1)
    c = service.connect()
    c.create("/p", b"")
    service._session_queues[c.session_id].on_drop = None
    service.follower_fn.plan_crash(
        "after_push", invocations=[service.follower_fn.invocations + 1])
    fut = c.multi_async([CreateOp("/p/x", b"a"), SetDataOp("/p/x", b"b")])
    cloud.run(until=cloud.now + 30_000)
    assert fut.done
    results = fut.wait()
    assert results[0] == "/p/x" and results[1].version == 1
    data, stat = c.get_data("/p/x")
    assert data == b"b" and stat.version == 1
    raw = service.system_store.table("fk-system-nodes").raw("/p/x")
    assert raw["version"] == 1 and raw["transactions"] == []


def test_multi_crash_after_push_leader_try_commits():
    """Crash between push and commit with redeliveries disabled: the leader
    commits the whole batch on the follower's behalf — atomically."""
    cloud, service = make_service(seed=110, follower_max_receive=1)
    c = service.connect()
    c.create("/a", b"")
    c.create("/b", b"")
    service._session_queues[c.session_id].on_drop = None
    service.follower_fn.plan_crash(
        "after_push", invocations=[service.follower_fn.invocations + 1])
    fut = c.multi_async([SetDataOp("/a", b"rec"), SetDataOp("/b", b"rec")])
    cloud.run(until=cloud.now + 30_000)
    assert fut.done
    results = fut.wait()
    assert [r.version for r in results] == [1, 1]
    nodes = service.system_store.table("fk-system-nodes")
    for path in ("/a", "/b"):
        raw = nodes.raw(path)
        assert raw["version"] == 1 and raw["transactions"] == []
        assert c.get_data(path)[0] == b"rec"
