"""TTL-native ephemeral cleanup: the kv store's conditional TTL, the
capability gate on the backend registry, and the end-to-end eviction arc
(lapse -> stream record -> embedded-ephemerals close)."""

import pytest

from repro.cloud import Cloud
from repro.cloud.context import OpContext
from repro.cloud.kvstore import TTL_ATTRIBUTE
from repro.faaskeeper import FaaSKeeperConfig

from .conftest import make_service


# --------------------------------------------------------------- kv-level
def make_kv(seed=5):
    cloud = Cloud.aws(seed=seed)
    kv = cloud.kv("dynamodb:test")
    kv.create_table("t")
    return cloud, kv


def test_expired_item_is_lazily_deleted_on_next_touch():
    cloud, kv = make_kv()
    ctx = OpContext()
    cloud.run_process(kv.put_item(ctx, "t", "k",
                                  {"a": 1, TTL_ATTRIBUTE: cloud.now + 500.0}))
    assert kv.table("t").raw("k") is not None
    cloud.run(until=cloud.now + 1_000)
    # Nothing touched the table: DynamoDB-style lazy expiry.
    assert kv.table("t").raw("k") is not None
    assert cloud.run_process(kv.get_item(ctx, "t", "k")) is None
    assert kv.table("t").raw("k") is None


def test_refreshing_the_attribute_keeps_the_item_alive():
    cloud, kv = make_kv()
    ctx = OpContext()
    cloud.run_process(kv.put_item(ctx, "t", "k",
                                  {"a": 1, TTL_ATTRIBUTE: cloud.now + 500.0}))
    cloud.run(until=cloud.now + 400)
    from repro.cloud import Set
    cloud.run_process(kv.update_item(
        ctx, "t", "k", [Set(TTL_ATTRIBUTE, cloud.now + 500.0)]))
    cloud.run(until=cloud.now + 400)
    assert cloud.run_process(kv.get_item(ctx, "t", "k")) is not None


def test_ttl_expiry_emits_a_stream_record_with_reason_ttl():
    cloud, kv = make_kv()
    ctx = OpContext()
    records = []
    kv.table("t").stream_listeners.append(records.append)
    cloud.run_process(kv.put_item(ctx, "t", "k",
                                  {"a": 1, TTL_ATTRIBUTE: cloud.now + 100.0}))
    cloud.run(until=cloud.now + 200)
    cloud.run_process(kv.scan(ctx, "t"))
    reasons = [(r.key, r.reason, r.new_image) for r in records]
    assert ("k", "write", {"a": 1, TTL_ATTRIBUTE: pytest.approx(100.0)}) == \
        (records[0].key, records[0].reason, records[0].new_image)
    assert reasons[-1][0] == "k" and reasons[-1][1] == "ttl"
    assert records[-1].new_image is None
    assert records[-1].old_image["a"] == 1


def test_items_without_the_attribute_never_expire():
    cloud, kv = make_kv()
    ctx = OpContext()
    cloud.run_process(kv.put_item(ctx, "t", "k", {"a": 1}))
    cloud.run(until=cloud.now + 10_000_000)
    assert cloud.run_process(kv.get_item(ctx, "t", "k")) == {"a": 1}


# ------------------------------------------------------------ config gate
def test_effective_ttl_auto_derives_from_heartbeat_and_timeout():
    config = FaaSKeeperConfig(heartbeat_period_ms=60_000.0,
                              session_timeout_ms=10_000.0)
    assert config.effective_ephemeral_ttl_ms == 80_000.0
    assert FaaSKeeperConfig(
        ephemeral_ttl_ms=5_000.0).effective_ephemeral_ttl_ms == 5_000.0


@pytest.mark.parametrize("scheme,active", [
    ("mem", True), ("dynamodb", True), ("hybrid", True),
    ("s3", False), ("redis", False),
])
def test_ttl_activation_follows_the_backend_capability(scheme, active):
    _cloud, service = make_service(user_store=scheme,
                                   ephemeral_ttl_enabled=True)
    assert service.ephemeral_ttl_active is active


def test_ttl_off_by_default():
    _cloud, service = make_service(user_store="dynamodb")
    assert service.ephemeral_ttl_active is False


# ------------------------------------------------------------- end-to-end
def test_dead_session_is_evicted_via_ttl_and_ephemerals_released():
    cloud, service = make_service(user_store="mem",
                                  ephemeral_ttl_enabled=True)
    dead = service.connect()
    alive = service.connect()
    dead.create("/e", ephemeral=True)
    dead.create("/keep")
    dead.alive = False
    cloud.run(until=cloud.now + 6 * 60_000)
    assert alive.exists("/e") is None, "ephemeral survived TTL eviction"
    assert alive.exists("/keep") is not None
    assert dead.state.value == "LOST" or dead.evicted
    assert service.system_store.table("fk-system-sessions").raw(
        dead.session_id) is None
    assert int(service._ttl_evictions.value) >= 1
    # The heartbeat's own evictor stayed out of it.
    assert service.heartbeat_logic.evictions == 0


def test_answering_session_is_refreshed_and_survives():
    cloud, service = make_service(user_store="mem",
                                  ephemeral_ttl_enabled=True)
    c = service.connect()
    c.create("/e", ephemeral=True)
    cloud.run(until=cloud.now + 10 * 60_000)
    assert c.exists("/e") is not None
    assert int(service._ttl_evictions.value) == 0
    item = service.system_store.table("fk-system-sessions").raw(c.session_id)
    assert item is not None and item[TTL_ATTRIBUTE] > cloud.now


def test_s3_fleet_falls_back_to_the_heartbeat_sweep():
    cloud, service = make_service(user_store="s3",
                                  ephemeral_ttl_enabled=True)
    assert service.ephemeral_ttl_active is False
    dead = service.connect()
    alive = service.connect()
    dead.create("/e", ephemeral=True)
    dead.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert alive.exists("/e") is None
    assert service.heartbeat_logic.evictions >= 1  # the sweep, unchanged
