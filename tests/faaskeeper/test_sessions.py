"""Sessions, heartbeat, eviction, scale-to-zero."""

import pytest

from repro.faaskeeper import SessionClosedError
from .conftest import make_service


def test_heartbeat_starts_with_first_session(service):
    assert not service.heartbeat_task.enabled
    c = service.connect()
    assert service.heartbeat_task.enabled
    c.close()
    assert not service.heartbeat_task.enabled


def test_scale_to_zero_no_compute_costs_when_idle(cloud, service):
    """Table 1: scale-to-zero — an idle deployment accrues no function or
    queue charges, only (externally modeled) storage retention."""
    c = service.connect()
    c.create("/a", b"x")
    c.close()
    before = cloud.meter.total
    cloud.run(until=cloud.now + 24 * 3600 * 1000)  # one idle day
    assert cloud.meter.total == before


def test_heartbeat_fires_every_minute_with_ephemeral_owner(cloud, service):
    c = service.connect()
    c.create("/e", ephemeral=True)
    fired_before = service.heartbeat_task.fired
    cloud.run(until=cloud.now + 5 * 60_000)
    assert service.heartbeat_task.fired - fired_before == 5


def test_dead_client_evicted_and_ephemerals_cleaned(cloud, service):
    c1 = service.connect()
    c2 = service.connect()
    c1.create("/e", ephemeral=True)
    c1.create("/persistent")
    c1.alive = False  # stops answering heartbeats
    cloud.run(until=cloud.now + 3 * 60_000)
    assert c2.exists("/e") is None
    assert c2.exists("/persistent") is not None
    assert service.heartbeat_logic.evictions >= 1
    # session record removed
    assert service.system_store.table("fk-system-sessions").raw(
        c1.session_id) is None


def test_eviction_fires_watches(cloud, service):
    c1 = service.connect()
    c2 = service.connect()
    events = []
    c1.create("/e", ephemeral=True)
    c2.get_data("/e", watch=events.append)
    c1.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert len(events) == 1


def test_live_client_not_evicted(cloud, service):
    c = service.connect()
    c.create("/e", ephemeral=True)
    cloud.run(until=cloud.now + 10 * 60_000)
    assert c.exists("/e") is not None
    assert service.heartbeat_logic.evictions == 0


def test_sessions_without_ephemerals_not_pinged(cloud, service):
    c = service.connect()
    c.create("/plain")
    c.alive = False  # irrelevant: owns no ephemerals
    cloud.run(until=cloud.now + 3 * 60_000)
    assert service.system_store.table("fk-system-sessions").raw(
        c.session_id) is not None


def test_two_sessions_are_isolated_queues(service):
    c1, c2 = service.connect(), service.connect()
    assert c1.session_id != c2.session_id
    assert service._session_queues[c1.session_id] is not \
        service._session_queues[c2.session_id]


def test_session_writes_after_eviction_fail(cloud, service):
    c = service.connect()
    c.create("/e", ephemeral=True)
    c.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert c.closed
    with pytest.raises(SessionClosedError):
        c.create("/x")


def test_heartbeat_cost_is_metered(cloud, service):
    c = service.connect()
    c.create("/e", ephemeral=True)
    cloud.run(until=cloud.now + 10 * 60_000)
    assert cloud.meter.service_total("fn:fk-heartbeat") > 0
