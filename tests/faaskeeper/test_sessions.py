"""Sessions, heartbeat, eviction, scale-to-zero."""

import pytest

from repro.faaskeeper import SessionClosedError
from repro.sim.kernel import AllOf, ConditionValue
from .conftest import make_service


def test_heartbeat_starts_with_first_session(service):
    assert not service.heartbeat_task.enabled
    c = service.connect()
    assert service.heartbeat_task.enabled
    c.close()
    assert not service.heartbeat_task.enabled


def test_scale_to_zero_no_compute_costs_when_idle(cloud, service):
    """Table 1: scale-to-zero — an idle deployment accrues no function or
    queue charges, only (externally modeled) storage retention."""
    c = service.connect()
    c.create("/a", b"x")
    c.close()
    before = cloud.meter.total
    cloud.run(until=cloud.now + 24 * 3600 * 1000)  # one idle day
    assert cloud.meter.total == before


def test_heartbeat_fires_every_minute_with_ephemeral_owner():
    # storage_faults pinned off: the exact firing count is a fault-free
    # timing calibration — one retry backoff inside connect/create phase-
    # shifts the schedule and the 5-minute window catches only 4 firings.
    cloud, service = make_service(storage_faults=False)
    c = service.connect()
    c.create("/e", ephemeral=True)
    fired_before = service.heartbeat_task.fired
    cloud.run(until=cloud.now + 5 * 60_000)
    assert service.heartbeat_task.fired - fired_before == 5


def test_dead_client_evicted_and_ephemerals_cleaned(cloud, service):
    c1 = service.connect()
    c2 = service.connect()
    c1.create("/e", ephemeral=True)
    c1.create("/persistent")
    c1.alive = False  # stops answering heartbeats
    cloud.run(until=cloud.now + 3 * 60_000)
    assert c2.exists("/e") is None
    assert c2.exists("/persistent") is not None
    assert service.heartbeat_logic.evictions >= 1
    # session record removed
    assert service.system_store.table("fk-system-sessions").raw(
        c1.session_id) is None


def test_eviction_fires_watches(cloud, service):
    c1 = service.connect()
    c2 = service.connect()
    events = []
    c1.create("/e", ephemeral=True)
    c2.get_data("/e", watch=events.append)
    c1.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert len(events) == 1


def test_live_client_not_evicted(cloud, service):
    c = service.connect()
    c.create("/e", ephemeral=True)
    cloud.run(until=cloud.now + 10 * 60_000)
    assert c.exists("/e") is not None
    assert service.heartbeat_logic.evictions == 0


def test_dead_session_without_ephemerals_is_evicted(cloud, service):
    """Regression: the heartbeat used to ping only ephemeral owners, so a
    dead session owning none was never evicted — its session record, FIFO
    queue and watch registrations leaked forever."""
    c = service.connect()
    c.create("/plain")
    c.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert c.closed
    assert service.system_store.table("fk-system-sessions").raw(
        c.session_id) is None
    assert service.heartbeat_logic.evictions >= 1


def test_dead_watch_only_session_is_evicted_and_watch_reclaimed(cloud, service):
    """A dead session holding only a watch is evicted by the heartbeat, and
    the GC sweep can then reclaim its watch instance — pre-fix neither ever
    happened (the session was never pinged, so it stayed 'live' forever)."""
    writer = service.connect()
    ghost = service.connect()
    writer.create("/w", b"")
    events = []
    ghost.get_data("/w", watch=events.append)
    ghost.alive = False  # dead client: owns no ephemerals, only the watch
    cloud.run(until=cloud.now + 3 * 60_000)
    assert ghost.closed
    assert service.system_store.table("fk-system-sessions").raw(
        ghost.session_id) is None
    # Once the session record is gone, the GC watch sweep reclaims the
    # instance (no more fan-out work for the dead client).
    cloud.run(until=cloud.now + 10 * 60_000)
    watches = service.system_store.table("fk-system-watches")
    assert not (watches.raw("/w") or {}).get("inst", {}).get("data")
    assert events == []  # nothing was ever delivered to the dead client


def test_heartbeat_results_keyed_by_ping_not_dict_order(cloud, service):
    """Regression: results were built as ``dict(zip(to_check,
    done.values()))``, silently relying on the AllOf value dict iterating
    in ping-list order.  Under a completion-ordered (equally legal)
    condition value, the slow-but-alive session inherited the dead
    session's result and was evicted in its place."""
    import repro.faaskeeper.heartbeat as hb_module

    class CompletionOrderedAllOf(AllOf):
        """AllOf whose value dict iterates in completion order."""

        def _check(self, event):
            if self.triggered:
                return
            if not event._ok:
                event._defused = True
                self.fail(event._value)
                return
            self._fired.append(event)
            if len(self._fired) >= self._need:
                value = ConditionValue()
                for ev in self._fired:  # completion order, not event order
                    value[ev] = ev._value
                self.succeed(value)

    slow = service.connect()   # alive, but slow to answer
    dead = service.connect()   # never answers
    slow.create("/slow", ephemeral=True)
    dead.create("/dead", ephemeral=True)
    dead.alive = False

    real_ping = service.heartbeat_ping

    def skewed_ping(session_id):
        if session_id == slow.session_id:
            yield service.cloud.env.timeout(50.0)  # answers, late
        result = yield from real_ping(session_id)
        return result

    service.heartbeat_ping = skewed_ping
    original_allof = hb_module.AllOf
    hb_module.AllOf = CompletionOrderedAllOf
    try:
        cloud.run(until=cloud.now + 3 * 60_000)
    finally:
        hb_module.AllOf = original_allof
        service.heartbeat_ping = real_ping

    sessions = service.system_store.table("fk-system-sessions")
    assert sessions.raw(slow.session_id) is not None  # alive: never evicted
    assert not slow.closed
    assert sessions.raw(dead.session_id) is None      # dead: evicted
    assert dead.closed


def test_two_sessions_are_isolated_queues(service):
    c1, c2 = service.connect(), service.connect()
    assert c1.session_id != c2.session_id
    assert service._session_queues[c1.session_id] is not \
        service._session_queues[c2.session_id]


def test_session_writes_after_eviction_fail(cloud, service):
    c = service.connect()
    c.create("/e", ephemeral=True)
    c.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert c.closed
    with pytest.raises(SessionClosedError):
        c.create("/x")


def test_heartbeat_cost_is_metered(cloud, service):
    c = service.connect()
    c.create("/e", ephemeral=True)
    cloud.run(until=cloud.now + 10 * 60_000)
    assert cloud.meter.service_total("fn:fk-heartbeat") > 0
