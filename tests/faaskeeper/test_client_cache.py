"""Client-side read cache: hit/miss behaviour, watch-driven invalidation,
and the consistency gates (read-your-writes, Z4) that must survive caching."""

import pytest

from repro.faaskeeper import (
    ClientReadCache,
    FaaSKeeperConfig,
    SessionClosedError,
)
from repro.faaskeeper.model import WatchType
from .conftest import make_service


def settle(cloud, ms=3000):
    cloud.run(until=cloud.now + ms)


def cached_service(seed=300, **kwargs):
    kwargs.setdefault("client_cache_entries", 64)
    return make_service(seed=seed, **kwargs)


# ---------------------------------------------------------------- basics
def test_cache_disabled_by_default():
    cloud, service = make_service(seed=301)
    c = service.connect()
    assert c._cache is None
    c.create("/a", b"x")
    c.get_data("/a")
    c.get_data("/a")
    stats = service.client_cache_stats()
    assert stats["hits"] == 0 and stats["misses"] == 0


def test_repeat_read_hits_cache():
    cloud, service = cached_service(seed=302)
    c = service.connect()
    c.create("/a", b"v0")
    c.get_data("/a")           # miss: fills the cache
    t0 = cloud.now
    data, stat = c.get_data("/a")  # hit: no storage round trip
    assert data == b"v0"
    assert cloud.now - t0 < 1.0    # hits skip the ~5-12 ms storage read
    assert c._cache.hits == 1 and c._cache.misses == 1


def test_get_children_cached_separately_from_get_data():
    cloud, service = cached_service(seed=303)
    c = service.connect()
    c.create("/p", b"")
    c.create("/p/kid", b"")
    c.get_data("/p")
    c.get_children("/p")
    assert c._cache.misses == 2  # distinct entries per watch type
    assert c.get_children("/p") == ["kid"]
    assert c._cache.hits == 1


def test_other_clients_write_invalidates_via_watch():
    cloud, service = cached_service(seed=304)
    reader, writer = service.connect(), service.connect()
    writer.create("/a", b"v0")
    assert reader.get_data("/a")[0] == b"v0"   # cached
    writer.set_data("/a", b"v1")
    settle(cloud)  # watch fan-out delivers, entry invalidated
    assert len(reader._cache) == 0
    assert reader.get_data("/a")[0] == b"v1"   # miss: re-fetch + re-arm
    assert reader.get_data("/a")[0] == b"v1"   # hit again
    assert reader._cache.invalidations >= 1


def test_children_entry_invalidated_by_sibling_create():
    cloud, service = cached_service(seed=305)
    reader, writer = service.connect(), service.connect()
    writer.create("/p", b"")
    writer.create("/p/a", b"")
    assert reader.get_children("/p") == ["a"]
    writer.create("/p/b", b"")
    settle(cloud)
    assert reader.get_children("/p") == ["a", "b"]


def test_read_your_writes_through_cache_shards1():
    cloud, service = cached_service(seed=306)
    c = service.connect()
    c.create("/a", b"v0")
    c.get_data("/a")               # cache v0
    c.set_data("/a", b"v1")        # own write invalidates before the watch
    assert c.get_data("/a")[0] == b"v1"
    assert c.get_data("/a")[0] == b"v1"


def test_read_your_writes_through_cache_shards4():
    cloud, service = cached_service(seed=307, leader_shards=4)
    c = service.connect()
    for i in range(4):
        c.create(f"/t{i}", b"")
    for i in range(4):
        c.get_data(f"/t{i}")
    for i in range(4):
        c.set_data(f"/t{i}", f"new{i}".encode())
    for i in range(4):
        assert c.get_data(f"/t{i}")[0] == f"new{i}".encode()


def test_read_your_writes_under_coalesced_writes():
    """Sharded pipeline with coalescing on: a pipelined burst to one path
    acknowledges superseded writes late; the cached entry must never serve
    an acknowledged-but-superseded value."""
    cloud, service = cached_service(seed=308, leader_shards=4)
    assert service.config.coalesce_enabled
    c = service.connect()
    c.create("/hot", b"")
    c.get_data("/hot")  # warm the cache
    futures = [c.set_data_async("/hot", f"v{i}".encode()) for i in range(6)]
    future = c.get_data_async("/hot")
    for f in futures:
        f.wait()
    data, _stat = future.wait()
    assert data == b"v5"
    assert c.get_data("/hot")[0] == b"v5"


def test_multi_invalidates_written_paths():
    cloud, service = cached_service(seed=309)
    c = service.connect()
    c.create("/m", b"")
    c.create("/m/a", b"old")
    c.get_data("/m/a")
    c.get_children("/m")
    with c.transaction() as tx:
        tx.set_data("/m/a", b"new")
        tx.create("/m/b", b"")
    assert c.get_data("/m/a")[0] == b"new"
    assert c.get_children("/m") == ["a", "b"]


def test_delete_invalidates_node_and_parent():
    cloud, service = cached_service(seed=310)
    c = service.connect()
    c.create("/p", b"")
    c.create("/p/kid", b"x")
    c.get_data("/p/kid")
    c.get_children("/p")
    c.delete("/p/kid")
    assert c.exists("/p/kid") is None
    assert c.get_children("/p") == []


# ---------------------------------------------------------------- Z4 gate
def test_z4_stall_on_cached_entry_with_undelivered_notification():
    """A cache hit must replay the epoch stall: when the cached image's
    epoch set carries one of this session's undelivered watch ids, the hit
    blocks until that notification arrives (Z4), exactly like an uncached
    read would."""
    cloud, service = cached_service(seed=311)
    watcher, writer = service.connect(), service.connect()
    events = []
    assert watcher.exists("/x", watch=events.append) is None
    wid = next(iter(watcher._registered))       # the undelivered watch id

    writer.create("/b", b"payload")
    watcher.get_data("/b")                      # cached entry for /b
    # Model an image written while wid's notification was in flight: epoch
    # carries the wid and the write is not older than everything delivered.
    entry = watcher._cache._entries[("/b", WatchType.DATA.value)]
    entry.image["epoch"] = [wid]
    entry.image["modified_tx"] = watcher.mrd + 1000

    future = watcher.get_data_async("/b")
    cloud.run(until=cloud.now + 10_000)
    assert not future.done                      # hit is stalled on wid
    writer.create("/x", b"")                    # fires the exists watch
    settle(cloud, 5_000)
    assert future.done and len(events) == 1     # delivered, then released
    assert watcher._cache.hits >= 1


def test_user_watch_on_hit_bypasses_entry_with_consumed_guard():
    """A read that sets a user watch must not be served from an entry whose
    guarding watch was already consumed: the fresh watch sits on a new
    instance and would never fire for the change the cached image predates
    — the caller would hold stale data AND miss its notification."""
    cloud, service = cached_service(seed=319)
    reader, writer = service.connect(), service.connect()
    writer.create("/a", b"v0")
    reader.get_data("/a")                       # cached, guarded by W1

    # Hold watch deliveries to the reader: W1's consume commits server-side
    # but its notification stays in flight.
    original = service.notify_watch_process
    held = []

    def holding(session, watch_id, event):
        if session == reader.session_id:
            held.append((watch_id, event))
            return
            yield  # pragma: no cover - generator marker
        yield from original(session, watch_id, event)

    service.notify_watch_process = holding
    writer.set_data("/a", b"v1")
    settle(cloud)
    assert len(reader._cache) == 1              # invalidation still in flight
    service.notify_watch_process = original

    events = []
    data, _stat = reader.get_data("/a", watch=events.append)
    assert data == b"v1"                        # bypassed the doomed entry
    writer.set_data("/a", b"v2")
    settle(cloud)
    assert len(events) == 1                     # fresh watch fires normally


def test_multi_check_op_does_not_invalidate():
    """CheckOp members write nothing: a successful multi must not evict the
    guard path's still-valid entry (that would force a spurious miss plus a
    watch re-registration storage write)."""
    cloud, service = cached_service(seed=320)
    c = service.connect()
    c.create("/guard", b"g")
    c.create("/other", b"")
    c.get_data("/guard")
    hits_before = c._cache.hits
    with c.transaction() as tx:
        tx.check("/guard")
        tx.set_data("/other", b"x")
    assert c.get_data("/guard")[0] == b"g"
    assert c._cache.hits == hits_before + 1     # still a hit, no re-fetch


def test_fanout_race_does_not_admit_consumed_entry():
    """If the guarding watch fires while the miss's storage read is in
    flight, the image must not be admitted — its invalidation channel is
    already consumed and the entry could never be dropped."""
    cloud, service = cached_service(seed=312)
    c = service.connect()
    c.create("/a", b"v0")
    c.get_data("/a")                            # registers the DATA watch
    wid = c._watch_ids[("/a", WatchType.DATA.value)]
    c._cache.clear()                            # entry gone, watch armed
    c._delivered.add(wid)                       # delivery won the race
    c.get_data("/a")
    assert len(c._cache) == 0                   # not admitted


# ---------------------------------------------------------------- lifecycle
def test_cache_cleared_across_close():
    cloud, service = cached_service(seed=313)
    c = service.connect()
    c.create("/a", b"x")
    c.get_data("/a")
    assert len(c._cache) == 1
    c.close()
    assert len(c._cache) == 0
    with pytest.raises(SessionClosedError):
        c.get_data("/a")


def test_cache_cleared_on_eviction():
    cloud, service = cached_service(seed=314)
    c = service.connect()
    c.create("/a", b"x")
    c.get_data("/a")
    assert len(c._cache) == 1
    c.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert c.closed
    assert len(c._cache) == 0


# ---------------------------------------------------------------- bounds
def test_lru_entry_bound_evicts_oldest():
    cloud, service = make_service(seed=315, client_cache_entries=2)
    c = service.connect()
    for name in ("a", "b", "c"):
        c.create(f"/{name}", name.encode())
        c.get_data(f"/{name}")
    assert len(c._cache) == 2
    assert c._cache.evictions == 1
    assert c._cache.lookup("/a", WatchType.DATA) is None  # the LRU victim


def test_byte_budget_bounds_cache():
    cloud, service = make_service(seed=316, client_cache_entries=64,
                                  client_cache_kb=3.0)
    c = service.connect()
    for i in range(4):
        c.create(f"/n{i}", b"x" * 1024)
        c.get_data(f"/n{i}")
    assert c._cache.size_kb <= 3.0
    assert c._cache.evictions >= 1


def test_oversized_image_is_not_cached():
    cache = ClientReadCache(8, max_kb=1.0)
    cache.admit("/big", WatchType.DATA, {"data": b"x" * 4096}, "w1")
    assert len(cache) == 0


def test_config_rejects_negative_cache_knobs():
    with pytest.raises(ValueError):
        FaaSKeeperConfig(client_cache_entries=-1)
    with pytest.raises(ValueError):
        FaaSKeeperConfig(client_cache_kb=-0.5)


# ---------------------------------------------------------------- accounting
def test_cost_breakdown_reports_cache_counters():
    cloud, service = cached_service(seed=317)
    c = service.connect()
    c.create("/a", b"x")
    c.get_data("/a")
    c.get_data("/a")
    c.get_data("/a")
    breakdown = service.cost_breakdown()
    assert breakdown["client_cache_misses"] == 1
    assert breakdown["client_cache_hits"] == 2


def test_cache_saves_user_store_cost():
    def run(entries):
        cloud, service = make_service(seed=318, client_cache_entries=entries)
        c = service.connect()
        c.create("/a", b"x" * 512)
        for _ in range(30):
            c.get_data("/a")
        return service.cost_breakdown()["user_store"]

    assert run(64) < run(0)
