"""Client-library ordering semantics (Section 3.5)."""

import pytest

from repro.faaskeeper import NoNodeError
from .conftest import make_service


def test_read_after_write_sees_the_write():
    """The client completion queue: a read issued after a write (async)
    completes after it and observes its effect."""
    cloud, service = make_service(seed=500)
    c = service.connect()
    c.create("/a", b"old")
    write = c.set_data_async("/a", b"new")
    read = c.get_data_async("/a")
    cloud.run(until=cloud.now + 60_000)
    assert write.done and read.done
    data, stat = read.wait()
    assert data == b"new"
    assert stat.modified_tx >= write.wait().txid


def test_async_results_complete_in_request_order():
    cloud, service = make_service(seed=501)
    c = service.connect()
    c.create("/a", b"")
    completion_order = []

    futures = []
    for i in range(4):
        fut = c.set_data_async("/a", f"w{i}".encode())
        fut.event.callbacks.append(
            lambda ev, i=i: completion_order.append(("w", i)))
        futures.append(fut)
    read = c.get_data_async("/a")
    read.event.callbacks.append(lambda ev: completion_order.append(("r", 0)))
    cloud.run(until=cloud.now + 120_000)
    assert completion_order == [("w", 0), ("w", 1), ("w", 2), ("w", 3),
                                ("r", 0)]


def test_failed_predecessor_does_not_poison_successors():
    cloud, service = make_service(seed=502)
    c = service.connect()
    c.create("/a", b"")
    bad = c.set_data_async("/missing", b"x")   # will fail with NoNode
    good = c.set_data_async("/a", b"y")
    cloud.run(until=cloud.now + 60_000)
    with pytest.raises(NoNodeError):
        bad.wait()
    assert good.wait().version == 1


def test_mrd_advances_with_responses():
    cloud, service = make_service(seed=503)
    c = service.connect()
    c.create("/a", b"")
    assert c.mrd > 0
    before = c.mrd
    c.set_data("/a", b"x")
    assert c.mrd > before


def test_interleaved_reads_and_writes_pipeline():
    """Reads between writes all complete, in order, with consistent data."""
    cloud, service = make_service(seed=504)
    c = service.connect()
    c.create("/a", b"v0")
    futures = []
    for i in range(3):
        futures.append(("w", c.set_data_async("/a", f"v{i+1}".encode())))
        futures.append(("r", c.get_data_async("/a")))
    cloud.run(until=cloud.now + 120_000)
    last_version = -1
    for kind, fut in futures:
        assert fut.done
        if kind == "r":
            _, stat = fut.wait()
            assert stat.version >= last_version
            last_version = stat.version
    # the final read saw the final write
    assert last_version == 3


def test_watch_callbacks_are_per_registration():
    cloud, service = make_service(seed=505)
    c = service.connect()
    c.create("/a", b"")
    hits = []
    c.get_data("/a", watch=lambda ev: hits.append("first"))
    c.get_data("/a", watch=lambda ev: hits.append("second"))
    c.set_data("/a", b"x")
    cloud.run(until=cloud.now + 10_000)
    # both registrations joined the same instance: both callbacks fire once
    assert sorted(hits) == ["first", "second"]
