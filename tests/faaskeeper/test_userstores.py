"""User-store backends: S3 / DynamoDB / hybrid / Redis (Section 4.2)."""

import pytest

from repro.cloud.context import OpContext
from repro.faaskeeper.layout import USER_BUCKET, USER_TABLE
from .conftest import make_service

TWO_REGIONS = ["us-east-1", "eu-west-1"]


@pytest.mark.parametrize("kind", ["s3", "dynamodb", "hybrid", "redis"])
def test_crud_roundtrip_on_every_backend(kind):
    cloud, service = make_service(user_store=kind)
    c = service.connect()
    c.create("/a", b"payload")
    data, stat = c.get_data("/a")
    assert data == b"payload"
    c.set_data("/a", b"updated")
    data, _ = c.get_data("/a")
    assert data == b"updated"
    c.create("/a/b", b"child")
    assert c.get_children("/a") == ["b"]
    c.delete("/a/b")
    c.delete("/a")
    assert c.exists("/a") is None


def test_hybrid_small_node_stays_in_kv():
    cloud, service = make_service(user_store="hybrid")
    c = service.connect()
    c.create("/small", b"x" * 1024)  # 1 kB <= 4 kB threshold
    kv = cloud.kv("dynamodb:user")
    item = kv.table(USER_TABLE).raw("/small")
    assert item is not None and item["data"] == b"x" * 1024
    s3 = cloud.objectstore("s3")
    assert s3.raw(USER_BUCKET, "/small") is None


def test_hybrid_large_node_spills_data_to_s3():
    cloud, service = make_service(user_store="hybrid")
    c = service.connect()
    payload = b"x" * (64 * 1024)
    c.create("/large", payload)
    kv = cloud.kv("dynamodb:user")
    item = kv.table(USER_TABLE).raw("/large")
    assert item["data_in_s3"] is True
    assert "data" not in item
    s3 = cloud.objectstore("s3")
    assert s3.raw(USER_BUCKET, "/large") == payload
    # the client reassembles transparently
    data, stat = c.get_data("/large")
    assert data == payload
    assert stat.data_length == len(payload)


def test_hybrid_delete_cleans_both_stores():
    cloud, service = make_service(user_store="hybrid")
    c = service.connect()
    c.create("/large", b"x" * (64 * 1024))
    c.delete("/large")
    cloud.run(until=cloud.now + 3000)
    assert cloud.kv("dynamodb:user").table(USER_TABLE).raw("/large") is None
    assert cloud.objectstore("s3").raw(USER_BUCKET, "/large") is None


def test_read_latency_ranking_matches_figure8():
    """Figure 8: Redis < DynamoDB < S3 for small-node reads."""
    medians = {}
    for kind in ("redis", "dynamodb", "s3"):
        cloud, service = make_service(user_store=kind, seed=31)
        c = service.connect()
        c.create("/n", b"x" * 1024)
        times = []
        for _ in range(60):
            t0 = cloud.now
            c.get_data("/n")
            times.append(cloud.now - t0)
        times.sort()
        medians[kind] = times[len(times) // 2]
    assert medians["redis"] < medians["dynamodb"] < medians["s3"]
    assert medians["redis"] < 2.0          # in-memory ~ZooKeeper level
    assert 3.0 < medians["dynamodb"] < 9.0  # ~5 ms
    assert 9.0 < medians["s3"] < 20.0       # ~12 ms


def test_hybrid_read_cheaper_than_s3_for_small_nodes():
    """Section 4.2: hybrid reads a 1 kB node from DynamoDB: 0.25e-6 vs S3
    0.4e-6 per read."""
    costs = {}
    for kind in ("hybrid", "s3"):
        cloud, service = make_service(user_store=kind, seed=5)
        c = service.connect()
        c.create("/n", b"x" * 1024)
        before = cloud.meter.by_service()
        for _ in range(100):
            c.get_data("/n")
        delta = cloud.meter.delta(before)
        costs[kind] = sum(v for k, v in delta.items()
                          if k in ("s3", "dynamodb:user"))
    assert costs["hybrid"] < costs["s3"]


def test_write_latency_s3_grows_faster_than_dynamodb_small():
    """Figure 11: replacing S3 with DynamoDB cuts small-node write time."""
    medians = {}
    for kind in ("dynamodb", "s3"):
        cloud, service = make_service(user_store=kind, seed=77)
        c = service.connect()
        c.create("/n", b"")
        times = []
        for i in range(40):
            t0 = cloud.now
            c.set_data("/n", b"y" * 512)
            times.append(cloud.now - t0)
        times.sort()
        medians[kind] = times[len(times) // 2]
    assert medians["dynamodb"] < medians["s3"]


# ------------------------------------------------------- backend routing
@pytest.mark.parametrize("region", TWO_REGIONS)
def test_hybrid_delete_small_node_skips_s3(region):
    """Hybrid delete routing: a small node never touched S3, so deleting
    it must issue no object-store delete — only the key-value item goes."""
    cloud, service = make_service(user_store="hybrid", regions=TWO_REGIONS)
    store = service.user_store
    ctx = OpContext(region=region)
    image = {"path": "/small", "data": b"x" * 512, "version": 0,
             "cversion": 0, "children": [], "epoch": []}
    cloud.run_process(store.write_node(ctx, region, "/small", image))
    s3 = cloud.objectstore("s3", region=region)
    s3_cost_before = cloud.meter.by_service().get("s3", 0.0)
    cloud.run_process(store.delete_node(ctx, region, "/small"))
    kv = cloud.kv("dynamodb:user", region=region)
    assert kv.table(USER_TABLE).raw("/small") is None
    assert s3.raw(USER_BUCKET, "/small") is None
    # no object-store request was issued at all
    assert cloud.meter.by_service().get("s3", 0.0) == s3_cost_before


@pytest.mark.parametrize("region", TWO_REGIONS)
def test_hybrid_metadata_update_keeps_spilled_data_in_s3(region):
    """Hybrid metadata routing: a parent child-list update on a large node
    rewrites only the key-value item; the S3 object is left untouched and
    reads still reassemble data + fresh metadata."""
    cloud, service = make_service(user_store="hybrid", regions=TWO_REGIONS)
    store = service.user_store
    ctx = OpContext(region=region)
    payload = b"x" * (64 * 1024)
    image = {"path": "/big", "data": payload, "version": 1,
             "cversion": 0, "children": [], "epoch": []}
    cloud.run_process(store.write_node(ctx, region, "/big", image))
    s3_cost = cloud.meter.by_service().get("s3", 0.0)
    meta = {"path": "/big", "version": 1, "cversion": 3,
            "children": ["kid"], "epoch": []}
    cloud.run_process(store.update_metadata(ctx, region, "/big", meta))
    # no second object upload: the spilled data was not rewritten
    assert cloud.meter.by_service().get("s3", 0.0) == s3_cost
    read = cloud.run_process(store.read_node(ctx, region, "/big"))
    assert read["data"] == payload
    assert read["children"] == ["kid"] and read["cversion"] == 3
    assert "data_in_s3" not in read


@pytest.mark.parametrize("region", TWO_REGIONS)
def test_hybrid_metadata_update_small_node_stays_inline(region):
    cloud, service = make_service(user_store="hybrid", regions=TWO_REGIONS)
    store = service.user_store
    ctx = OpContext(region=region)
    image = {"path": "/s", "data": b"tiny", "version": 1,
             "cversion": 0, "children": [], "epoch": []}
    cloud.run_process(store.write_node(ctx, region, "/s", image))
    meta = {"path": "/s", "version": 1, "cversion": 1,
            "children": ["c"], "epoch": []}
    cloud.run_process(store.update_metadata(ctx, region, "/s", meta))
    item = cloud.kv("dynamodb:user", region=region).table(USER_TABLE).raw("/s")
    assert item["data"] == b"tiny" and item["data_in_s3"] is False
    assert item["children"] == ["c"]


@pytest.mark.parametrize("region", TWO_REGIONS)
def test_redis_write_read_delete_roundtrip(region):
    """RedisBackend CRUD against each region's cache replica."""
    cloud, service = make_service(user_store="redis", regions=TWO_REGIONS)
    store = service.user_store
    ctx = OpContext(region=region)
    image = {"path": "/r", "data": b"cached", "version": 2,
             "cversion": 0, "children": [], "epoch": []}
    cloud.run_process(store.write_node(ctx, region, "/r", image))
    read = cloud.run_process(store.read_node(ctx, region, "/r"))
    assert read["data"] == b"cached" and read["version"] == 2
    # replicas are per-region: the other region has its own copy space
    other = [r for r in TWO_REGIONS if r != region][0]
    assert cloud.run_process(store.read_node(
        OpContext(region=other), other, "/r")) is None
    cloud.run_process(store.delete_node(ctx, region, "/r"))
    assert cloud.run_process(store.read_node(ctx, region, "/r")) is None


@pytest.mark.parametrize("kind", ["s3", "dynamodb", "hybrid", "redis"])
def test_crud_roundtrip_multi_region_deployment(kind):
    """Every backend serves both regions of a two-region deployment: the
    leader replicates into each replica and a second-region client reads
    its local one."""
    cloud, service = make_service(user_store=kind, regions=TWO_REGIONS)
    local = service.connect()
    remote = service.connect(region=TWO_REGIONS[1])
    local.create("/mr", b"both")
    assert remote.get_data("/mr")[0] == b"both"
    local.set_data("/mr", b"updated")
    cloud.run(until=cloud.now + 3000)
    assert remote.get_data("/mr")[0] == b"updated"
    local.delete("/mr")
    cloud.run(until=cloud.now + 3000)
    assert remote.exists("/mr") is None
