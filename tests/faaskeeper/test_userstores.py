"""User-store backends: S3 / DynamoDB / hybrid / Redis (Section 4.2)."""

import pytest

from repro.faaskeeper.layout import USER_BUCKET, USER_TABLE
from .conftest import make_service


@pytest.mark.parametrize("kind", ["s3", "dynamodb", "hybrid", "redis"])
def test_crud_roundtrip_on_every_backend(kind):
    cloud, service = make_service(user_store=kind)
    c = service.connect()
    c.create("/a", b"payload")
    data, stat = c.get_data("/a")
    assert data == b"payload"
    c.set_data("/a", b"updated")
    data, _ = c.get_data("/a")
    assert data == b"updated"
    c.create("/a/b", b"child")
    assert c.get_children("/a") == ["b"]
    c.delete("/a/b")
    c.delete("/a")
    assert c.exists("/a") is None


def test_hybrid_small_node_stays_in_kv():
    cloud, service = make_service(user_store="hybrid")
    c = service.connect()
    c.create("/small", b"x" * 1024)  # 1 kB <= 4 kB threshold
    kv = cloud.kv("dynamodb:user")
    item = kv.table(USER_TABLE).raw("/small")
    assert item is not None and item["data"] == b"x" * 1024
    s3 = cloud.objectstore("s3")
    assert s3.raw(USER_BUCKET, "/small") is None


def test_hybrid_large_node_spills_data_to_s3():
    cloud, service = make_service(user_store="hybrid")
    c = service.connect()
    payload = b"x" * (64 * 1024)
    c.create("/large", payload)
    kv = cloud.kv("dynamodb:user")
    item = kv.table(USER_TABLE).raw("/large")
    assert item["data_in_s3"] is True
    assert "data" not in item
    s3 = cloud.objectstore("s3")
    assert s3.raw(USER_BUCKET, "/large") == payload
    # the client reassembles transparently
    data, stat = c.get_data("/large")
    assert data == payload
    assert stat.data_length == len(payload)


def test_hybrid_delete_cleans_both_stores():
    cloud, service = make_service(user_store="hybrid")
    c = service.connect()
    c.create("/large", b"x" * (64 * 1024))
    c.delete("/large")
    cloud.run(until=cloud.now + 3000)
    assert cloud.kv("dynamodb:user").table(USER_TABLE).raw("/large") is None
    assert cloud.objectstore("s3").raw(USER_BUCKET, "/large") is None


def test_read_latency_ranking_matches_figure8():
    """Figure 8: Redis < DynamoDB < S3 for small-node reads."""
    medians = {}
    for kind in ("redis", "dynamodb", "s3"):
        cloud, service = make_service(user_store=kind, seed=31)
        c = service.connect()
        c.create("/n", b"x" * 1024)
        times = []
        for _ in range(60):
            t0 = cloud.now
            c.get_data("/n")
            times.append(cloud.now - t0)
        times.sort()
        medians[kind] = times[len(times) // 2]
    assert medians["redis"] < medians["dynamodb"] < medians["s3"]
    assert medians["redis"] < 2.0          # in-memory ~ZooKeeper level
    assert 3.0 < medians["dynamodb"] < 9.0  # ~5 ms
    assert 9.0 < medians["s3"] < 20.0       # ~12 ms


def test_hybrid_read_cheaper_than_s3_for_small_nodes():
    """Section 4.2: hybrid reads a 1 kB node from DynamoDB: 0.25e-6 vs S3
    0.4e-6 per read."""
    costs = {}
    for kind in ("hybrid", "s3"):
        cloud, service = make_service(user_store=kind, seed=5)
        c = service.connect()
        c.create("/n", b"x" * 1024)
        before = cloud.meter.by_service()
        for _ in range(100):
            c.get_data("/n")
        delta = cloud.meter.delta(before)
        costs[kind] = sum(v for k, v in delta.items()
                          if k in ("s3", "dynamodb:user"))
    assert costs["hybrid"] < costs["s3"]


def test_write_latency_s3_grows_faster_than_dynamodb_small():
    """Figure 11: replacing S3 with DynamoDB cuts small-node write time."""
    medians = {}
    for kind in ("dynamodb", "s3"):
        cloud, service = make_service(user_store=kind, seed=77)
        c = service.connect()
        c.create("/n", b"")
        times = []
        for i in range(40):
            t0 = cloud.now
            c.set_data("/n", b"y" * 512)
            times.append(cloud.now - t0)
        times.sort()
        medians[kind] = times[len(times) // 2]
    assert medians["dynamodb"] < medians["s3"]
