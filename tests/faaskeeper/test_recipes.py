"""Coordination recipes under contention.

Every recipe runs its contention scenario across the deployment matrix
``leader_shards ∈ {1, 4} × distributor {off, on_commit}`` — the recipes
are pure client-API code, so these tests double as end-to-end consistency
checks of the sharded pipeline, the watch protocol and the distributor's
visibility watermark under multi-session interleavings.

Contenders run as simulation processes driving the recipes' ``co_*``
coroutine forms (the virtual-time analogue of one thread per client).
"""

import pytest

from repro.faaskeeper import recipes
from repro.sim.kernel import AllOf

from .conftest import make_service

#: leader_shards {1,4} x distributor {off, on_commit}.
MATRIX = {
    "s1": dict(leader_shards=1),
    "s4": dict(leader_shards=4),
    "s1-dist": dict(leader_shards=1, distributor_enabled=True,
                    ack_policy="on_commit"),
    "s4-dist": dict(leader_shards=4, distributor_enabled=True,
                    ack_policy="on_commit"),
}


@pytest.fixture(params=sorted(MATRIX), ids=sorted(MATRIX))
def deployment(request):
    # storage_faults pinned off: these are *liveness* scenarios driven to
    # completion with run(until=AllOf(workers)) — every wakeup rides a
    # one-shot watch, and a fault-delayed re-registration may miss the
    # only delete notification it was waiting for (permitted by the
    # watch contract, fatal to an unbounded drain).  Faulty-timing
    # coverage lives in tests/integration/test_storage_faults.py, whose
    # workloads are bounded and audited for exactly-once end effects.
    return make_service(seed=2024, storage_faults=False,
                        **MATRIX[request.param])


def run_all(cloud, procs):
    cloud.run(until=AllOf(cloud.env, procs))


# ---------------------------------------------------------------- Lock
def test_lock_contention_mutual_exclusion_fifo_and_no_herd(deployment):
    cloud, service = deployment
    env = cloud.env
    workers, rounds, hold_ms = 4, 2, 25.0
    log = []          # (event, worker) in wall order
    held = {"n": 0}
    locks = []

    def worker(name):
        client = service.connect()
        lock = recipes.Lock(client, "/locks/app", identifier=name)
        locks.append(lock)
        for _ in range(rounds):
            assert (yield from lock.co_acquire())
            held["n"] += 1
            assert held["n"] == 1, "two holders inside the critical section"
            log.append(("acquire", name))
            yield env.timeout(hold_ms)
            held["n"] -= 1
            log.append(("release", name))
            yield from lock.co_release()

    run_all(cloud, [env.process(worker(f"w{i}")) for i in range(workers)])

    grants = [name for kind, name in log if kind == "acquire"]
    assert len(grants) == workers * rounds          # no lost wakeups
    # FIFO: the first full cycle of grants repeats in the same order (the
    # sequence-node queue preserves enlistment order across rounds).
    assert grants[workers:] == grants[:workers]
    releases = len(grants)
    wake_ups = sum(lock.wake_ups for lock in locks)
    # Herd-free: each release wakes at most the one successor watching it.
    assert wake_ups <= releases


def test_lock_holder_eviction_wakes_exactly_one_successor(deployment):
    cloud, service = deployment
    env = cloud.env
    holder_client = service.connect()
    holder = recipes.Lock(holder_client, "/locks/app", identifier="holder")
    assert holder.acquire()

    waiters = []
    outcomes = []

    def waiter(name):
        client = service.connect()
        lock = recipes.Lock(client, "/locks/app", identifier=name)
        waiters.append(lock)
        assert (yield from lock.co_acquire())
        outcomes.append(name)
        yield from lock.co_release()

    procs = [env.process(waiter(f"w{i}")) for i in range(2)]
    cloud.run(until=cloud.now + 2_000)
    assert outcomes == []                         # lock genuinely held
    holder_client.alive = False                   # holder crashes
    cloud.run(until=AllOf(env, [procs[0]]))       # eviction releases the lock
    assert outcomes == ["w0"]                     # FIFO successor
    run_all(cloud, procs)
    assert outcomes == ["w0", "w1"]
    # The eviction woke only the immediate successor, which then released.
    assert sum(lock.wake_ups for lock in waiters) <= 2


def test_lock_nonblocking_and_timeout(deployment):
    cloud, service = deployment
    a, b = service.connect(), service.connect()
    lock_a = recipes.Lock(a, "/locks/app", identifier="a")
    lock_b = recipes.Lock(b, "/locks/app", identifier="b")
    assert lock_a.acquire()
    assert not lock_b.acquire(blocking=False)
    before = cloud.now
    assert not lock_b.acquire(timeout_ms=500.0)
    assert cloud.now - before >= 500.0
    # The failed attempts withdrew their contender nodes: the queue holds
    # only the owner, and release hands over cleanly.
    assert lock_a.contenders() == ["a"]
    lock_a.release()
    assert lock_b.acquire()
    lock_b.release()


# ---------------------------------------------------------------- Semaphore
def test_semaphore_bounds_concurrent_holders(deployment):
    cloud, service = deployment
    env = cloud.env
    max_leases, workers = 2, 5
    held = {"n": 0, "max": 0}
    done = []

    def worker(name):
        client = service.connect()
        sem = recipes.Semaphore(client, "/leases/gpu", max_leases=max_leases,
                                identifier=name)
        assert (yield from sem.co_acquire())
        held["n"] += 1
        held["max"] = max(held["max"], held["n"])
        assert held["n"] <= max_leases, "lease bound violated"
        # Hold long relative to the write-pipeline latency, so lease
        # concurrency genuinely materializes.
        yield env.timeout(3_000.0)
        held["n"] -= 1
        yield from sem.co_release()
        done.append(name)

    run_all(cloud, [env.process(worker(f"w{i}")) for i in range(workers)])
    assert len(done) == workers                   # nobody starved
    assert held["max"] == max_leases              # concurrency was real


# ---------------------------------------------------------------- Barrier
def test_barrier_blocks_until_removed(deployment):
    cloud, service = deployment
    env = cloud.env
    owner = service.connect()
    gate = recipes.Barrier(owner, "/gates/maint")
    assert gate.create()
    assert not gate.create()                      # already up

    released = []

    def waiter(name):
        client = service.connect()
        barrier = recipes.Barrier(client, "/gates/maint")
        assert (yield from barrier.co_wait())
        released.append((name, env.now))

    procs = [env.process(waiter(f"w{i}")) for i in range(3)]
    cloud.run(until=cloud.now + 3_000)
    assert released == []                         # gate holds everyone
    removed_at = cloud.now
    assert gate.remove()
    run_all(cloud, procs)
    assert len(released) == 3
    assert all(t >= removed_at for _name, t in released)
    # Waiting on a gate that is already down returns immediately.
    late = recipes.Barrier(service.connect(), "/gates/maint")
    assert late.wait(timeout_ms=1.0)


def test_double_barrier_synchronizes_enter_and_leave(deployment):
    cloud, service = deployment
    env = cloud.env
    group = 3
    arrived, entered, left = [], [], []

    def participant(name, delay):
        client = service.connect()
        barrier = recipes.DoubleBarrier(client, "/sync/job", group,
                                        identifier=name)
        yield env.timeout(delay)
        arrived.append(env.now)
        assert (yield from barrier.co_enter())
        entered.append(env.now)
        yield env.timeout(20.0)                   # the computation
        assert (yield from barrier.co_leave())
        left.append(env.now)

    procs = [env.process(participant(f"p{i}", 400.0 * i))
             for i in range(group)]
    run_all(cloud, procs)
    assert len(entered) == len(left) == group
    # Nobody enters before the last participant arrived, and nobody is
    # done leaving before every participant started leaving.
    assert min(entered) >= max(arrived)
    assert min(left) >= max(entered)


def test_double_barrier_immediate_leave_does_not_deadlock(deployment):
    """Regression: the completing participant used to delete the ``ready``
    gate at the top of leave(); with an asynchronous ack (on_commit) that
    could land before a straggler's enter-side watch delivery, leaving the
    straggler waiting forever on a gate that never recurs — and every
    leaver waiting on the straggler's presence node.  The gate is now torn
    down only by the last leaver."""
    cloud, service = deployment
    env = cloud.env
    group = 2
    finished = []

    def participant(name, delay):
        client = service.connect()
        barrier = recipes.DoubleBarrier(client, "/sync/fast", group,
                                        identifier=name)
        yield env.timeout(delay)
        assert (yield from barrier.co_enter())
        # No hold at all: the completer leaves the instant it enters.
        assert (yield from barrier.co_leave())
        finished.append(name)

    procs = [env.process(participant(f"p{i}", 800.0 * i))
             for i in range(group)]
    run_all(cloud, procs)
    assert sorted(finished) == ["p0", "p1"]
    # The last leaver tore the gate down: the barrier is reusable.
    cloud.run(until=cloud.now + 10_000)
    probe = service.connect()
    assert probe.exists("/sync/fast/ready") is None


# ---------------------------------------------------------------- Counter
def test_counter_concurrent_increments_lose_nothing(deployment):
    cloud, service = deployment
    env = cloud.env
    workers, increments = 4, 3

    def worker():
        client = service.connect()
        counter = recipes.Counter(client, "/stats/jobs")
        for _ in range(increments):
            yield from counter.co_add(1)

    run_all(cloud, [env.process(worker()) for _ in range(workers)])
    # Drain the distributor queues: a fresh session may legally read stale
    # until the last increment's replication lands (ack_policy=on_commit).
    cloud.run(until=cloud.now + 30_000)
    reader = recipes.Counter(service.connect(), "/stats/jobs")
    assert reader.value == workers * increments   # no lost update


# ---------------------------------------------------------------- Queue
def test_queue_claims_each_entry_exactly_once(deployment):
    cloud, service = deployment
    env = cloud.env
    producer = service.connect()
    queue = recipes.Queue(producer, "/queues/tasks")
    jobs = [f"job {i}".encode() for i in range(9)]
    for job in jobs:
        queue.put(job)
    assert queue.qsize() == len(jobs)

    claims = {}

    def consumer(name):
        client = service.connect()
        q = recipes.Queue(client, "/queues/tasks")
        claims[name] = []
        while True:
            data = yield from q.co_get()
            if data is None:
                return
            claims[name].append(data)

    run_all(cloud, [env.process(consumer(f"c{i}")) for i in range(3)])
    drained = [job for got in claims.values() for job in got]
    assert sorted(drained) == sorted(jobs)        # exactly once, none lost
    assert queue.is_empty()


def test_queue_blocking_get_wakes_on_put(deployment):
    cloud, service = deployment
    env = cloud.env
    got = []

    def consumer():
        client = service.connect()
        q = recipes.Queue(client, "/queues/tasks")
        data = yield from q.co_get(block=True)
        got.append(data)

    def producer():
        client = service.connect()
        q = recipes.Queue(client, "/queues/tasks")
        yield env.timeout(2_000.0)                # consumer waits first
        yield from q.co_put(b"late job")

    run_all(cloud, [env.process(consumer()), env.process(producer())])
    assert got == [b"late job"]

    # And a timed-out blocking get returns None.
    empty = recipes.Queue(service.connect(), "/queues/tasks")
    assert empty.get(block=True, timeout_ms=300.0) is None


# ---------------------------------------------------------------- Election
def test_election_succession_is_herd_free(deployment):
    cloud, service = deployment
    leadership = []
    elections = []
    for i in range(3):
        client = service.connect()
        election = recipes.Election(client, "/election",
                                    identifier=f"n{i}")
        is_leader = election.volunteer(
            on_leadership=lambda name=f"n{i}": leadership.append(name))
        assert is_leader == (i == 0)              # enlistment order leads
        elections.append(election)
    assert leadership == ["n0"]                   # immediate lead fires too
    assert elections[0].is_leader
    assert [e.watching for e in elections[1:]] == \
        [elections[0].node, elections[1].node]
    assert elections[0].contenders() == ["n0", "n1", "n2"]

    # The leader crashes; the heartbeat evicts its session, deleting the
    # ephemeral candidate node — exactly one successor is woken.
    elections[0].client.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert leadership == ["n0", "n1"]
    assert elections[1].is_leader
    assert not elections[2].is_leader             # n2 was not disturbed
    assert elections[2].wake_ups == 0             # herd-free succession
    assert elections[1].contenders() == ["n1", "n2"]

    # Voluntary resignation hands over the same way.
    elections[1].resign()
    cloud.run(until=cloud.now + 10_000)
    assert leadership == ["n0", "n1", "n2"]
    assert elections[2].is_leader


# ---------------------------------------------------------------- cache interop
@pytest.mark.parametrize("extra", [
    dict(),
    dict(distributor_enabled=True, ack_policy="on_commit"),
], ids=["inline", "distributor"])
def test_lock_contention_with_client_cache_enabled(extra):
    """Recipes ride the watch-invalidated read cache unchanged: contention
    results are identical with caching on (the guards, not freshness,
    carry correctness).

    Regression (pre-fix livelock): a session joining a watch instance
    between the consume's query and its removal was swept away unnotified,
    leaving its cached children entry guarded by a dead watch — the waiter
    then re-read the stale member list forever.  The guarded consume
    (id + session-list pin, re-query on conflict) closes the window; this
    lock loop under cache + distributor hits it reliably.
    """
    cloud, service = make_service(seed=77, leader_shards=4,
                                  client_cache_entries=64, **extra)
    env = cloud.env
    grants = []
    locks = []

    def worker(name):
        client = service.connect()
        lock = recipes.Lock(client, "/locks/app", identifier=name)
        locks.append(lock)
        for _ in range(2):
            assert (yield from lock.co_acquire())
            grants.append(name)
            yield env.timeout(10.0)
            yield from lock.co_release()

    run_all(cloud, [env.process(worker(f"w{i}")) for i in range(3)])
    assert len(grants) == 6
    assert grants[3:] == grants[:3]               # FIFO preserved
    assert sum(lock.wake_ups for lock in locks) <= 6
