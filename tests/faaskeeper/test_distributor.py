"""The asynchronous distributor stage: consistency against the visibility
watermark (read-your-writes, Z2 session order, Z4 epoch stalls), write
coalescing across batches, watch-fan-out ownership and accounting."""

import pytest

from repro.faaskeeper import FaaSKeeperConfig, SetDataOp
from repro.faaskeeper.layout import SYSTEM_STATE, replicated_key
from .conftest import make_service

TWO_REGIONS = ["us-east-1", "eu-west-1"]


def settle(cloud, ms=5000):
    cloud.run(until=cloud.now + ms)


def make_distributed(seed=2024, regions=TWO_REGIONS, shards=1,
                     ack="on_commit", **kw):
    return make_service(seed=seed, regions=list(regions),
                        leader_shards=shards, distributor_enabled=True,
                        ack_policy=ack, **kw)


# ---------------------------------------------------------------- config
def test_ack_on_commit_requires_distributor():
    with pytest.raises(ValueError):
        FaaSKeeperConfig(ack_policy="on_commit")
    with pytest.raises(ValueError):
        FaaSKeeperConfig(ack_policy="bogus")
    with pytest.raises(ValueError):
        FaaSKeeperConfig(distributor_enabled=True, distributor_batch=0)


def test_distributor_deploys_one_queue_and_function_per_region():
    cloud, service = make_distributed()
    stage = service.distribution
    assert set(stage.queues) == set(TWO_REGIONS)
    assert stage.fns["us-east-1"].spec.name == "fk-distributor"
    assert stage.fns["eu-west-1"].spec.name == "fk-distributor-eu-west-1"
    assert stage.logics["us-east-1"].primary
    assert not stage.logics["eu-west-1"].primary
    # default deployments carry no distributor at all
    _cloud, plain = make_service()
    assert plain.distribution is None and plain.visibility_board is None


# ---------------------------------------------------------------- RYW
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("ack", ["on_commit", "on_replicate"])
def test_read_your_writes_through_the_watermark(shards, ack):
    cloud, service = make_distributed(shards=shards, ack=ack)
    client = service.connect()
    client.create("/ryw", b"")
    for i in range(6):
        client.set_data("/ryw", f"v{i}".encode())
        data, stat = client.get_data("/ryw")
        assert data == f"v{i}".encode()
    settle(cloud)


@pytest.mark.parametrize("shards", [1, 4])
def test_pipelined_writes_then_read_sees_the_last(shards):
    """Async writes ack before replication; a read issued after them must
    wait for the region watermark, not just the responses."""
    cloud, service = make_distributed(shards=shards)
    client = service.connect()
    client.create("/p", b"")
    futures = [client.set_data_async("/p", f"b{i}".encode())
               for i in range(8)]
    data, _stat = client.get_data("/p")
    assert data == b"b7"
    assert all(f.done for f in futures)
    settle(cloud)


def test_reader_waits_for_its_own_region_only():
    """The barrier rides the watermark of the region the session reads
    from; a second-region session still sees its own writes there."""
    cloud, service = make_distributed()
    remote = service.connect(region="eu-west-1")
    remote.create("/r", b"")
    remote.set_data("/r", b"remote")
    data, _ = remote.get_data("/r")
    assert data == b"remote"
    settle(cloud)


# ---------------------------------------------------------------- Z2
@pytest.mark.parametrize("shards", [1, 4])
def test_z2_session_writes_commit_in_request_order(shards):
    cloud, service = make_distributed(shards=shards)
    client = service.connect()
    client.create("/a", b"")
    client.create("/b", b"")
    futures = []
    for i in range(5):
        futures.append(client.set_data_async("/a", f"a{i}".encode()))
        futures.append(client.set_data_async("/b", f"b{i}".encode()))
    settle(cloud, 60_000)
    txids = [f.event.value.txid for f in futures]
    assert all(f.done and f.event.ok for f in futures)
    # Monotone txids across the session's interleaved paths = commits
    # followed request order even when the paths live on distinct shards.
    assert txids == sorted(txids)
    assert service.connect().get_data("/a")[0] == b"a4"
    settle(cloud)


# ---------------------------------------------------------------- Z4
@pytest.mark.parametrize("shards", [1, 4])
def test_z4_notification_before_later_data(shards):
    """A client with a pending notification for txid u must not read data
    of txid v > u before the notification is delivered — the epoch ids now
    travel through the distributor's watch stage."""
    cloud, service = make_distributed(shards=shards)
    writer = service.connect()
    watcher = service.connect()
    order = []
    writer.create("/a", b"")
    writer.create("/b", b"")
    # Another session's read may legally miss a just-acked create until the
    # distributor lands it (ZooKeeper-style staleness); let it replicate.
    settle(cloud, 5_000)
    watcher.get_data("/a", watch=lambda ev: order.append(("watch", ev.txid)))
    writer.set_data("/a", b"x")
    w2 = writer.set_data("/b", b"y")
    data, stat = watcher.get_data("/b")
    order.append(("read-b", stat.modified_tx))
    if stat.modified_tx >= w2.txid:
        assert order[0][0] == "watch"
    settle(cloud)


def test_z4_epoch_counters_cleared_after_distributor_fanout():
    cloud, service = make_distributed()
    client = service.connect()
    client.create("/a", b"")
    client.get_data("/a", watch=lambda ev: None)
    client.set_data("/a", b"x")
    settle(cloud, 10_000)
    for region in service.config.regions:
        raw = service.system_store.table(SYSTEM_STATE).raw(f"epoch:{region}")
        assert raw["items"] == []


def test_notification_implies_new_data_readable():
    """Replicate-then-notify survives the async split: when a watch event
    arrives, the triggering write is already visible in every region, so a
    read issued from the callback observes the new data (inline step ➌
    always preceded step ➍; the distributor defers consume + fan-out
    behind the visibility watermark to keep that order)."""
    cloud, service = make_distributed()
    writer = service.connect()
    watcher = service.connect(region="eu-west-1")
    writer.create("/n", b"v1")
    settle(cloud)
    reads = []
    watcher.get_data("/n", watch=lambda ev: reads.append(
        watcher.get_data_async("/n")))
    writer.set_data("/n", b"v2")
    settle(cloud, 60_000)
    assert len(reads) == 1 and reads[0].done
    data, _stat = reads[0].event.value
    assert data == b"v2"


def test_watch_fanout_owned_by_distributor():
    cloud, service = make_distributed()
    client = service.connect()
    events = []
    client.create("/w", b"")
    client.get_data("/w", watch=events.append)
    client.set_data("/w", b"x")
    settle(cloud)
    assert len(events) == 1
    assert service.watch_logic.deliveries_by_origin == {"distributor": 1}


# ---------------------------------------------------------------- watermark
def test_replicated_tx_watermark_written_to_system_store():
    cloud, service = make_distributed()
    client = service.connect()
    client.create("/wm", b"")
    res = client.set_data("/wm", b"x")
    settle(cloud, 10_000)
    for region in service.config.regions:
        raw = service.system_store.table(SYSTEM_STATE).raw(
            replicated_key(region))
        assert raw["txid"] >= res.txid
        assert service.visibility_board.watermark[region] >= res.txid


def test_cross_batch_coalescing_skips_superseded_writes():
    """A burst of same-path writes acked at commit time collapses to far
    fewer user-store writes than the leader's inline pipeline would pay,
    and the final image is the last acknowledged value."""
    cloud, service = make_distributed()
    client = service.connect()
    client.create("/hot", b"")
    futures = [client.set_data_async("/hot", f"v{i}".encode())
               for i in range(24)]
    settle(cloud, 120_000)
    assert all(f.done and f.event.ok for f in futures)
    assert client.get_data("/hot")[0] == b"v23"
    stats = service.distribution.stats()
    assert stats["coalesced_writes"] > 0
    settle(cloud)


# ---------------------------------------------------------------- multi
@pytest.mark.parametrize("shards", [1, 4])
def test_multi_through_the_distributor(shards):
    cloud, service = make_distributed(shards=shards)
    client = service.connect()
    client.create("/m", b"")
    for i in range(4):
        client.create(f"/m/n{i}", b"")
    results = client.multi([SetDataOp(f"/m/n{i}", b"batch") for i in range(4)])
    assert all(r.txid == results[0].txid for r in results)
    for i in range(4):
        assert client.get_data(f"/m/n{i}")[0] == b"batch"
    settle(cloud)


# ---------------------------------------------------------------- cache
def test_client_cache_respects_watermark():
    """A cache hit must not surface before the watermark covers the
    session's acked writes, and the session's own writes still invalidate
    the touched entries (read-your-writes through the cache)."""
    cloud, service = make_distributed(client_cache_entries=16)
    client = service.connect()
    client.create("/c", b"v0")
    assert client.get_data("/c")[0] == b"v0"   # miss, admits entry
    assert client.get_data("/c")[0] == b"v0"   # hit
    client.set_data("/c", b"v1")               # acks before replication
    assert client.get_data("/c")[0] == b"v1"   # invalidated + waited
    settle(cloud)
    assert client._cache.hits >= 1


# ---------------------------------------------------------------- watch knob
def test_watch_parallel_auto_resolution():
    assert not FaaSKeeperConfig().watch_parallel_enabled
    # Sharded distributor-off deployments keep the PR1 fingerprint: auto
    # turns the parallel step ➍ on only where the leader no longer runs
    # it inline anyway (distributor deployments) — elsewhere it is opt-in.
    assert not FaaSKeeperConfig(leader_shards=4).watch_parallel_enabled
    assert FaaSKeeperConfig(distributor_enabled=True).watch_parallel_enabled
    assert FaaSKeeperConfig(watch_parallel=True).watch_parallel_enabled
    assert not FaaSKeeperConfig(distributor_enabled=True,
                                watch_parallel=False).watch_parallel_enabled


def test_watch_parallel_leader_preserves_semantics_and_is_faster():
    """Opt-in parallel step ➍ in the inline leader: node + parent watch
    round trips overlap for create/delete, with identical watch and data
    semantics."""
    def run(parallel):
        cloud, service = make_service(watch_parallel=parallel)
        client = service.connect()
        watcher = service.connect()
        client.create("/wp", b"")
        data_events, child_events = [], []
        watcher.get_data("/wp", watch=data_events.append)
        watcher.get_children("/wp", watch=child_events.append)
        t0 = cloud.now
        client.create("/wp/kid", b"")     # parent children-watch fires
        create_ms = cloud.now - t0
        client.set_data("/wp", b"x")      # node data-watch fires
        settle(cloud)
        return data_events, child_events, create_ms

    seq = run(False)
    par = run(True)
    for events_seq, events_par in zip(seq[:2], par[:2]):
        assert len(events_seq) == len(events_par) == 1
        assert events_seq[0].type == events_par[0].type
        assert events_seq[0].path == events_par[0].path
    assert par[2] < seq[2]  # overlapped node+parent watch round trips


# ---------------------------------------------------------------- accounting
def test_invocation_accounting_splits_out_the_distributor():
    cloud, service = make_distributed()
    client = service.connect()
    client.create("/acct", b"")
    for i in range(5):
        client.set_data("/acct", b"x" * 256)
    settle(cloud, 10_000)
    split = service.cost_breakdown()
    assert split["distributor"] > 0
    assert split["leader"] > 0
    # default deployments report a zero distributor share
    _cloud2, plain = make_service()
    c2 = plain.connect()
    c2.create("/acct", b"")
    assert plain.cost_breakdown()["distributor"] == 0.0


def test_ack_on_commit_is_faster_than_inline_replication():
    """The acceptance property at test scale: client-perceived write
    latency at regions=2 improves by >= 30% once the distributor owns
    replication and the ack moves to commit time."""
    def median_write(distributor):
        cloud, service = make_service(
            regions=list(TWO_REGIONS), distributor_enabled=distributor,
            ack_policy="on_commit" if distributor else "on_replicate")
        client = service.connect()
        client.create("/lat", b"")
        samples = []
        for _ in range(15):
            t0 = cloud.now
            client.set_data("/lat", b"x" * 512)
            samples.append(cloud.now - t0)
        settle(cloud, 30_000)
        samples.sort()
        return samples[len(samples) // 2]

    assert median_write(True) < 0.7 * median_write(False)
