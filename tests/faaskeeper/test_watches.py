"""Watch semantics: registration, one-shot firing, ordering (Z4)."""

import pytest

from repro.faaskeeper import EventType
from .conftest import make_service


def settle(cloud, ms=3000):
    cloud.run(until=cloud.now + ms)


def test_data_watch_fires_on_set(service, client):
    events = []
    client.create("/a", b"v0")
    client.get_data("/a", watch=events.append)
    client.set_data("/a", b"v1")
    settle(service.cloud)
    assert len(events) == 1
    assert events[0].type == EventType.NODE_DATA_CHANGED
    assert events[0].path == "/a"
    assert events[0].txid > 0


def test_watch_is_one_shot(service, client):
    events = []
    client.create("/a", b"")
    client.get_data("/a", watch=events.append)
    client.set_data("/a", b"1")
    client.set_data("/a", b"2")
    settle(service.cloud)
    assert len(events) == 1


def test_rearmed_watch_fires_again(service, client):
    events = []
    client.create("/a", b"")
    client.get_data("/a", watch=events.append)
    client.set_data("/a", b"1")
    settle(service.cloud)
    client.get_data("/a", watch=events.append)
    client.set_data("/a", b"2")
    settle(service.cloud)
    assert len(events) == 2


def test_exists_watch_fires_on_create(service, client):
    events = []
    assert client.exists("/later", watch=events.append) is None
    client.create("/later", b"")
    settle(service.cloud)
    assert len(events) == 1
    assert events[0].type == EventType.NODE_CREATED


def test_data_watch_fires_on_delete(service, client):
    events = []
    client.create("/a", b"")
    client.get_data("/a", watch=events.append)
    client.delete("/a")
    settle(service.cloud)
    assert len(events) == 1
    assert events[0].type == EventType.NODE_DELETED


def test_children_watch_fires_on_child_create(service, client):
    events = []
    client.create("/p")
    client.get_children("/p", watch=events.append)
    client.create("/p/kid")
    settle(service.cloud)
    assert len(events) == 1
    assert events[0].type == EventType.NODE_CHILDREN_CHANGED
    assert events[0].path == "/p"


def test_children_watch_fires_on_child_delete(service, client):
    events = []
    client.create("/p")
    client.create("/p/kid")
    client.get_children("/p", watch=events.append)
    client.delete("/p/kid")
    settle(service.cloud)
    assert len(events) == 1


def test_children_watch_not_fired_on_data_change(service, client):
    events = []
    client.create("/p")
    client.create("/p/kid")
    client.get_children("/p", watch=events.append)
    client.set_data("/p/kid", b"x")
    client.set_data("/p", b"y")
    settle(service.cloud)
    assert events == []


def test_multiple_sessions_share_watch_instance(service):
    c1, c2 = service.connect(), service.connect()
    e1, e2 = [], []
    c1.create("/a", b"")
    c1.get_data("/a", watch=e1.append)
    c2.get_data("/a", watch=e2.append)
    c1.set_data("/a", b"x")
    settle(service.cloud)
    assert len(e1) == 1
    assert len(e2) == 1
    assert e1[0].txid == e2[0].txid


def test_watcher_sees_notification_before_later_data(service):
    """Z4: a client with a pending notification for txid u must not read
    data of txid v > u before the notification is delivered."""
    writer = service.connect()
    watcher = service.connect()
    order = []

    writer.create("/a", b"")
    writer.create("/b", b"")
    watcher.get_data("/a", watch=lambda ev: order.append(("watch", ev.txid)))

    # Two writes: the first triggers the watch, the second touches /b.
    w1 = writer.set_data("/a", b"x")
    w2 = writer.set_data("/b", b"y")

    data, stat = watcher.get_data("/b")
    order.append(("read-b", stat.modified_tx))
    # If the read returned /b's new version, the watch must already be there.
    if stat.modified_tx >= w2.txid:
        assert order[0][0] == "watch"


def test_epoch_cleared_after_delivery(service, client):
    events = []
    client.create("/a", b"")
    client.get_data("/a", watch=events.append)
    client.set_data("/a", b"x")
    settle(service.cloud, 5000)
    for region in service.config.regions:
        raw = service.system_store.table("fk-system-state").raw(
            f"epoch:{region}")
        assert raw["items"] == []


def test_watch_into_closed_session_is_dropped(service):
    c1, c2 = service.connect(), service.connect()
    events = []
    c1.create("/a", b"")
    c2.get_data("/a", watch=events.append)
    c2.close()
    c1.set_data("/a", b"x")
    settle(service.cloud)
    assert events == []  # no delivery to a closed session


def test_watch_on_sequential_child(service, client):
    events = []
    client.create("/q")
    client.get_children("/q", watch=events.append)
    client.create("/q/n-", sequence=True)
    settle(service.cloud)
    assert len(events) == 1
