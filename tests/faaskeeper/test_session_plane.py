"""Sharded session plane: partitioned heartbeat sweeps, per-shard watch
tables, batched registration — and the shards=1 bit-for-bit gate.

``session_plane_shards=1`` (the default) must be the paper's flat plane,
not a near-copy: same event sequence, same virtual-clock timings, same
metered cost.  The sharded topology keeps every protocol (ephemeral-first
eviction per shard, guarded watch removal, TTL refresh) and only splits
the *tables and sweeps* they run over.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.context import OpContext
from repro.cloud.kvstore import scan_segment_of
from repro.faaskeeper import FaaSKeeperConfig
from repro.faaskeeper.layout import (
    SYSTEM_SESSIONS,
    SYSTEM_WATCHES,
    session_shard_of,
    watch_shard_of,
    watch_shard_table,
)
from .conftest import make_service


# ------------------------------------------------------------ shard maps
def test_watch_and_session_shard_maps_are_stable():
    assert watch_shard_table(0) == SYSTEM_WATCHES
    assert watch_shard_table(2) == f"{SYSTEM_WATCHES}-2"
    assert watch_shard_of("/any/path", 1) == 0
    assert session_shard_of("s123", 1) == 0
    # covers every shard over a modest population
    assert {watch_shard_of(f"/p{i}", 4) for i in range(64)} == {0, 1, 2, 3}
    assert {session_shard_of(f"s{i}", 4) for i in range(64)} == {0, 1, 2, 3}
    # the session map mirrors the KV layer's parallel-scan segments, so a
    # sweep shard scanning segment i sees exactly its sessions
    for i in range(32):
        assert session_shard_of(f"s{i}", 4) == scan_segment_of(f"s{i}", 4)


def test_config_validates_session_plane_shards():
    with pytest.raises(ValueError):
        FaaSKeeperConfig(session_plane_shards=0)
    assert FaaSKeeperConfig().session_plane_shards == 1


# ------------------------------------------------------------ fingerprint
def _workload_fingerprint(seed, **config_kwargs):
    """Heartbeat + eviction + watch activity, run past two sweep periods."""
    cloud, service = make_service(seed=seed, **config_kwargs)
    c = service.connect()
    events = []
    c.create("/a", b"")
    c.create("/a/x", b"v0", ephemeral=True)
    hits = []
    c.get_data("/a/x", watch=lambda ev: hits.append(ev.txid))
    res = c.set_data("/a/x", b"v1")
    events.append((res.txid, res.version))
    dead = service.connect()
    dead.create("/a/dead", b"", ephemeral=True)
    dead.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)     # two sweeps + eviction
    events.append((dead.closed, dead.evicted, dead.closed_at))
    events.append(service.heartbeat_logic.evictions)
    events.append(tuple(hits))
    events.append(round(cloud.now, 6))
    events.append(round(sum(cloud.meter.by_service().values()), 12))
    return events


def test_shards1_identical_to_default_flat_plane():
    """Acceptance gate: session_plane_shards=1 must be the paper's session
    plane bit-for-bit — same sweeps, evictions, watch events, virtual-clock
    timing and metered cost."""
    assert _workload_fingerprint(91) == \
        _workload_fingerprint(91, session_plane_shards=1)


def test_probe_interval_zero_is_invisible():
    """storage_breaker_probe_interval_ms=0 (default) is the legacy breaker:
    the knob must not move the fingerprint when it is off."""
    assert _workload_fingerprint(92) == \
        _workload_fingerprint(92, storage_breaker_probe_interval_ms=0.0)


# ------------------------------------------------------------ topology
def test_flat_plane_deploys_legacy_topology():
    _cloud, service = make_service(seed=93)
    assert [f.spec.name for f in service.heartbeat_fns] == ["fk-heartbeat"]
    assert service.heartbeat_fn is service.heartbeat_fns[0]
    assert service.heartbeat_task is service.heartbeat_tasks[0]
    assert service.watch_registry.tables == [SYSTEM_WATCHES]
    assert service.heartbeat_task.offset_ms == 0.0


def test_sharded_plane_deploys_one_sweep_and_watch_table_per_shard():
    _cloud, service = make_service(seed=94, session_plane_shards=4)
    assert [f.spec.name for f in service.heartbeat_fns] == [
        "fk-heartbeat", "fk-heartbeat-1", "fk-heartbeat-2", "fk-heartbeat-3"]
    assert [logic.shard for logic in service.heartbeat_logics] == [0, 1, 2, 3]
    assert all(logic.shards == 4 for logic in service.heartbeat_logics)
    assert service.watch_registry.tables == [
        SYSTEM_WATCHES, f"{SYSTEM_WATCHES}-1",
        f"{SYSTEM_WATCHES}-2", f"{SYSTEM_WATCHES}-3"]
    for table in service.watch_registry.tables:
        assert service.system_store.table(table) is not None
    # shard sweeps are phase-staggered; shard 0 keeps the flat schedule
    offsets = [t.offset_ms for t in service.heartbeat_tasks]
    assert offsets[0] == 0.0
    assert offsets == sorted(offsets) and len(set(offsets)) == 4


# ------------------------------------------------------------ behaviour
def test_sharded_sweeps_cover_every_session_and_evict_dead_ones():
    cloud, service = make_service(seed=95, session_plane_shards=4)
    clients = service.connect_many(40)
    dead = [c for i, c in enumerate(clients) if i % 4 == 0]
    for c in dead:
        c.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    for c in dead:
        assert c.closed and c.evicted and c.closed_at is not None
    live = [c for c in clients if c not in dead]
    assert all(not c.closed for c in live)
    # every shard swept at least once, and only its own slice
    snap = service.metrics_snapshot()
    per_shard = snap["fk_heartbeat_shard_sweeps_total"]["values"]
    assert set(per_shard) == {f'shard="{i}"' for i in range(4)}
    assert all(v >= 1 for v in per_shard.values())


def test_sharded_and_flat_plane_agree_on_evictions():
    def outcome(shards):
        cloud, service = make_service(seed=96, session_plane_shards=shards)
        clients = [service.connect() for _ in range(12)]
        for c in clients[::3]:
            c.create(f"/eph-{c.session_id}", b"", ephemeral=True)
            c.alive = False
        cloud.run(until=cloud.now + 3 * 60_000)
        return sorted((c.session_id, c.closed, c.evicted) for c in clients)

    assert outcome(1) == outcome(4)


def test_watches_route_to_their_shard_table_and_still_deliver():
    cloud, service = make_service(seed=97, session_plane_shards=4)
    c = service.connect()
    reg = service.watch_registry
    # two paths on different watch shards
    paths = [f"/w{i}" for i in range(32)]
    a = next(p for p in paths if watch_shard_of(p, 4) == 0)
    b = next(p for p in paths if watch_shard_of(p, 4) != 0)
    for p in (a, b):
        c.create(p, b"")
    hits = []
    c.get_data(a, watch=lambda ev: hits.append(("a", ev.path)))
    c.get_data(b, watch=lambda ev: hits.append(("b", ev.path)))
    # instances persisted in the owning shard's table, nowhere else
    assert service.system_store.table(reg.table_for(a)).raw(a) is not None
    assert service.system_store.table(reg.table_for(b)).raw(b) is not None
    assert reg.table_for(a) != reg.table_for(b)
    assert service.system_store.table(reg.table_for(a)).raw(b) is None
    c.set_data(a, b"x")
    c.set_data(b, b"y")
    cloud.run(until=cloud.now + 5_000)
    assert sorted(hits) == [("a", a), ("b", b)]
    # fan-out attribution per watch shard
    snap = service.metrics_snapshot()
    shards_hit = set(snap["fk_watch_shard_deliveries_total"]["values"])
    assert shards_hit == {f'watch_shard="{watch_shard_of(a, 4)}"',
                          f'watch_shard="{watch_shard_of(b, 4)}"'}


def test_watch_reregistration_lands_on_a_different_shard():
    """Satellite edge case: a session whose watch fired re-arms on a path
    hashing to another watch shard — both shard tables must carry the
    session's instances over time, and the GC's guarded removal must
    reclaim each on its own shard once the session dies."""
    cloud, service = make_service(seed=98, session_plane_shards=4)
    reg = service.watch_registry
    paths = [f"/r{i}" for i in range(64)]
    a = next(p for p in paths if watch_shard_of(p, 4) == 1)
    b = next(p for p in paths if watch_shard_of(p, 4) == 2)
    owner = service.connect()
    for p in (a, b):
        owner.create(p, b"")
    watcher = service.connect()
    fired = []
    watcher.get_data(a, watch=lambda ev: fired.append(ev.path))
    owner.set_data(a, b"1")                    # consumes the shard-1 watch
    cloud.run(until=cloud.now + 5_000)
    assert fired == [a]
    watcher.get_data(b, watch=lambda ev: fired.append(ev.path))
    assert service.system_store.table(reg.table_for(b)).raw(b) is not None
    # watcher dies silently: the GC must reclaim the un-fired shard-2
    # instance through the per-shard guarded-removal path
    watcher.alive = False
    cloud.run(until=cloud.now + 3 * 60_000)
    assert watcher.closed and watcher.evicted
    service.gc_fn.invoke(None)
    cloud.run(until=cloud.now + 10_000)
    item = service.system_store.table(reg.table_for(b)).raw(b)
    insts = (item or {}).get("inst") or {}
    assert all(watcher.session_id not in (i.get("sessions") or [])
               for i in insts.values())


def test_session_closing_mid_sweep_at_shard_boundary():
    """Satellite edge case: a session closes between a shard sweep's scan
    and its ping — the sweep must complete, enqueue no double close, and
    the other shards' sweeps must never see the session at all."""
    cloud, service = make_service(seed=99, session_plane_shards=4)
    clients = service.connect_many(16)
    victim = clients[0]
    shard = session_shard_of(victim.session_id, 4)
    fn = service.heartbeat_fns[shard]
    # fire the owning shard's sweep manually and close the victim while
    # the sweep is mid-flight (after the scan latency started)
    done = fn.invoke(None)
    cloud.run(until=cloud.now + 1.0)           # sweep is scanning
    victim.close()
    cloud.run(until=done)
    assert victim.closed and not victim.evicted
    # the record is gone and later sweeps (any shard) are unaffected
    assert service.system_store.table(SYSTEM_SESSIONS).raw(
        victim.session_id) is None
    for other in service.heartbeat_fns:
        other.invoke(None)
    cloud.run(until=cloud.now + 10_000)
    assert sum(1 for c in clients if c.closed) == 1


def test_ttl_refresh_racing_eviction_is_absorbed():
    """Satellite edge case: with TTL-native cleanup, a session that answers
    the scan but closes before the TTL refresh lands must not resurrect —
    the conditional refresh hits ConditionFailed and is dropped."""
    cloud, service = make_service(seed=100, session_plane_shards=4,
                                  user_store="mem",
                                  ephemeral_ttl_enabled=True)
    clients = service.connect_many(8)
    victim = clients[3]
    shard = session_shard_of(victim.session_id, 4)
    fn = service.heartbeat_fns[shard]
    done = fn.invoke(None)
    cloud.run(until=cloud.now + 1.0)           # scan in flight, pings next
    victim.close()                              # record deleted mid-sweep
    cloud.run(until=done)
    assert victim.closed
    assert service.system_store.table(SYSTEM_SESSIONS).raw(
        victim.session_id) is None
    # the surviving sessions all kept a refreshed record
    for c in clients:
        if c is victim:
            continue
        assert service.system_store.table(SYSTEM_SESSIONS).raw(
            c.session_id) is not None


# ------------------------------------------------------------ registration
def test_connect_many_matches_serial_connects():
    def register(batched):
        cloud, service = make_service(seed=101)
        if batched:
            clients = service.connect_many(10, batch_size=4)
        else:
            clients = [service.connect() for _ in range(10)]
        # every session usable: a write and a read each
        clients[0].create("/shared", b"")
        for i, c in enumerate(clients):
            c.create(f"/shared/n{i}", b"")
        assert clients[3].get_children("/shared") == \
            sorted(f"n{i}" for i in range(10))
        records = service.system_store.table(SYSTEM_SESSIONS)
        return (sorted(c.session_id for c in clients),
                sorted(sid for c in clients
                       if records.raw(c.session_id) is not None
                       for sid in [c.session_id]),
                service.active_sessions,
                service.heartbeat_task.enabled)

    assert register(batched=True) == register(batched=False)


def test_connect_many_batches_the_session_writes():
    cloud, service = make_service(seed=102)
    table = service.system_store.table(SYSTEM_SESSIONS)
    before_writes = table.write_count
    t0 = cloud.now
    service.connect_many(50, batch_size=25)
    batched_ms = cloud.now - t0
    assert table.write_count - before_writes == 50   # per-item accounting
    # two BatchWriteItem round trips beat 50 serial conditional puts
    cloud2, service2 = make_service(seed=102)
    t0 = cloud2.now
    for _ in range(50):
        service2.connect()
        cloud2.run(until=cloud2.now + 5.0)  # serial puts land one by one
    serial_ms = cloud2.now - t0
    assert batched_ms < serial_ms / 3


def test_connect_many_validates_and_handles_empty():
    _cloud, service = make_service(seed=103)
    assert service.connect_many(0) == []
    with pytest.raises(ValueError):
        service.connect_many(5, batch_size=0)
