"""Garbage-collection function tests (extension feature)."""

import pytest

from repro.cloud import OpContext
from .conftest import make_service


def test_gc_collects_tombstones(cloud=None):
    cloud, service = make_service(seed=200)
    c = service.connect()
    c.create("/a")
    c.delete("/a")
    nodes = service.system_store.table("fk-system-nodes")
    assert nodes.raw("/a") is not None  # tombstone present
    assert nodes.raw("/a")["exists"] is False
    cloud.run(until=cloud.now + 10 * 60_000)  # grace + two sweeps
    assert nodes.raw("/a") is None
    assert service.gc_logic.collected_tombstones >= 1


def test_gc_spares_live_nodes():
    cloud, service = make_service(seed=201)
    c = service.connect()
    c.create("/keep", b"x")
    cloud.run(until=cloud.now + 10 * 60_000)
    nodes = service.system_store.table("fk-system-nodes")
    assert nodes.raw("/keep")["exists"] is True
    data, _ = c.get_data("/keep")
    assert data == b"x"


def test_gc_collects_phantom_lock_items():
    """A failed create leaves an item with only a lock; GC sweeps it."""
    cloud, service = make_service(seed=202)
    c = service.connect()

    def hog():
        handle = yield from service.node_lock.acquire(OpContext(), "/phantom")
        assert handle is not None
        released = yield from service.node_lock.release(OpContext(), handle)
        assert released

    cloud.run_process(hog())
    nodes = service.system_store.table("fk-system-nodes")
    assert nodes.raw("/phantom") == {}  # empty phantom item
    cloud.run(until=cloud.now + 10 * 60_000)
    assert nodes.raw("/phantom") is None
    assert service.gc_logic.collected_phantoms >= 1


def test_gc_drops_watches_of_dead_sessions():
    cloud, service = make_service(seed=203)
    c1 = service.connect()
    c2 = service.connect()
    c1.create("/w", b"")
    c2.get_data("/w", watch=lambda ev: None)
    c2.close()
    watches = service.system_store.table("fk-system-watches")
    assert watches.raw("/w")["inst"].get("data") is not None
    cloud.run(until=cloud.now + 10 * 60_000)
    assert not watches.raw("/w")["inst"].get("data")
    assert service.gc_logic.collected_watches >= 1


def test_gc_keeps_watches_of_live_sessions():
    cloud, service = make_service(seed=204)
    c1 = service.connect()
    c1.create("/w", b"")
    c1.get_data("/w", watch=lambda ev: None)
    cloud.run(until=cloud.now + 10 * 60_000)
    watches = service.system_store.table("fk-system-watches")
    assert watches.raw("/w")["inst"].get("data") is not None


def test_gc_suspended_at_scale_to_zero():
    cloud, service = make_service(seed=205)
    c = service.connect()
    assert service.gc_task.enabled
    c.close()
    assert not service.gc_task.enabled
    fired = service.gc_task.fired
    cloud.run(until=cloud.now + 30 * 60_000)
    assert service.gc_task.fired == fired


def test_recreate_works_after_gc():
    cloud, service = make_service(seed=206)
    c = service.connect()
    c.create("/a", b"v1")
    c.delete("/a")
    cloud.run(until=cloud.now + 10 * 60_000)  # tombstone collected
    c.create("/a", b"v2")
    data, stat = c.get_data("/a")
    assert data == b"v2"
    assert stat.version == 0
