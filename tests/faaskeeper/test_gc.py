"""Garbage-collection function tests (extension feature)."""

from types import SimpleNamespace

import pytest

from repro.cloud import OpContext
from .conftest import make_service


def test_gc_collects_tombstones(cloud=None):
    cloud, service = make_service(seed=200)
    c = service.connect()
    c.create("/a")
    c.delete("/a")
    nodes = service.system_store.table("fk-system-nodes")
    assert nodes.raw("/a") is not None  # tombstone present
    assert nodes.raw("/a")["exists"] is False
    cloud.run(until=cloud.now + 10 * 60_000)  # grace + two sweeps
    assert nodes.raw("/a") is None
    assert service.gc_logic.collected_tombstones >= 1


def test_gc_spares_live_nodes():
    cloud, service = make_service(seed=201)
    c = service.connect()
    c.create("/keep", b"x")
    cloud.run(until=cloud.now + 10 * 60_000)
    nodes = service.system_store.table("fk-system-nodes")
    assert nodes.raw("/keep")["exists"] is True
    data, _ = c.get_data("/keep")
    assert data == b"x"


def test_gc_collects_phantom_lock_items():
    """A failed create leaves an item with only a lock; GC sweeps it."""
    cloud, service = make_service(seed=202)
    c = service.connect()

    def hog():
        handle = yield from service.node_lock.acquire(OpContext(), "/phantom")
        assert handle is not None
        released = yield from service.node_lock.release(OpContext(), handle)
        assert released

    cloud.run_process(hog())
    nodes = service.system_store.table("fk-system-nodes")
    assert nodes.raw("/phantom") == {}  # empty phantom item
    cloud.run(until=cloud.now + 10 * 60_000)
    assert nodes.raw("/phantom") is None
    assert service.gc_logic.collected_phantoms >= 1


def test_gc_drops_watches_of_dead_sessions():
    cloud, service = make_service(seed=203)
    c1 = service.connect()
    c2 = service.connect()
    c1.create("/w", b"")
    c2.get_data("/w", watch=lambda ev: None)
    c2.close()
    watches = service.system_store.table("fk-system-watches")
    assert watches.raw("/w")["inst"].get("data") is not None
    cloud.run(until=cloud.now + 10 * 60_000)
    assert not watches.raw("/w")["inst"].get("data")
    assert service.gc_logic.collected_watches >= 1


def test_gc_watch_sweep_spares_instance_reregistered_during_sweep():
    """Regression: the sweeper removed ``inst.<wtype>`` unconditionally from
    its scan snapshot.  A watch instance consumed (fired) and re-registered
    by a live session between the scan and the update was silently deleted
    and never fired again.  The removal is now conditional on the instance
    id observed at scan time."""
    cloud, service = make_service(seed=207)
    alive = service.connect()
    ghost = service.connect()
    alive.create("/w", b"")
    ghost.get_data("/w", watch=lambda ev: None)  # dead session's watch
    ghost_sid = ghost.session_id
    ghost.close()  # session record gone; instance (ghost only) is sweepable

    watches_tbl = service.system_store.table("fk-system-watches")
    old_inst = watches_tbl.raw("/w")["inst"]["data"]
    assert old_inst["sessions"] == [ghost_sid]

    # Drive the sweep manually so the scan-to-update window is observable.
    fctx = SimpleNamespace(env=cloud.env, ctx=OpContext(
        region=service.config.primary_region))
    sweep = cloud.env.process(service.gc_logic._sweep_watches(fctx))
    reads_before = watches_tbl.read_count
    while watches_tbl.read_count == reads_before and not sweep.triggered:
        cloud.run(until=cloud.now + 0.05)
    assert not sweep.triggered  # scan done, removal not yet applied

    # In the window: the old instance is consumed by a write and a live
    # session re-registers, minting a fresh instance id.
    watches_tbl._store("/w", {"inst": {"data": {
        "id": "w-fresh|/w|data", "sessions": [alive.session_id]}}})

    cloud.run(until=sweep)
    inst = watches_tbl.raw("/w")["inst"].get("data")
    assert inst is not None, "live re-registered watch was swept away"
    assert inst["id"] == "w-fresh|/w|data"
    assert inst["sessions"] == [alive.session_id]


def test_gc_watch_sweep_spares_live_session_joining_during_sweep():
    """A live session that JOINS the scanned instance in the scan-to-update
    window keeps the instance id (registration is SetIfNotExists on the id)
    — the removal guard must pin the session list too, or the newcomer is
    silently unsubscribed."""
    cloud, service = make_service(seed=208)
    alive = service.connect()
    ghost = service.connect()
    alive.create("/w", b"")
    ghost.get_data("/w", watch=lambda ev: None)
    ghost_sid = ghost.session_id
    ghost.close()

    watches_tbl = service.system_store.table("fk-system-watches")
    old_inst = watches_tbl.raw("/w")["inst"]["data"]
    assert old_inst["sessions"] == [ghost_sid]

    fctx = SimpleNamespace(env=cloud.env, ctx=OpContext(
        region=service.config.primary_region))
    sweep = cloud.env.process(service.gc_logic._sweep_watches(fctx))
    reads_before = watches_tbl.read_count
    while watches_tbl.read_count == reads_before and not sweep.triggered:
        cloud.run(until=cloud.now + 0.05)
    assert not sweep.triggered

    # In the window: the live session joins the SAME instance (same id).
    watches_tbl._store("/w", {"inst": {"data": {
        "id": old_inst["id"],
        "sessions": [ghost_sid, alive.session_id]}}})

    cloud.run(until=sweep)
    inst = watches_tbl.raw("/w")["inst"].get("data")
    assert inst is not None, "instance with a live joiner was swept away"
    assert alive.session_id in inst["sessions"]


def test_gc_keeps_watches_of_live_sessions():
    cloud, service = make_service(seed=204)
    c1 = service.connect()
    c1.create("/w", b"")
    c1.get_data("/w", watch=lambda ev: None)
    cloud.run(until=cloud.now + 10 * 60_000)
    watches = service.system_store.table("fk-system-watches")
    assert watches.raw("/w")["inst"].get("data") is not None


def test_gc_suspended_at_scale_to_zero():
    cloud, service = make_service(seed=205)
    c = service.connect()
    assert service.gc_task.enabled
    c.close()
    assert not service.gc_task.enabled
    fired = service.gc_task.fired
    cloud.run(until=cloud.now + 30 * 60_000)
    assert service.gc_task.fired == fired


def test_recreate_works_after_gc():
    cloud, service = make_service(seed=206)
    c = service.connect()
    c.create("/a", b"v1")
    c.delete("/a")
    cloud.run(until=cloud.now + 10 * 60_000)  # tombstone collected
    c.create("/a", b"v2")
    data, stat = c.get_data("/a")
    assert data == b"v2"
    assert stat.version == 0
