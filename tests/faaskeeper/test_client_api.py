"""Client API tests: CRUD, versions, paths, stats, errors."""

import pytest

from repro.faaskeeper import (
    BadArgumentsError,
    BadVersionError,
    NoChildrenForEphemeralsError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    SessionClosedError,
)


def test_create_and_get(client):
    path = client.create("/a", b"data")
    assert path == "/a"
    data, stat = client.get_data("/a")
    assert data == b"data"
    assert stat.version == 0
    assert stat.created_tx > 0
    assert stat.modified_tx == stat.created_tx


def test_create_empty_data(client):
    client.create("/a")
    data, stat = client.get_data("/a")
    assert data == b""
    assert stat.data_length == 0


def test_create_duplicate_raises(client):
    client.create("/a")
    with pytest.raises(NodeExistsError):
        client.create("/a")


def test_create_without_parent_raises(client):
    with pytest.raises(NoNodeError):
        client.create("/missing/child")


def test_get_missing_raises(client):
    with pytest.raises(NoNodeError):
        client.get_data("/nope")


def test_set_data_bumps_version_and_mzxid(client):
    client.create("/a", b"v0")
    _, s0 = client.get_data("/a")
    res = client.set_data("/a", b"v1")
    assert res.version == 1
    data, s1 = client.get_data("/a")
    assert data == b"v1"
    assert s1.version == 1
    assert s1.modified_tx > s0.modified_tx
    assert s1.created_tx == s0.created_tx


def test_set_data_version_check(client):
    client.create("/a", b"v0")
    client.set_data("/a", b"v1", version=0)
    with pytest.raises(BadVersionError):
        client.set_data("/a", b"x", version=0)  # stale expected version
    data, stat = client.get_data("/a")
    assert data == b"v1"
    assert stat.version == 1


def test_set_data_missing_node(client):
    with pytest.raises(NoNodeError):
        client.set_data("/nope", b"x")


def test_delete(client):
    client.create("/a")
    client.delete("/a")
    assert client.exists("/a") is None
    with pytest.raises(NoNodeError):
        client.get_data("/a")


def test_delete_version_check(client):
    client.create("/a", b"")
    client.set_data("/a", b"x")
    with pytest.raises(BadVersionError):
        client.delete("/a", version=0)
    client.delete("/a", version=1)
    assert client.exists("/a") is None


def test_delete_nonempty_raises(client):
    client.create("/a")
    client.create("/a/b")
    with pytest.raises(NotEmptyError):
        client.delete("/a")
    client.delete("/a/b")
    client.delete("/a")


def test_delete_missing_raises(client):
    with pytest.raises(NoNodeError):
        client.delete("/nope")


def test_recreate_after_delete(client):
    client.create("/a", b"first")
    client.delete("/a")
    client.create("/a", b"second")
    data, stat = client.get_data("/a")
    assert data == b"second"
    assert stat.version == 0


def test_get_children(client):
    client.create("/a")
    client.create("/a/x")
    client.create("/a/y")
    assert client.get_children("/a") == ["x", "y"]
    assert "a" in client.get_children("/")


def test_get_children_missing_raises(client):
    with pytest.raises(NoNodeError):
        client.get_children("/nope")


def test_exists_stat(client):
    client.create("/a", b"abc")
    stat = client.exists("/a")
    assert stat is not None
    assert stat.data_length == 3
    assert stat.num_children == 0
    client.create("/a/b")
    assert client.exists("/a").num_children == 1


def test_cversion_tracks_child_changes(client):
    client.create("/a")
    assert client.exists("/a").cversion == 0
    client.create("/a/x")
    assert client.exists("/a").cversion == 1
    client.delete("/a/x")
    assert client.exists("/a").cversion == 2


def test_invalid_paths_rejected(client):
    for bad in ("a", "", "/a/", "/a//b", "/a/./b", "/a/../b"):
        with pytest.raises(BadArgumentsError):
            client.create(bad)
    with pytest.raises(BadArgumentsError):
        client.create("/")  # root exists and is not creatable
    with pytest.raises(BadArgumentsError):
        client.delete("/")


def test_sequence_nodes_monotone(client):
    client.create("/q")
    paths = [client.create("/q/task-", sequence=True) for _ in range(4)]
    assert paths == [
        "/q/task-0000000000",
        "/q/task-0000000001",
        "/q/task-0000000002",
        "/q/task-0000000003",
    ]
    assert client.get_children("/q") == sorted(
        f"task-{i:010d}" for i in range(4))


def test_sequence_counter_shared_across_prefixes(client):
    client.create("/q")
    a = client.create("/q/a-", sequence=True)
    b = client.create("/q/b-", sequence=True)
    assert a.endswith("0000000000")
    assert b.endswith("0000000001")


def test_ephemeral_node_has_owner(client):
    client.create("/e", ephemeral=True)
    stat = client.exists("/e")
    assert stat.ephemeral_owner == client.session_id


def test_no_children_under_ephemeral(client):
    client.create("/e", ephemeral=True)
    with pytest.raises(NoChildrenForEphemeralsError):
        client.create("/e/child")


def test_close_deletes_ephemerals(service):
    c1 = service.connect()
    c2 = service.connect()
    c1.create("/e1", ephemeral=True)
    c1.create("/p")
    c1.create("/p/e2", ephemeral=True)
    c1.close()
    # The close ack confirms the commit; user-store visibility follows once
    # the leader replicates the deletes.
    service.cloud.run(until=service.cloud.now + 2_000)
    assert c2.exists("/e1") is None
    assert c2.exists("/p/e2") is None
    assert c2.exists("/p") is not None  # persistent survives


def test_closed_session_rejects_ops(client):
    client.close()
    with pytest.raises(SessionClosedError):
        client.create("/x")
    with pytest.raises(SessionClosedError):
        client.get_data("/x")


def test_context_manager_closes(service):
    with service.connect() as c:
        c.create("/cm", b"x")
    assert c.closed
    assert service.active_sessions == 0


def test_large_node_rejected(client):
    with pytest.raises(Exception):
        client.create("/big", b"x" * (300 * 1024))  # above queue payload cap


def test_max_size_node_roundtrip(client):
    payload = b"x" * (250 * 1024)
    client.create("/big", payload)
    data, stat = client.get_data("/big")
    assert data == payload
    assert stat.data_length == 250 * 1024


def test_write_result_fields(client):
    client.create("/a", b"")
    res = client.set_data("/a", b"x")
    assert res.path == "/a"
    assert res.txid > 0
    assert res.version == 1
