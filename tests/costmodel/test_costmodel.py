"""Cost-model tests: the paper's printed dollar figures must reproduce."""

import pytest

from repro.costmodel import (
    AWS_COST_PARAMS,
    BreakevenModel,
    MonitoringCostModel,
    StorageCostModel,
    q_sqs,
    r_dd,
    r_s3,
    w_dd,
    w_s3,
)


# ------------------------------------------------------------- Table 4
def test_table4_parameters():
    assert w_s3(1) == 5e-6
    assert r_s3(1) == 4e-7
    assert w_dd(1) == 1.25e-6
    assert w_dd(4.5) == 5 * 1.25e-6
    assert r_dd(1) == 0.25e-6
    assert r_dd(4) == 0.25e-6
    assert r_dd(5) == 2 * 0.25e-6
    assert q_sqs(1) == 0.5e-6
    assert q_sqs(65) == 1e-6


# --------------------------------------------------- Section 5.3.4 dollars
def test_100k_reads_cost_4_cents():
    """"A workload of 100,000 read operations costs $0.04."""
    cost = 100_000 * AWS_COST_PARAMS.read_cost(1.0, hybrid=False)
    assert cost == pytest.approx(0.04)


def test_100k_writes_cost_112_standard():
    """"A workload of 100,000 write operations costs $1.12."""
    cost = 100_000 * AWS_COST_PARAMS.write_cost(1.0, hybrid=False)
    assert cost == pytest.approx(1.12, rel=0.01)


def test_100k_writes_cost_072_hybrid():
    """"There, a workload of 100,000 write operations costs $0.72."""
    cost = 100_000 * AWS_COST_PARAMS.write_cost(1.0, hybrid=True)
    assert cost == pytest.approx(0.72, rel=0.01)


def test_zookeeper_daily_costs():
    assert AWS_COST_PARAMS.zookeeper_daily(3, "t3.small") == pytest.approx(1.5)
    assert AWS_COST_PARAMS.zookeeper_daily(3, "t3.medium") == pytest.approx(3.0)
    assert AWS_COST_PARAMS.zookeeper_daily(9, "t3.large") == pytest.approx(18.0)


# ------------------------------------------------------------- Figure 14
@pytest.mark.parametrize("read_frac,hybrid,expected_first_row", [
    # (fraction, hybrid?, ratios for 3 x t3.small across request counts)
    (1.0, False, [37.44, 7.49, 3.74, 1.87, 0.75]),
    (1.0, True, [59.90, 11.98, 5.99, 3.00, 1.20]),
    (0.9, False, [10.14, 2.03, 1.01, 0.51, 0.20]),
    (0.9, True, [15.89, 3.18, 1.59, 0.79, 0.32]),
    (0.8, False, [5.86, 1.17, 0.59, 0.29, 0.12]),
    (0.8, True, [9.16, 1.83, 0.92, 0.46, 0.18]),
])
def test_figure14_first_rows_match_paper(read_frac, hybrid, expected_first_row):
    model = BreakevenModel()
    matrix = model.matrix(read_frac, hybrid)
    got = matrix[0]  # 3 x t3.small row
    for g, e in zip(got, expected_first_row):
        assert g == pytest.approx(e, rel=0.03)


def test_figure14_rows_scale_with_deployment():
    model = BreakevenModel()
    matrix = model.matrix(1.0, False)
    # 9 x t3.small = 3x the 3 x t3.small ratios; t3.medium = 2x t3.small
    assert matrix[3][0] == pytest.approx(3 * matrix[0][0])
    assert matrix[1][0] == pytest.approx(2 * matrix[0][0])
    assert matrix[5][0] == pytest.approx(12 * matrix[0][0])


def test_breakeven_points_match_paper():
    """"between 1 and 3.75 million requests daily" (standard) and "grows to
    5.99 million" (hybrid) for the smallest deployment at 100% reads."""
    model = BreakevenModel()
    std = model.breakeven_requests(1.0, hybrid=False)
    hyb = model.breakeven_requests(1.0, hybrid=True)
    assert std == pytest.approx(3.75e6, rel=0.02)
    assert hyb == pytest.approx(5.99e6, rel=0.02)
    # 80% reads standard: ratio 1.17 at 500K/day -> crossover near 585K
    low = model.breakeven_requests(0.8, hybrid=False)
    assert 5.5e5 < low < 6.2e5


def test_faaskeeper_cheaper_at_low_rates_everywhere():
    model = BreakevenModel()
    for frac in (1.0, 0.9, 0.8):
        for hybrid in (False, True):
            assert model.ratio(100_000, frac, hybrid, 3, "t3.small") > 1


# ------------------------------------------------------------- Figure 4a
def test_storage_model_headline_ratios():
    m = StorageCostModel()
    assert m.s3_write_read_ratio() == pytest.approx(12.5)
    assert m.kv_vs_s3_large_data(128.0) == pytest.approx(20.0)
    assert m.s3_vs_ebs_retention() == pytest.approx(3.478, rel=0.01)
    assert m.dynamodb_vs_ebs_retention() == pytest.approx(3.125)


def test_storage_sweep_s3_writes_too_expensive_for_frequent_ops():
    """Figure 4a right: at high op counts S3 writes dominate everything."""
    m = StorageCostModel()
    sweep = m.ops_sweep([10, 10**3, 10**5, 10**7])
    assert sweep["s3_write"][-1] > sweep["dynamodb_write"][-1]
    assert sweep["s3_write"][-1] > 10 * sweep["s3_read"][-1]


def test_storage_sweep_kv_more_expensive_on_large_items():
    m = StorageCostModel()
    s3 = m.monthly_cost("s3", "write", 1.0, ops=10**6, op_kb=64)
    dd = m.monthly_cost("dynamodb", "write", 1.0, ops=10**6, op_kb=64)
    assert dd > 4 * s3


# ------------------------------------------------------------- Figure 13
def test_monitoring_cost_fraction_of_vm():
    m = MonitoringCostModel()
    cost = m.daily_cost(memory_mb=512, exec_time_ms=100, n_clients=16)
    assert cost < 0.05 * 0.5  # a small fraction of a t3.small day
    assert m.vm_price_fraction(512, 100, 16) < 0.05


def test_monitoring_allocation_under_0_2_percent():
    m = MonitoringCostModel()
    assert m.daily_allocation_fraction(100.0) < 0.002


def test_monitoring_cost_grows_with_memory():
    m = MonitoringCostModel()
    assert m.daily_cost(2048, 80, 16) > m.daily_cost(128, 300, 16) * 0.5
    assert m.daily_cost(2048, 100, 16) > m.daily_cost(128, 100, 16)
