"""Shim for environments whose setuptools cannot build PEP 660 editable
wheels (no `wheel` package available offline). `pip install -e .` falls back
to `setup.py develop` via this file; all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
