"""Condition and update expressions for the key-value store.

This is the semantic core of DynamoDB's *update expressions* (the paper's
Table 2 row "Concurrency primitives: conditional updates"): a structured,
composable mini-language with

* **conditions** — attribute existence, comparisons, boolean combinators —
  evaluated atomically against the current item; and
* **update actions** — ``SET``, ``ADD`` (atomic numeric add), ``REMOVE``,
  ``LIST_APPEND``, ``LIST_REMOVE`` — applied atomically iff the condition
  holds.

The paper's synchronization primitives (timed lock, atomic counter, atomic
list, Section 3.3) are implemented purely in terms of these expressions in
:mod:`repro.primitives`.

We deliberately implement the expressions as Python objects rather than a
string parser: the semantics (what FaaSKeeper relies on) are identical and
the construction is type-checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Attr",
    "Condition",
    "And",
    "Or",
    "Not",
    "Always",
    "UpdateAction",
    "Set",
    "SetIfNotExists",
    "Add",
    "Remove",
    "ListAppend",
    "ListRemove",
    "ListPopHead",
    "apply_updates",
    "item_size_kb",
]


# --------------------------------------------------------------------------
# Conditions
# --------------------------------------------------------------------------
class Condition:
    """Base condition; supports ``&``, ``|`` and ``~`` composition."""

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True)
class Always(Condition):
    """Unconditional (used when no condition is supplied)."""

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        return True


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        return self.left.evaluate(item) and self.right.evaluate(item)


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        return self.left.evaluate(item) or self.right.evaluate(item)


@dataclass(frozen=True)
class Not(Condition):
    inner: Condition

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        return not self.inner.evaluate(item)


_MISSING = object()


def _get(item: Optional[Dict[str, Any]], path: str) -> Any:
    """Resolve a dotted attribute path; returns _MISSING when absent."""
    if item is None:
        return _MISSING
    node: Any = item
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return _MISSING
        node = node[part]
    return node


@dataclass(frozen=True)
class _Compare(Condition):
    path: str
    op: str
    value: Any

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        current = _get(item, self.path)
        if current is _MISSING:
            return False
        if self.op == "==":
            return current == self.value
        if self.op == "!=":
            return current != self.value
        if self.op == "<":
            return current < self.value
        if self.op == "<=":
            return current <= self.value
        if self.op == ">":
            return current > self.value
        if self.op == ">=":
            return current >= self.value
        raise ValueError(f"unknown comparison {self.op!r}")  # pragma: no cover


@dataclass(frozen=True)
class _ItemExists(Condition):
    """True iff the item itself exists (any attributes)."""

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        return item is not None


@dataclass(frozen=True)
class _Exists(Condition):
    path: str
    exists: bool

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        present = _get(item, self.path) is not _MISSING
        return present == self.exists


@dataclass(frozen=True)
class _Contains(Condition):
    path: str
    value: Any

    def evaluate(self, item: Optional[Dict[str, Any]]) -> bool:
        current = _get(item, self.path)
        if current is _MISSING:
            return False
        try:
            return self.value in current
        except TypeError:
            return False


class Attr:
    """Condition builder for one attribute path (DynamoDB-style).

    Examples::

        Attr("lock").not_exists() | (Attr("lock.timestamp") < now - limit)
        Attr("version") == expected
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> Condition:
        return _Exists(self.path, True)

    def not_exists(self) -> Condition:
        return _Exists(self.path, False)

    def contains(self, value: Any) -> Condition:
        return _Contains(self.path, value)

    def between(self, low: Any, high: Any) -> Condition:
        return And(_Compare(self.path, ">=", low), _Compare(self.path, "<=", high))

    def __eq__(self, value: Any) -> Condition:  # type: ignore[override]
        return _Compare(self.path, "==", value)

    def __ne__(self, value: Any) -> Condition:  # type: ignore[override]
        return _Compare(self.path, "!=", value)

    def __lt__(self, value: Any) -> Condition:
        return _Compare(self.path, "<", value)

    def __le__(self, value: Any) -> Condition:
        return _Compare(self.path, "<=", value)

    def __gt__(self, value: Any) -> Condition:
        return _Compare(self.path, ">", value)

    def __ge__(self, value: Any) -> Condition:
        return _Compare(self.path, ">=", value)

    def __hash__(self) -> int:  # Attr instances are builders, hash by path
        return hash(("Attr", self.path))


def item_exists() -> Condition:
    """Condition on the presence of the whole item."""
    return _ItemExists()


# --------------------------------------------------------------------------
# Update actions
# --------------------------------------------------------------------------
class UpdateAction:
    """Base update action; mutates an item dict in place."""

    path: str

    def apply(self, item: Dict[str, Any]) -> None:
        raise NotImplementedError


def _set_path(item: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    node = item
    for part in parts[:-1]:
        node = node.setdefault(part, {})
        if not isinstance(node, dict):
            raise TypeError(f"cannot descend into non-map attribute {part!r}")
    node[parts[-1]] = value


def _del_path(item: Dict[str, Any], path: str) -> None:
    parts = path.split(".")
    node: Any = item
    for part in parts[:-1]:
        if not isinstance(node, dict) or part not in node:
            return
        node = node[part]
    if isinstance(node, dict):
        node.pop(parts[-1], None)


@dataclass(frozen=True)
class Set(UpdateAction):
    path: str
    value: Any

    def apply(self, item: Dict[str, Any]) -> None:
        _set_path(item, self.path, self.value)


@dataclass(frozen=True)
class SetIfNotExists(UpdateAction):
    path: str
    value: Any

    def apply(self, item: Dict[str, Any]) -> None:
        if _get(item, self.path) is _MISSING:
            _set_path(item, self.path, self.value)


@dataclass(frozen=True)
class Add(UpdateAction):
    """Atomic numeric add (DynamoDB ``ADD``); missing attribute counts as 0."""

    path: str
    delta: float

    def apply(self, item: Dict[str, Any]) -> None:
        current = _get(item, self.path)
        base = 0 if current is _MISSING else current
        if not isinstance(base, (int, float)):
            raise TypeError(f"ADD on non-numeric attribute {self.path!r}")
        _set_path(item, self.path, base + self.delta)


@dataclass(frozen=True)
class Remove(UpdateAction):
    path: str

    def apply(self, item: Dict[str, Any]) -> None:
        _del_path(item, self.path)


@dataclass(frozen=True)
class ListAppend(UpdateAction):
    """Append values to a list attribute, creating it when missing."""

    path: str
    values: Tuple[Any, ...]

    def __init__(self, path: str, values: Iterable[Any]) -> None:
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "values", tuple(values))

    def apply(self, item: Dict[str, Any]) -> None:
        current = _get(item, self.path)
        base = [] if current is _MISSING else list(current)
        base.extend(self.values)
        _set_path(item, self.path, base)


@dataclass(frozen=True)
class ListRemove(UpdateAction):
    """Remove (first occurrences of) the given values from a list attribute."""

    path: str
    values: Tuple[Any, ...]

    def __init__(self, path: str, values: Iterable[Any]) -> None:
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "values", tuple(values))

    def apply(self, item: Dict[str, Any]) -> None:
        current = _get(item, self.path)
        if current is _MISSING:
            return
        base = list(current)
        for v in self.values:
            try:
                base.remove(v)
            except ValueError:
                pass
        _set_path(item, self.path, base)


@dataclass(frozen=True)
class ListPopHead(UpdateAction):
    """Drop the first ``count`` elements of a list attribute (queue pop)."""

    path: str
    count: int = 1

    def apply(self, item: Dict[str, Any]) -> None:
        current = _get(item, self.path)
        if current is _MISSING:
            return
        _set_path(item, self.path, list(current)[self.count:])


def apply_updates(item: Dict[str, Any], updates: Sequence[UpdateAction]) -> Dict[str, Any]:
    """Apply all actions in order; returns the same dict for convenience."""
    for action in updates:
        action.apply(item)
    return item


# --------------------------------------------------------------------------
# Size accounting (drives per-kB billing and bandwidth latency terms)
# --------------------------------------------------------------------------
def _value_size_bytes(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 3 + sum(_value_size_bytes(v) for v in value)
    if isinstance(value, dict):
        return 3 + sum(
            _value_size_bytes(k) + _value_size_bytes(v) for k, v in value.items()
        )
    return 8  # opaque objects: count a word


def item_size_kb(item: Optional[Dict[str, Any]]) -> float:
    """Approximate billable size of an item, in kB."""
    if item is None:
        return 0.0
    return _value_size_bytes(item) / 1024.0
