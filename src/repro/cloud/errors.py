"""Exceptions raised by the simulated cloud services."""

from __future__ import annotations

__all__ = [
    "CloudError",
    "ConditionFailed",
    "ItemTooLarge",
    "NoSuchItem",
    "NoSuchBucket",
    "NoSuchObject",
    "NoSuchTable",
    "PayloadTooLarge",
    "FunctionCrash",
    "ThrottlingError",
    "StorageTimeout",
    "ConnectionReset",
    "StorageUnavailable",
    "TRANSIENT_ERRORS",
]


class CloudError(Exception):
    """Base class for simulated service errors."""


class ConditionFailed(CloudError):
    """A conditional update's condition evaluated to false.

    Mirrors DynamoDB's ``ConditionalCheckFailedException`` — the primitive
    the paper's timed locks are built on.
    """

    def __init__(self, message: str = "conditional check failed", item=None) -> None:
        super().__init__(message)
        self.item = item


class ItemTooLarge(CloudError):
    """Item exceeds the store's size limit (400 kB DynamoDB / 1 MB Datastore)."""


class NoSuchTable(CloudError):
    pass


class NoSuchItem(CloudError):
    pass


class NoSuchBucket(CloudError):
    pass


class NoSuchObject(CloudError):
    pass


class PayloadTooLarge(CloudError):
    """Queue message exceeds the provider payload limit (256 kB SQS)."""


class FunctionCrash(CloudError):
    """Injected function failure (used by fault-tolerance tests)."""


class ThrottlingError(CloudError):
    """Request rejected by a throughput ceiling."""


class StorageTimeout(CloudError):
    """The request hung past the client deadline; whether it was applied
    server-side is unknown to the caller (an *ambiguous* failure)."""


class ConnectionReset(CloudError):
    """The connection dropped mid-request.  Raised before the mutation
    applied it is unambiguous; raised after (the partial-write fault) the
    caller cannot tell — the retry layer's idempotence tokens exist for
    exactly this case."""


class StorageUnavailable(CloudError):
    """A storage endpoint is being shed: its circuit breaker is open, or a
    retry policy exhausted its attempts.  Carries the terminal cause."""

    def __init__(self, message: str = "storage unavailable",
                 cause: Exception | None = None) -> None:
        super().__init__(message)
        self.cause = cause


#: Error classes a retry policy may transparently retry.  ConditionFailed
#: is deliberately absent: a failed conditional write is a *decision*, not
#: an outage, and must surface to the caller.
TRANSIENT_ERRORS = (ThrottlingError, StorageTimeout, ConnectionReset)
