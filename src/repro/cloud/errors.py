"""Exceptions raised by the simulated cloud services."""

from __future__ import annotations

__all__ = [
    "CloudError",
    "ConditionFailed",
    "ItemTooLarge",
    "NoSuchItem",
    "NoSuchBucket",
    "NoSuchObject",
    "NoSuchTable",
    "PayloadTooLarge",
    "FunctionCrash",
    "ThrottlingError",
]


class CloudError(Exception):
    """Base class for simulated service errors."""


class ConditionFailed(CloudError):
    """A conditional update's condition evaluated to false.

    Mirrors DynamoDB's ``ConditionalCheckFailedException`` — the primitive
    the paper's timed locks are built on.
    """

    def __init__(self, message: str = "conditional check failed", item=None) -> None:
        super().__init__(message)
        self.item = item


class ItemTooLarge(CloudError):
    """Item exceeds the store's size limit (400 kB DynamoDB / 1 MB Datastore)."""


class NoSuchTable(CloudError):
    pass


class NoSuchItem(CloudError):
    pass


class NoSuchBucket(CloudError):
    pass


class NoSuchObject(CloudError):
    pass


class PayloadTooLarge(CloudError):
    """Queue message exceeds the provider payload limit (256 kB SQS)."""


class FunctionCrash(CloudError):
    """Injected function failure (used by fault-tolerance tests)."""


class ThrottlingError(CloudError):
    """Request rejected by a throughput ceiling."""
