"""Calibrated latency profiles for the simulated AWS and GCP clouds.

Each constant below is fitted to a number the paper publishes:

* **DynamoDB writes** — Table 6a: 1 kB regular write p50 4.35 ms / p99 6.33,
  64 kB p50 66.31 → bandwidth term (66.31-4.35)/63 ≈ 0.98 ms/kB; the
  conditional (timed-lock) variant adds ≈2.45 ms at the median.
* **DynamoDB reads** — Figure 8 (DynamoDB user store ≈5 ms small nodes,
  ≈15 ms at 250 kB) and Table 3 leader ``Get Node`` p50 5.09 ms.
* **S3** — Table 3 leader ``Update Node`` (download + upload) p50 42.7 ms at
  4 B and 102 ms at 250 kB → write ≈30 ms + 0.2 ms/kB, read ≈11 ms +
  0.04 ms/kB (also Figure 8's S3 read line).
* **Invocation paths** — Tables 7a (AWS) and 7c (GCP), 64 B and 64 kB
  columns; the 0.864 ms TCP reply is Section 5.2.2.
* **ZooKeeper** — Figure 8 (sub-ms small reads, flat with size) and
  Figure 9 (few-ms writes).
* **Throughput ceilings** — Figure 6b (locked updates reach 84 % of the
  standard rate) and Figure 7b (FIFO queue saturates around 10^2 req/s).
* **Memory scaling** — Figures 9/11: total write time drops 22-28 % from
  512 MB to 2048 MB → I/O multiplier ``(2048/mem)^0.2075``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .latency import Fixed, LatencyModel, SizeAware
from .pricing import AWS_PRICES, GCP_PRICES, PriceSheet

__all__ = ["CloudProfile", "aws_profile", "gcp_profile", "io_multiplier"]


def io_multiplier(memory_mb: int) -> float:
    """Latency multiplier for I/O issued from a function with ``memory_mb``.

    AWS Lambda scales network/CPU share with the memory allocation; the
    exponent is fitted so that 512 MB is ~33 % slower than 2048 MB (the
    paper's observed 22-28 % end-to-end write-time reduction, which includes
    non-scaling queue time).
    """
    if memory_mb <= 0:
        raise ValueError("memory must be positive")
    return (2048.0 / memory_mb) ** 0.2075


@dataclass(frozen=True)
class CloudProfile:
    """Bundle of calibrated latency models, prices and limits for a provider."""

    name: str
    prices: PriceSheet

    # --- key-value store ---------------------------------------------------
    kv_write: LatencyModel
    kv_read: LatencyModel
    kv_list_append: LatencyModel
    kv_conditional_extra_ms: float      # added to conditional (lock) updates
    kv_atomic_extra_ms: float           # added to atomic ADD updates
    kv_capacity_per_s: float            # table throughput ceiling (Fig. 6b)
    kv_conditional_units: float         # capacity units per conditional op
    kv_item_limit_kb: float             # 400 kB DynamoDB / 1 MB Datastore

    # --- object store --------------------------------------------------------
    obj_write: LatencyModel
    obj_read: LatencyModel

    # --- in-memory cache (Redis-like, user-managed) -------------------------
    cache_rw: LatencyModel

    # --- invocation paths ----------------------------------------------------
    invoke_direct: LatencyModel
    queue_send: LatencyModel            # enqueue API call (Table 3 "Push")
    invoke_queue: LatencyModel          # standard queue -> function delivery
    invoke_fifo: LatencyModel           # FIFO queue -> function delivery
    invoke_stream: LatencyModel         # DynamoDB Streams (AWS only)
    tcp_reply: LatencyModel             # function -> client notification
    cold_start: LatencyModel
    queue_payload_limit_kb: float

    # --- queue service rates (Fig. 7b) --------------------------------------
    fifo_batch_limit: int
    std_batch_limit: int
    fifo_per_msg_ms: float              # handler-side per-message overhead

    # --- functions -------------------------------------------------------------
    arm_io_factor: float = 1.0          # ARM multiplier on small I/O ops
    arm_data_factor: float = 1.0        # ARM multiplier on payload processing

    # --- cross-region ------------------------------------------------------
    inter_region_extra_ms: float = 140.0
    inter_region_per_kb_ms: float = 0.35

    # --- IaaS baseline (ZooKeeper over TCP) ---------------------------------
    zk_read: LatencyModel = field(default_factory=lambda: SizeAware(0.9, 2.2, per_kb_ms=0.015, min_ms=0.4))
    zk_write: LatencyModel = field(default_factory=lambda: SizeAware(2.6, 8.0, per_kb_ms=0.02, min_ms=1.0))
    zk_tcp_rtt_ms: float = 0.3


def aws_profile() -> CloudProfile:
    """Calibrated AWS profile (us-east-1, Tables 3/6a/7a, Figures 4b/8/9)."""
    return CloudProfile(
        name="aws",
        prices=AWS_PRICES,
        kv_write=SizeAware(p50_ms=4.35, p99_ms=6.33, per_kb_ms=0.98, min_ms=3.9),
        kv_read=SizeAware(p50_ms=4.0, p99_ms=7.0, per_kb_ms=0.04, min_ms=3.0),
        kv_list_append=SizeAware(p50_ms=5.89, p99_ms=10.71, per_kb_ms=0.068, min_ms=4.5),
        kv_conditional_extra_ms=2.45,
        kv_atomic_extra_ms=1.24,
        kv_capacity_per_s=2860.0,
        kv_conditional_units=1.19,
        kv_item_limit_kb=400.0,
        obj_write=SizeAware(p50_ms=30.0, p99_ms=80.0, per_kb_ms=0.20, min_ms=15.0),
        obj_read=SizeAware(p50_ms=11.0, p99_ms=25.0, per_kb_ms=0.04, min_ms=6.0),
        cache_rw=SizeAware(p50_ms=0.35, p99_ms=0.9, per_kb_ms=0.012, min_ms=0.15),
        invoke_direct=SizeAware(p50_ms=39.0, p99_ms=124.01, per_kb_ms=0.151, min_ms=18.0),
        # Send + delivery sum to the end-to-end paths of Table 7a; the send
        # leg alone is Table 3's follower "Push" row (13.35 ms @4 B,
        # 72 ms @250 kB -> 0.235 ms/kB).
        queue_send=SizeAware(p50_ms=12.6, p99_ms=36.0, per_kb_ms=0.235, min_ms=6.0),
        invoke_queue=SizeAware(p50_ms=27.2, p99_ms=100.0, per_kb_ms=0.0, min_ms=12.0),
        invoke_fifo=SizeAware(p50_ms=11.6, p99_ms=126.0, per_kb_ms=0.0, min_ms=5.0),
        invoke_stream=SizeAware(p50_ms=242.65, p99_ms=417.21, per_kb_ms=0.0, min_ms=180.0),
        tcp_reply=SizeAware(p50_ms=0.864, p99_ms=2.2, per_kb_ms=0.01, min_ms=0.3),
        cold_start=SizeAware(p50_ms=180.0, p99_ms=420.0, min_ms=90.0),
        queue_payload_limit_kb=256.0,
        fifo_batch_limit=10,
        std_batch_limit=100,
        fifo_per_msg_ms=5.0,
        arm_io_factor=0.92,
        arm_data_factor=2.6,
    )


def gcp_profile() -> CloudProfile:
    """Calibrated GCP profile (us-central1, Table 7c, Figures 8/12).

    Datastore "writes" are transactions (Section 4.5), hence the large
    conditional overhead; Pub/Sub ordered delivery is the slow FIFO path.
    """
    return CloudProfile(
        name="gcp",
        prices=GCP_PRICES,
        kv_write=SizeAware(p50_ms=12.0, p99_ms=26.0, per_kb_ms=0.30, min_ms=7.0),
        kv_read=SizeAware(p50_ms=9.2, p99_ms=19.0, per_kb_ms=0.011, min_ms=5.0),
        kv_list_append=SizeAware(p50_ms=13.0, p99_ms=28.0, per_kb_ms=0.08, min_ms=8.0),
        kv_conditional_extra_ms=21.0,
        kv_atomic_extra_ms=9.0,
        kv_capacity_per_s=2000.0,
        kv_conditional_units=1.3,
        kv_item_limit_kb=1024.0,
        obj_write=SizeAware(p50_ms=48.0, p99_ms=120.0, per_kb_ms=0.26, min_ms=22.0),
        obj_read=SizeAware(p50_ms=20.0, p99_ms=46.0, per_kb_ms=0.055, min_ms=10.0),
        cache_rw=SizeAware(p50_ms=0.4, p99_ms=1.0, per_kb_ms=0.012, min_ms=0.15),
        invoke_direct=SizeAware(p50_ms=83.29, p99_ms=112.74, per_kb_ms=0.03, min_ms=40.0),
        queue_send=SizeAware(p50_ms=11.0, p99_ms=32.0, per_kb_ms=0.1, min_ms=5.0),
        invoke_queue=SizeAware(p50_ms=27.0, p99_ms=95.0, per_kb_ms=0.0, min_ms=12.0),
        invoke_fifo=SizeAware(p50_ms=190.0, p99_ms=560.0, per_kb_ms=0.08, min_ms=140.0),
        invoke_stream=SizeAware(p50_ms=400.0, p99_ms=800.0, min_ms=300.0),  # unused
        tcp_reply=SizeAware(p50_ms=0.9, p99_ms=2.4, per_kb_ms=0.01, min_ms=0.3),
        cold_start=SizeAware(p50_ms=300.0, p99_ms=900.0, min_ms=150.0),
        queue_payload_limit_kb=10240.0,
        fifo_batch_limit=10,
        std_batch_limit=100,
        fifo_per_msg_ms=5.0,
        arm_io_factor=1.0,
        arm_data_factor=1.0,
    )
