"""Price sheets and cost metering.

All dollar constants are the ones the paper publishes or that we recovered
from its arithmetic (see DESIGN.md "Cost-model constants"):

* Table 4 gives the per-operation storage and queue prices;
* Section 5.3.4 gives VM day-rates and block-storage prices;
* Section 4.5 gives the GCP price relations (Datastore 2.4x/1.44x DynamoDB
  reads/writes, Pub/Sub $40/TB with a 1 kB minimum).

The :class:`CostMeter` accumulates per-service line items during a simulated
run so that benchmark harnesses can print the cost-split bars of Figures 9
and 11 and the dollar totals quoted in Section 5.3.4.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["AWS_PRICES", "GCP_PRICES", "PriceSheet", "CostMeter", "VM_DAY_RATE"]


# Daily on-demand price of the EC2 instance types used in Section 5.3.4.
# These reproduce Figure 14's ratios exactly (3 x t3.small = $1.5/day).
VM_DAY_RATE: Dict[str, float] = {
    "t3.small": 0.5,
    "t3.medium": 1.0,
    "t3.large": 2.0,
    "t3.2xlarge": 8.0,
    "e2-small": 0.5,
    "e2-medium": 1.0,
}


@dataclass(frozen=True)
class PriceSheet:
    """Per-operation and per-retention prices for one cloud provider."""

    name: str
    # Object storage (S3 / Cloud Storage): flat per-operation.
    object_write: float = 5e-6
    object_read: float = 4e-7
    object_storage_gb_month: float = 0.023
    # Key-value storage (DynamoDB / Datastore).
    kv_write_unit: float = 1.25e-6      # per write unit
    kv_write_unit_kb: float = 1.0       # kB covered by one write unit
    kv_read_unit: float = 0.25e-6       # per strongly consistent read unit
    kv_read_unit_kb: float = 4.0        # kB covered by one read unit
    kv_eventual_read_discount: float = 0.5
    kv_size_billed: bool = True         # GCP Datastore bills per op, not per kB
    kv_storage_gb_month: float = 0.25
    # Queue (SQS / Pub/Sub).
    queue_message: float = 0.5e-6       # per billed chunk
    queue_chunk_kb: float = 64.0        # SQS bills in 64 kB increments
    queue_min_kb: float = 0.0           # Pub/Sub bills at least 1 kB
    queue_per_kb: float = 0.0           # Pub/Sub: $40/TB ~= 4e-8 per kB (x2 paths)
    # Functions (Lambda / Cloud Functions).
    fn_gb_second: float = 1.66667e-5
    fn_request: float = 0.2e-6
    fn_gb_second_arm: float = 1.33334e-5
    # Block storage for the IaaS baseline.
    block_storage_gb_month: float = 0.08

    # ---------------------------------------------------------------- ops
    def object_write_cost(self, size_kb: float) -> float:
        """S3-style write: flat per operation, any size."""
        return self.object_write

    def object_read_cost(self, size_kb: float) -> float:
        return self.object_read

    def kv_write_cost(self, size_kb: float) -> float:
        if not self.kv_size_billed:
            return self.kv_write_unit
        units = max(1, math.ceil(max(size_kb, 1e-9) / self.kv_write_unit_kb))
        return units * self.kv_write_unit

    def kv_read_cost(self, size_kb: float, consistent: bool = True) -> float:
        if not self.kv_size_billed:
            price = self.kv_read_unit
        else:
            units = max(1, math.ceil(max(size_kb, 1e-9) / self.kv_read_unit_kb))
            price = units * self.kv_read_unit
        if not consistent:
            price *= self.kv_eventual_read_discount
        return price

    def queue_cost(self, size_kb: float) -> float:
        billed_kb = max(size_kb, self.queue_min_kb)
        cost = 0.0
        if self.queue_message:
            chunks = max(1, math.ceil(max(billed_kb, 1e-9) / self.queue_chunk_kb))
            cost += chunks * self.queue_message
        if self.queue_per_kb:
            cost += billed_kb * self.queue_per_kb
        return cost

    def fn_cost(self, memory_mb: int, duration_ms: float, arch: str = "x86") -> float:
        rate = self.fn_gb_second_arm if arch == "arm" else self.fn_gb_second
        gb_s = (memory_mb / 1024.0) * (duration_ms / 1000.0)
        return gb_s * rate + self.fn_request


AWS_PRICES = PriceSheet(name="aws")

# GCP: Datastore charges per operation independent of size (Section 4.5):
# reads 2.4x the DynamoDB <=1kB price, writes 1.44x.  Pub/Sub charges $40/TB
# on both the publish and the delivery path with a 1 kB minimum per message.
GCP_PRICES = PriceSheet(
    name="gcp",
    kv_write_unit=1.44 * 1.25e-6,
    kv_read_unit=2.4 * 0.25e-6,
    kv_size_billed=False,
    queue_message=0.0,
    queue_per_kb=2 * 4.0e-8,
    queue_min_kb=1.0,
    queue_chunk_kb=1.0,
    fn_gb_second=2.5e-5,
)


@dataclass
class CostLine:
    """One metered charge."""

    service: str      # e.g. "s3", "dynamodb", "sqs", "fn:follower"
    operation: str    # e.g. "write", "read", "invoke"
    count: int = 0
    dollars: float = 0.0


class CostMeter:
    """Accumulates charges, grouped by (service, operation)."""

    def __init__(self) -> None:
        self._lines: Dict[Tuple[str, str], CostLine] = {}

    def charge(self, service: str, operation: str, dollars: float, count: int = 1) -> None:
        key = (service, operation)
        line = self._lines.get(key)
        if line is None:
            line = self._lines[key] = CostLine(service, operation)
        line.count += count
        line.dollars += dollars

    @property
    def total(self) -> float:
        return sum(line.dollars for line in self._lines.values())

    def by_service(self) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        for line in self._lines.values():
            out[line.service] += line.dollars
        return dict(out)

    def lines(self) -> List[CostLine]:
        return sorted(self._lines.values(), key=lambda l: (l.service, l.operation))

    def service_total(self, service: str) -> float:
        return sum(l.dollars for l in self._lines.values() if l.service == service)

    def reset(self) -> None:
        self._lines.clear()

    def snapshot(self) -> Dict[str, float]:
        """by_service() copy, convenient for before/after deltas."""
        return self.by_service()

    def delta(self, before: Dict[str, float]) -> Dict[str, float]:
        after = self.by_service()
        keys = set(before) | set(after)
        return {k: after.get(k, 0.0) - before.get(k, 0.0) for k in keys}
