"""Simulated key-value store (DynamoDB / Datastore).

Provides the semantics FaaSKeeper's system storage needs (Section 3.3):

* atomic per-item updates with **condition expressions** — the substrate of
  the timed lock;
* **update expressions** (SET/ADD/LIST_APPEND/...) — the substrate of atomic
  counters and lists;
* **strongly consistent reads** (required; eventual reads are provided to
  demonstrate why they break Z2/Z3 — tested in the consistency suite);
* per-kB billing, a 400 kB item limit, and a table throughput ceiling
  (Figure 6b);
* an optional **change stream** per table, the AWS "DynamoDB Streams"
  invocation path of Table 7a.

All mutating operations are generators: they charge latency on the virtual
clock *before* applying the mutation atomically, so concurrent processes
interleave exactly as a remote store would interleave their requests.
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from ..fklint import sanitize
from ..sim.kernel import Environment, Event
from ..sim.resources import TokenBucketLimiter
from .calibration import CloudProfile
from .context import OpContext
from .errors import ConditionFailed, ItemTooLarge, NoSuchTable
from .expressions import (
    Always,
    Condition,
    UpdateAction,
    apply_updates,
    item_size_kb,
)
from .faults import FaultInjector, draw_fault
from .pricing import CostMeter

__all__ = ["KeyValueStore", "Table", "StreamRecord", "TTL_ATTRIBUTE",
           "scan_segment_of"]


def scan_segment_of(key: str, total_segments: int) -> int:
    """Parallel-scan segment owning ``key``: ``crc32`` so the mapping is
    stable across processes (the builtin ``hash`` is salted per run).
    :func:`repro.faaskeeper.layout.session_shard_of` mirrors this formula —
    a sweep shard scanning segment *i* sees exactly the sessions that hash
    to shard *i*."""
    if total_segments <= 1:
        return 0
    return zlib.crc32(key.encode()) % total_segments

#: Reserved item attribute holding the expiry instant (virtual-clock ms).
#: Items carrying it are lazily expired by the table — DynamoDB-style
#: *conditional* TTL: rewriting the attribute into the future keeps the
#: item alive, because expiry re-checks the attribute when it fires.
TTL_ATTRIBUTE = "__expires__"


@dataclass
class StreamRecord:
    """A change record emitted to a table's stream (DynamoDB Streams)."""

    table: str
    key: str
    old_image: Optional[Dict[str, Any]]
    new_image: Optional[Dict[str, Any]]
    sequence: int
    timestamp: float
    #: ``"write"`` for caller mutations, ``"ttl"`` for native TTL expiry —
    #: the discriminator DynamoDB exposes as ``userIdentity`` on TTL
    #: deletions, so listeners can react to expiry specifically.
    reason: str = "write"


@dataclass
class _Versioned:
    value: Dict[str, Any]
    written_at: float
    previous: Optional[Dict[str, Any]] = None
    previous_at: float = 0.0


class Table:
    """One table: a dict of key -> attribute map plus stream subscribers."""

    def __init__(self, name: str, env: Environment, capacity_per_s: float) -> None:
        self.name = name
        self._env = env
        self._items: Dict[str, _Versioned] = {}
        self.limiter = TokenBucketLimiter(env, rate_per_s=capacity_per_s, burst=capacity_per_s / 10)
        self.stream_listeners: List[Callable[[StreamRecord], None]] = []
        self._stream_seq = 0
        self.write_count = 0
        self.read_count = 0
        #: Keys whose current value carries :data:`TTL_ATTRIBUTE` — the
        #: expiry pass only ever walks this set, so tables that never use
        #: TTL pay nothing.
        self._ttl_keys: set = set()

    def __len__(self) -> int:
        return len(self._items)

    def keys(self) -> List[str]:
        return list(self._items.keys())

    def raw(self, key: str) -> Optional[Dict[str, Any]]:
        """Direct (zero-latency) item access for assertions in tests."""
        rec = self._items.get(key)
        return None if rec is None else rec.value

    # -- internal mutation helpers -----------------------------------------
    def _emit(self, key: str, old: Optional[Dict[str, Any]], new: Optional[Dict[str, Any]],
              reason: str = "write") -> None:
        if not self.stream_listeners:
            return
        self._stream_seq += 1
        record = StreamRecord(
            table=self.name,
            key=key,
            old_image=copy.deepcopy(old),
            new_image=copy.deepcopy(new),
            sequence=self._stream_seq,
            timestamp=self._env.now,
            reason=reason,
        )
        for listener in self.stream_listeners:
            listener(record)

    def _store(self, key: str, value: Optional[Dict[str, Any]],
               reason: str = "write") -> None:
        old_rec = self._items.get(key)
        old = old_rec.value if old_rec else None
        if value is None:
            self._items.pop(key, None)
            self._ttl_keys.discard(key)
        else:
            self._items[key] = _Versioned(
                value=value,
                written_at=self._env.now,
                previous=old,
                previous_at=old_rec.written_at if old_rec else 0.0,
            )
            if TTL_ATTRIBUTE in value:
                self._ttl_keys.add(key)
            else:
                self._ttl_keys.discard(key)
        self._emit(key, old, value, reason=reason)

    # -- native TTL ---------------------------------------------------------
    def expire_due(self, now: float) -> int:
        """Expire every item whose TTL instant has passed (lazy, like
        DynamoDB: expiry happens when the table is next touched, not at
        the instant itself).  The check is conditional — an item whose
        TTL attribute was rewritten into the future survives.  Expiries
        emit stream records with ``reason="ttl"``."""
        if not self._ttl_keys:
            return 0
        expired = 0
        for key in list(self._ttl_keys):
            rec = self._items.get(key)
            if rec is None:
                self._ttl_keys.discard(key)  # wiped out-of-band
                continue
            expires = rec.value.get(TTL_ATTRIBUTE)
            if expires is not None and float(expires) <= now:
                self._store(key, None, reason="ttl")
                expired += 1
        return expired


class KeyValueStore:
    """The service facade: named tables + calibrated latency + billing."""

    #: window (ms) within which an eventually-consistent read may serve the
    #: previous version of an item (DynamoDB documents "usually <1 s").
    EVENTUAL_STALENESS_MS = 500.0
    EVENTUAL_STALE_P = 0.33

    def __init__(
        self,
        env: Environment,
        profile: CloudProfile,
        meter: CostMeter,
        rng,
        region: str = "us-east-1",
        service_label: str = "kv",
    ) -> None:
        self.env = env
        self.profile = profile
        self.meter = meter
        self.rng = rng
        self.region = region
        self.service_label = service_label
        self.tables: Dict[str, Table] = {}
        #: Armed by deployments running a fault schedule; None (default)
        #: means zero draws and zero overhead on every operation.
        self.faults: Optional[FaultInjector] = None
        #: Idempotence-token ledger (DynamoDB ``ClientRequestToken``): a
        #: mutator carrying a token records its result here at apply time;
        #: a replay of the same token returns the recorded result without
        #: re-applying — the device that makes ambiguous-failure retries
        #: exactly-once.
        self._token_results: Dict[str, Any] = {}

    # ------------------------------------------------------------ tables
    def create_table(self, name: str, capacity_per_s: Optional[float] = None) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, self.env, capacity_per_s or self.profile.kv_capacity_per_s)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise NoSuchTable(name) from None

    # ------------------------------------------------------------ helpers
    def _latency(self, ctx: OpContext, model, size_kb: float, extra_ms: float = 0.0) -> float:
        value = model.sample(self.rng, size_kb) + extra_ms
        value *= ctx.io_mult
        if ctx.region is not None and ctx.region != self.region:
            value += self.profile.inter_region_extra_ms
            value += self.profile.inter_region_per_kb_ms * size_kb
        return value

    def _admit(self, table: Table, units: float = 1.0) -> float:
        return table.limiter.admit(units)

    def _charge_write(self, ctx: OpContext, size_kb: float) -> None:
        self.meter.charge(ctx.payer or self.service_label, "kv_write",
                          self.profile.prices.kv_write_cost(size_kb))

    def _charge_read(self, ctx: OpContext, size_kb: float, consistent: bool) -> None:
        self.meter.charge(ctx.payer or self.service_label, "kv_read",
                          self.profile.prices.kv_read_cost(size_kb, consistent))

    # ------------------------------------------------------------ operations
    def get_item(
        self,
        ctx: OpContext,
        table_name: str,
        key: str,
        consistent: bool = True,
    ) -> Generator[Event, Any, Optional[Dict[str, Any]]]:
        """Read one item; returns a deep copy or None.

        Eventually-consistent reads may return the previous version of a
        recently written item — the behaviour that rules them out for
        FaaSKeeper's system storage (Section 3.3).
        """
        table = self.table(table_name)
        fault = draw_fault(self.faults, "get_item", mutating=False)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"get_item {table_name}/{key}")
        table.expire_due(self.env.now)
        rec = table._items.get(key)
        size_kb = item_size_kb(rec.value if rec else None)
        wait = self._admit(table, 1.0)
        latency = self._latency(ctx, self.profile.kv_read, size_kb)
        yield self.env.timeout(wait + latency)
        table.expire_due(self.env.now)
        table.read_count += 1
        # Re-fetch after the delay: the read observes the state at completion
        # time for strong reads, possibly stale state for eventual ones.
        rec = table._items.get(key)
        self._charge_read(ctx, size_kb, consistent)
        if rec is None:
            return None
        if not consistent and rec.previous is not None:
            age = self.env.now - rec.written_at
            if age < self.EVENTUAL_STALENESS_MS and self.rng.random() < self.EVENTUAL_STALE_P:
                return copy.deepcopy(rec.previous)
        return copy.deepcopy(rec.value)

    def put_item(
        self,
        ctx: OpContext,
        table_name: str,
        key: str,
        attributes: Dict[str, Any],
        condition: Optional[Condition] = None,
        token: Optional[str] = None,
    ) -> Generator[Event, Any, None]:
        """Full-item write, optionally conditional.

        ``token`` (DynamoDB ``ClientRequestToken``) makes the write
        idempotent: a replay of an already-applied token returns without
        re-applying or re-evaluating the condition.
        """
        if sanitize.enabled():
            sanitize.check_mutation("put_item", table_name, key,
                                    condition=condition)
        table = self.table(table_name)
        fault = draw_fault(self.faults, "put_item", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"put_item {table_name}/{key}")
        size_kb = item_size_kb(attributes)
        if size_kb > self.profile.kv_item_limit_kb:
            raise ItemTooLarge(f"{size_kb:.1f} kB > {self.profile.kv_item_limit_kb} kB")
        conditional = condition is not None
        units = self.profile.kv_conditional_units if conditional else 1.0
        extra = self.profile.kv_conditional_extra_ms if conditional else 0.0
        wait = self._admit(table, units)
        latency = self._latency(ctx, self.profile.kv_write, size_kb, extra)
        yield self.env.timeout(wait + latency)
        table.write_count += 1
        self._charge_write(ctx, size_kb)
        if token is not None and token in self._token_results:
            return None  # replay of an applied write: nothing to redo
        table.expire_due(self.env.now)
        cond = condition or Always()
        current = table._items.get(key)
        if not cond.evaluate(current.value if current else None):
            raise ConditionFailed(item=copy.deepcopy(current.value) if current else None)
        table._store(key, copy.deepcopy(attributes))
        if token is not None:
            self._token_results[token] = None
        if fault is not None:
            self.faults.fire_after(fault, f"put_item {table_name}/{key}")

    def update_item(
        self,
        ctx: OpContext,
        table_name: str,
        key: str,
        updates: Sequence[UpdateAction],
        condition: Optional[Condition] = None,
        atomic_hint: bool = False,
        payload_kb: float = 0.0,
        latency_model=None,
        token: Optional[str] = None,
    ) -> Generator[Event, Any, Dict[str, Any]]:
        """Atomically apply update actions iff ``condition`` holds.

        Returns the new item image (deep copy).  ``atomic_hint`` selects the
        slightly cheaper latency profile of plain ADD updates (atomic
        counters, Table 6a).  ``payload_kb`` lets callers override the billed
        payload (list appends bill the appended data, not the whole item).
        """
        if sanitize.enabled():
            sanitize.check_mutation("update_item", table_name, key,
                                    updates=updates, condition=condition)
        table = self.table(table_name)
        fault = draw_fault(self.faults, "update_item", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"update_item {table_name}/{key}")
        current = table._items.get(key)
        current_size = item_size_kb(current.value if current else None)
        size_kb = payload_kb if payload_kb > 0 else current_size
        conditional = condition is not None
        units = self.profile.kv_conditional_units if conditional else 1.0
        if conditional:
            extra = self.profile.kv_conditional_extra_ms
        elif atomic_hint:
            extra = self.profile.kv_atomic_extra_ms
        else:
            extra = 0.0
        model = latency_model or self.profile.kv_write
        wait = self._admit(table, units)
        latency = self._latency(ctx, model, size_kb, extra)
        yield self.env.timeout(wait + latency)
        table.write_count += 1
        self._charge_write(ctx, max(size_kb, 0.001))
        if token is not None and token in self._token_results:
            return copy.deepcopy(self._token_results[token])
        table.expire_due(self.env.now)
        cond = condition or Always()
        current = table._items.get(key)
        current_value = current.value if current else None
        if not cond.evaluate(current_value):
            raise ConditionFailed(
                item=copy.deepcopy(current_value) if current_value else None
            )
        new_value: Dict[str, Any] = copy.deepcopy(current_value) if current_value else {}
        apply_updates(new_value, updates)
        new_size = item_size_kb(new_value)
        if new_size > self.profile.kv_item_limit_kb:
            raise ItemTooLarge(f"{new_size:.1f} kB > {self.profile.kv_item_limit_kb} kB")
        table._store(key, new_value)
        if token is not None:
            self._token_results[token] = copy.deepcopy(new_value)
        if fault is not None:
            self.faults.fire_after(fault, f"update_item {table_name}/{key}")
        return copy.deepcopy(new_value)

    def delete_item(
        self,
        ctx: OpContext,
        table_name: str,
        key: str,
        condition: Optional[Condition] = None,
        token: Optional[str] = None,
    ) -> Generator[Event, Any, None]:
        if sanitize.enabled():
            sanitize.check_mutation("delete_item", table_name, key,
                                    condition=condition)
        table = self.table(table_name)
        fault = draw_fault(self.faults, "delete_item", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"delete_item {table_name}/{key}")
        current = table._items.get(key)
        size_kb = item_size_kb(current.value if current else None)
        conditional = condition is not None
        extra = self.profile.kv_conditional_extra_ms if conditional else 0.0
        wait = self._admit(table)
        latency = self._latency(ctx, self.profile.kv_write, min(size_kb, 1.0), extra)
        yield self.env.timeout(wait + latency)
        table.write_count += 1
        self._charge_write(ctx, 1.0)
        if token is not None and token in self._token_results:
            return None
        table.expire_due(self.env.now)
        cond = condition or Always()
        current = table._items.get(key)
        if not cond.evaluate(current.value if current else None):
            raise ConditionFailed()
        table._store(key, None)
        if token is not None:
            self._token_results[token] = None
        if fault is not None:
            self.faults.fire_after(fault, f"delete_item {table_name}/{key}")

    def transact_update(
        self,
        ctx: OpContext,
        ops: Sequence[tuple],
        token: Optional[str] = None,
    ) -> Generator[Event, Any, List[Dict[str, Any]]]:
        """Atomic multi-item conditional update (DynamoDB transactions).

        ``ops`` is a sequence of ``(table, key, updates, condition)`` tuples.
        All conditions are evaluated against the current state; if every one
        holds, all updates apply atomically; otherwise nothing changes and
        :class:`ConditionFailed` is raised.  The paper uses this for
        multi-node commits (creating a node also updates the parent's child
        list — Section 3.1).  Returns the new images, in op order.
        """
        if not ops:
            return []
        if sanitize.enabled():
            for table_name, key, updates, condition in ops:
                sanitize.check_mutation("update_item", table_name, key,
                                        updates=updates, condition=condition,
                                        transactional=True)
        fault = draw_fault(self.faults, "transact_update", mutating=True)
        if fault is not None:
            first = f"{ops[0][0]}/{ops[0][1]}"
            yield from self.faults.fire_before(fault, f"transact_update {first}")
        total_kb = 0.0
        for table_name, key, _updates, _cond in ops:
            table = self.table(table_name)
            rec = table._items.get(key)
            total_kb += item_size_kb(rec.value if rec else None)
        # Transactions consume double capacity units and pay the conditional
        # overhead once per item (DynamoDB bills 2x for transactional writes).
        wait = 0.0
        for table_name, _key, _u, _c in ops:
            wait = max(wait, self._admit(self.table(table_name),
                                         2.0 * self.profile.kv_conditional_units))
        extra = self.profile.kv_conditional_extra_ms * len(ops)
        latency = self._latency(ctx, self.profile.kv_write, total_kb, extra)
        yield self.env.timeout(wait + latency)
        if token is not None and token in self._token_results:
            return copy.deepcopy(self._token_results[token])
        for table_name, _key, _u, _c in ops:
            self.table(table_name).expire_due(self.env.now)
        # Atomic check-then-apply at a single instant of virtual time.
        staged: List[tuple] = []
        for table_name, key, updates, condition in ops:
            table = self.table(table_name)
            current = table._items.get(key)
            current_value = current.value if current else None
            cond = condition or Always()
            if not cond.evaluate(current_value):
                for t, _k, _u, _c in ops:
                    self._charge_write(ctx, 1.0)  # failed transactions still bill
                raise ConditionFailed(
                    f"transaction condition failed on {table_name}/{key}",
                    item=copy.deepcopy(current_value) if current_value else None,
                )
            new_value: Dict[str, Any] = copy.deepcopy(current_value) if current_value else {}
            apply_updates(new_value, updates)
            new_size = item_size_kb(new_value)
            if new_size > self.profile.kv_item_limit_kb:
                raise ItemTooLarge(f"{new_size:.1f} kB > {self.profile.kv_item_limit_kb} kB")
            staged.append((table, key, new_value))
        images = []
        for table, key, new_value in staged:
            table.write_count += 1
            # transactional writes bill 2x write units
            self.meter.charge(
                ctx.payer or self.service_label, "kv_write",
                2.0 * self.profile.prices.kv_write_cost(max(item_size_kb(new_value), 0.001)),
            )
            table._store(key, new_value)
            images.append(copy.deepcopy(new_value))
        if token is not None:
            self._token_results[token] = copy.deepcopy(images)
        if fault is not None:
            first = f"{ops[0][0]}/{ops[0][1]}"
            self.faults.fire_after(fault, f"transact_update {first}")
        return images

    def scan(
        self,
        ctx: OpContext,
        table_name: str,
        segment: Optional[int] = None,
        total_segments: Optional[int] = None,
    ) -> Generator[Event, Any, Dict[str, Dict[str, Any]]]:
        """Full-table scan: bills one read per 4 kB of total data.

        ``segment``/``total_segments`` select one slice of a DynamoDB-style
        parallel scan: only keys with ``scan_segment_of(key) == segment``
        are read, and latency, capacity units and billing cover the slice —
        that proportionality is what makes partitioned sweeps cheaper than
        N full scans.  ``total_segments`` of ``None``/1 is the plain scan,
        byte-for-byte as before.
        """
        table = self.table(table_name)
        segmented = total_segments is not None and total_segments > 1
        if segmented and (segment is None or not 0 <= segment < total_segments):
            raise ValueError(
                f"scan segment must be in [0, {total_segments}), got {segment}")
        fault = draw_fault(self.faults, "scan", mutating=False)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"scan {table_name}")
        table.expire_due(self.env.now)
        if segmented:
            selected = [k for k in table._items
                        if scan_segment_of(k, total_segments) == segment]
            total_kb = sum(item_size_kb(table._items[k].value)
                           for k in selected)
        else:
            selected = None
            total_kb = sum(item_size_kb(rec.value)
                           for rec in table._items.values())
        wait = self._admit(table, max(1.0, total_kb / 4.0))
        latency = self._latency(ctx, self.profile.kv_read, total_kb)
        yield self.env.timeout(wait + latency)
        table.expire_due(self.env.now)
        table.read_count += 1
        self._charge_read(ctx, max(total_kb, 1.0), consistent=True)
        if selected is None:
            return {k: copy.deepcopy(rec.value)
                    for k, rec in table._items.items()}
        # Items expired/deleted while the request was in flight drop out,
        # exactly as the full scan re-reads the table after the delay.
        return {k: copy.deepcopy(table._items[k].value)
                for k in selected if k in table._items}

    def batch_put(
        self,
        ctx: OpContext,
        table_name: str,
        items: Dict[str, Dict[str, Any]],
        token: Optional[str] = None,
    ) -> Generator[Event, Any, None]:
        """Batch full-item write (DynamoDB ``BatchWriteItem``): one round
        trip's latency for the whole batch, per-item billing, capacity and
        stream emission.  Unconditional puts only — the batched
        session-registration path; conditional writes take ``put_item``.
        """
        if not items:
            return None
        if sanitize.enabled():
            for key in items:
                sanitize.check_mutation("put_item", table_name, key,
                                        condition=None)
        table = self.table(table_name)
        fault = draw_fault(self.faults, "batch_put", mutating=True)
        if fault is not None:
            first = next(iter(items))
            yield from self.faults.fire_before(
                fault, f"batch_put {table_name}/{first}")
        total_kb = 0.0
        for attributes in items.values():
            size_kb = item_size_kb(attributes)
            if size_kb > self.profile.kv_item_limit_kb:
                raise ItemTooLarge(
                    f"{size_kb:.1f} kB > {self.profile.kv_item_limit_kb} kB")
            total_kb += size_kb
        wait = self._admit(table, float(len(items)))
        latency = self._latency(ctx, self.profile.kv_write, total_kb)
        yield self.env.timeout(wait + latency)
        table.write_count += len(items)
        for attributes in items.values():
            self._charge_write(ctx, max(item_size_kb(attributes), 0.001))
        if token is not None and token in self._token_results:
            return None  # replay of an applied batch: nothing to redo
        table.expire_due(self.env.now)
        for key, attributes in items.items():
            table._store(key, copy.deepcopy(attributes))
        if token is not None:
            self._token_results[token] = None
        if fault is not None:
            first = next(iter(items))
            self.faults.fire_after(fault, f"batch_put {table_name}/{first}")
        return None
