"""The :class:`Cloud` facade: one simulated cloud deployment.

Bundles the DES environment, RNG streams, cost meter and service factories.
Everything FaaSKeeper, the ZooKeeper baseline and the benchmarks need hangs
off this object::

    cloud = Cloud.aws(seed=7)
    table = cloud.kv("system").create_table("state")
    cloud.run_process(writer(cloud))       # drive generators synchronously
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..sim.kernel import Environment, Event
from ..sim.rng import RngRegistry
from .cache import InMemoryCache
from .calibration import CloudProfile, aws_profile, gcp_profile
from .context import OpContext
from .functions import DeployedFunction, FunctionRuntime, FunctionSpec
from .kvstore import KeyValueStore
from .objectstore import ObjectStore
from .pricing import CostMeter
from .queues import FifoQueue, StandardQueue, StreamTrigger

__all__ = ["Cloud"]


class Cloud:
    """One provider deployment: services share a clock, RNG seed and meter."""

    def __init__(self, profile: CloudProfile, seed: int = 0,
                 region: str = "us-east-1") -> None:
        self.profile = profile
        self.env = Environment()
        self.rng = RngRegistry(seed)
        self.meter = CostMeter()
        self.region = region
        self.runtime = FunctionRuntime(
            self.env, profile, self.meter, self.rng.stream("functions")
        )
        self._kv: Dict[str, KeyValueStore] = {}
        self._obj: Dict[str, ObjectStore] = {}
        self._caches: Dict[str, InMemoryCache] = {}
        self._queues: Dict[str, Any] = {}

    # ------------------------------------------------------------ factories
    @classmethod
    def aws(cls, seed: int = 0, region: str = "us-east-1") -> "Cloud":
        return cls(aws_profile(), seed=seed, region=region)

    @classmethod
    def gcp(cls, seed: int = 0, region: str = "us-central1") -> "Cloud":
        return cls(gcp_profile(), seed=seed, region=region)

    # ------------------------------------------------------------ services
    def kv(self, label: str = "kv", region: Optional[str] = None) -> KeyValueStore:
        """Get or create a key-value service instance (one per cost label)."""
        key = f"{label}@{region or self.region}"
        if key not in self._kv:
            self._kv[key] = KeyValueStore(
                self.env, self.profile, self.meter,
                self.rng.stream(f"kv:{key}"),
                region=region or self.region, service_label=label,
            )
        return self._kv[key]

    def objectstore(self, label: str = "object", region: Optional[str] = None) -> ObjectStore:
        key = f"{label}@{region or self.region}"
        if key not in self._obj:
            self._obj[key] = ObjectStore(
                self.env, self.profile, self.meter,
                self.rng.stream(f"obj:{key}"),
                region=region or self.region, service_label=label,
            )
        return self._obj[key]

    def cache(self, label: str = "cache", region: Optional[str] = None,
              vm_type: str = "t3.small") -> InMemoryCache:
        key = f"{label}@{region or self.region}"
        if key not in self._caches:
            self._caches[key] = InMemoryCache(
                self.env, self.profile, self.meter,
                self.rng.stream(f"cache:{key}"),
                region=region or self.region, vm_type=vm_type, service_label=label,
            )
        return self._caches[key]

    def fifo_queue(self, name: str, label: str = "queue",
                   max_receive: Optional[int] = 5,
                   seq_source: Optional[Any] = None) -> FifoQueue:
        if name in self._queues:
            raise ValueError(f"queue {name!r} already exists")
        q = FifoQueue(name, self.env, self.profile, self.meter,
                      self.rng.stream(f"queue:{name}"),
                      service_label=label, max_receive=max_receive,
                      seq_source=seq_source)
        self._queues[name] = q
        return q

    def standard_queue(self, name: str, label: str = "queue",
                       concurrency: int = 4) -> StandardQueue:
        if name in self._queues:
            raise ValueError(f"queue {name!r} already exists")
        q = StandardQueue(name, self.env, self.profile, self.meter,
                          self.rng.stream(f"queue:{name}"),
                          service_label=label, concurrency=concurrency)
        self._queues[name] = q
        return q

    def stream_trigger(self, name: str, table, function: DeployedFunction,
                       label: str = "stream") -> StreamTrigger:
        if name in self._queues:
            raise ValueError(f"trigger {name!r} already exists")
        t = StreamTrigger(name, self.env, self.profile, self.meter,
                          self.rng.stream(f"stream:{name}"),
                          table=table, function=function, service_label=label)
        self._queues[name] = t
        return t

    def deploy_function(self, name: str, handler, **kwargs) -> DeployedFunction:
        spec = FunctionSpec(name=name, handler=handler,
                            region=kwargs.pop("region", self.region), **kwargs)
        return self.runtime.deploy(spec)

    # ------------------------------------------------------------ execution
    @property
    def now(self) -> float:
        return self.env.now

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until=until)

    def run_process(self, generator: Generator[Event, Any, Any],
                    name: Optional[str] = None) -> Any:
        """Run a generator to completion, returning its value (sync facade)."""
        proc = self.env.process(generator, name=name)
        return self.env.run(until=proc)

    def client_ctx(self, region: Optional[str] = None, payer: Optional[str] = None) -> OpContext:
        return OpContext(payer=payer, region=region or self.region)
