"""Simulated queue services: SQS standard, SQS FIFO, DynamoDB Streams.

Section 3.1 lists the five queue requirements FaaSKeeper relies on:

(a) invokes functions on messages  → each queue owns a dispatcher process;
(b) FIFO order                     → per-group ordered delivery, failed
                                     batches are redelivered before any
                                     younger message of the group;
(c) concurrency limited to one     → single dispatcher per FIFO queue;
(d) batching                       → up to 10 messages per FIFO batch
                                     (the SQS FIFO restriction, §5.2.2);
(e) monotone sequence numbers      → ``Message.seq`` per queue.

The standard queue relaxes (b)/(c): multiple dispatchers, large batches
with a jittered collection window — reproducing the "long batching on
unordered queues" bursts of Figure 7b.  The stream queue subscribes to a
KV table's change stream and delivers records with the (slow) Streams
invocation latency of Table 7a.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional

from ..sim.kernel import Environment, Event
from ..sim.resources import Store
from .calibration import CloudProfile
from .context import OpContext
from .errors import PayloadTooLarge
from .functions import DeployedFunction
from .kvstore import StreamRecord, Table
from .pricing import CostMeter

__all__ = ["Message", "FifoQueue", "StandardQueue", "StreamTrigger",
           "SharedSequence"]

#: Delay before a failed FIFO batch becomes visible again (ms).
REDELIVERY_BACKOFF_MS = 100.0


class SharedSequence:
    """A monotone counter shared by several queues.

    FaaSKeeper uses the leader queue's sequence number as the transaction
    id.  With a sharded leader pipeline the ids handed out by the shard
    queues must stay globally comparable — the client's MRD tracking and
    the per-node ``applied_tx`` watermarks order txids across shards — so
    every shard queue draws from one counter (SQS FIFO sequence numbers
    are monotone per queue; a real deployment would reserve id ranges or
    use an atomic counter item, which is a single-write operation)."""

    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        self.value += 1
        return self.value


@dataclass
class Message:
    """One queue message."""

    body: Any
    size_kb: float
    group: str
    seq: int
    enqueued_at: float
    receive_count: int = 0


class _QueueBase:
    """Shared bookkeeping: sequence numbers, metering, size limits."""

    def __init__(
        self,
        name: str,
        env: Environment,
        profile: CloudProfile,
        meter: CostMeter,
        rng,
        service_label: str = "queue",
        seq_source: Optional[SharedSequence] = None,
    ) -> None:
        self.name = name
        self.env = env
        self.profile = profile
        self.meter = meter
        self.rng = rng
        self.service_label = service_label
        self._seq = 0
        self._seq_source = seq_source
        self.sent = 0
        self.delivered = 0

    def _next_seq(self) -> int:
        if self._seq_source is not None:
            self._seq = self._seq_source.next()
            return self._seq
        self._seq += 1
        return self._seq

    def _charge(self, ctx: OpContext, size_kb: float) -> None:
        self.meter.charge(ctx.payer or self.service_label, "queue_send",
                          self.profile.prices.queue_cost(size_kb))

    def _check_size(self, size_kb: float) -> None:
        if size_kb > self.profile.queue_payload_limit_kb:
            raise PayloadTooLarge(
                f"{size_kb:.1f} kB > {self.profile.queue_payload_limit_kb} kB"
            )

    def send_nowait(self, ctx: OpContext, body: Any, group: str = "default",
                    size_kb: float = 0.0) -> int:
        """Zero-latency enqueue, for workload generators."""
        self._check_size(size_kb)
        seq = self._next_seq()
        if isinstance(body, dict):
            body = dict(body, _seq=seq)
        self._charge(ctx, size_kb)
        self.sent += 1
        self._buffer.put(Message(body=body, size_kb=size_kb, group=group,
                                 seq=seq, enqueued_at=self.env.now))
        return seq


class FifoQueue(_QueueBase):
    """FIFO queue with a single-instance function trigger.

    Ordering guarantee: within a message group, message *n+1* is never
    handed to the function before message *n* has been processed
    successfully (or dropped after ``max_receive`` failed deliveries).
    """

    def __init__(self, name, env, profile, meter, rng,
                 service_label: str = "queue",
                 max_receive: Optional[int] = 5,
                 seq_source: Optional[SharedSequence] = None) -> None:
        super().__init__(name, env, profile, meter, rng, service_label,
                         seq_source=seq_source)
        self._buffer: Store = Store(env)
        self.max_receive = max_receive
        self._function: Optional[DeployedFunction] = None
        self._batch_limit = profile.fifo_batch_limit
        self.dropped: List[Message] = []
        self.on_drop: Optional[Callable[[Message], None]] = None

    # ------------------------------------------------------------ sending
    def send(self, ctx: OpContext, body: Any, group: str = "default",
             size_kb: float = 0.0) -> Generator[Event, Any, int]:
        """Enqueue; returns the monotone sequence number (txid source)."""
        self._check_size(size_kb)
        # The enqueue API call pays the queue-send latency (Table 3 "Push");
        # the remaining trigger latency is applied on the delivery path.
        yield self.env.timeout(
            self.profile.queue_send.sample(self.rng, size_kb) * ctx.io_mult)
        seq = self._next_seq()
        if isinstance(body, dict):
            # SQS exposes the assigned sequence number to sender and
            # receiver; FaaSKeeper uses it as the transaction id.
            body = dict(body, _seq=seq)
        msg = Message(body=body, size_kb=size_kb, group=group, seq=seq,
                      enqueued_at=self.env.now)
        self._charge(ctx, size_kb)
        self.sent += 1
        self._buffer.put(msg)
        return seq

    # ------------------------------------------------------------ trigger
    def attach(self, function: DeployedFunction, batch_limit: Optional[int] = None) -> None:
        """Bind the event function; starts the single dispatcher."""
        if self._function is not None:
            raise ValueError(f"queue {self.name!r} already has a trigger")
        self._function = function
        if batch_limit is not None:
            self._batch_limit = min(batch_limit, self.profile.fifo_batch_limit)
        self.env.process(self._dispatch(), name=f"fifo:{self.name}")

    def _collect_batch(self, first: Message) -> List[Message]:
        batch = [first]
        while len(batch) < self._batch_limit:
            nxt = self._buffer.get_nowait()
            if nxt is None:
                break
            batch.append(nxt)
        return batch

    def _dispatch(self):
        env = self.env
        assert self._function is not None
        while True:
            first = yield self._buffer.get()
            batch = self._collect_batch(first)
            yield from self._deliver(batch)

    def _deliver(self, batch: List[Message]):
        """Deliver one batch; on failure, redeliver (FIFO blocks the group)."""
        env = self.env
        fn = self._function
        total_kb = sum(m.size_kb for m in batch)
        while True:
            for m in batch:
                m.receive_count += 1
            latency = self.profile.invoke_fifo.sample(self.rng, total_kb)
            # SQS/Lambda per-record pipeline overhead.
            latency += self.profile.fifo_per_msg_ms * len(batch)
            done = fn.invoke([m.body for m in batch], invoke_latency_ms=latency)
            try:
                yield done
                self.delivered += len(batch)
                return
            except Exception:
                # Drop messages that exhausted their receive budget, retry
                # the remainder after a visibility backoff.
                if self.max_receive is not None:
                    alive = []
                    for m in batch:
                        if m.receive_count >= self.max_receive:
                            self.dropped.append(m)
                            if self.on_drop is not None:
                                self.on_drop(m)
                        else:
                            alive.append(m)
                    batch = alive
                if not batch:
                    return
                for m in batch:
                    # Receivers can detect redeliveries (SQS exposes the
                    # receive count) — consumers use it for deduplication.
                    if isinstance(m.body, dict):
                        m.body["_redelivered"] = True
                yield env.timeout(REDELIVERY_BACKOFF_MS)

    @property
    def backlog(self) -> int:
        return len(self._buffer)


class StandardQueue(_QueueBase):
    """Unordered queue: concurrent dispatchers, large jittered batches.

    Reproduces Figure 7b's behaviour: higher peak throughput than FIFO but
    bursty delivery (messages accumulate during the collection window and
    arrive in large batches).
    """

    def __init__(self, name, env, profile, meter, rng,
                 service_label: str = "queue",
                 concurrency: int = 4) -> None:
        super().__init__(name, env, profile, meter, rng, service_label)
        self._buffer: Store = Store(env)
        self.concurrency = concurrency
        self._function: Optional[DeployedFunction] = None

    def send(self, ctx: OpContext, body: Any, group: str = "default",
             size_kb: float = 0.0) -> Generator[Event, Any, int]:
        self._check_size(size_kb)
        yield self.env.timeout(
            self.profile.queue_send.sample(self.rng, size_kb) * ctx.io_mult)
        seq = self._next_seq()
        if isinstance(body, dict):
            body = dict(body, _seq=seq)
        self._charge(ctx, size_kb)
        self.sent += 1
        self._buffer.put(Message(body=body, size_kb=size_kb, group=group,
                                 seq=seq, enqueued_at=self.env.now))
        return seq

    def attach(self, function: DeployedFunction) -> None:
        if self._function is not None:
            raise ValueError(f"queue {self.name!r} already has a trigger")
        self._function = function
        for i in range(self.concurrency):
            self.env.process(self._dispatch(), name=f"std:{self.name}:{i}")

    def _dispatch(self):
        env = self.env
        fn = self._function
        limit = self.profile.std_batch_limit
        while True:
            first = yield self._buffer.get()
            # Jittered collection window: model of the long-poll batching
            # that produces the bursts seen on unordered queues (Figure 7b).
            # A lone message is delivered promptly; sustained load grows the
            # window (receive-batching kicks in) and with it the batch sizes.
            if len(self._buffer) == 0:
                window = self.rng.uniform(2.0, 25.0)
            else:
                window = self.rng.uniform(20.0, 400.0)
            yield env.timeout(window)
            batch = [first]
            while len(batch) < limit:
                nxt = self._buffer.get_nowait()
                if nxt is None:
                    break
                batch.append(nxt)
            total_kb = sum(m.size_kb for m in batch)
            latency = self.profile.invoke_queue.sample(self.rng, total_kb)
            done = fn.invoke([m.body for m in batch], invoke_latency_ms=latency)
            try:
                yield done
                self.delivered += len(batch)
            except Exception:
                for m in batch:  # at-least-once: requeue everything
                    self._buffer.put(m)

    @property
    def backlog(self) -> int:
        return len(self._buffer)


class StreamTrigger(_QueueBase):
    """DynamoDB Streams: table change records -> function, one shard.

    A single shard processes records strictly in order (the configuration
    the paper uses, §5.2.2) with the high invocation latency of Table 7a.
    Sending is implicit: the trigger subscribes to the table's stream.
    """

    def __init__(self, name, env, profile, meter, rng, table: Table,
                 function: DeployedFunction,
                 service_label: str = "stream") -> None:
        super().__init__(name, env, profile, meter, rng, service_label)
        self._buffer: Store = Store(env)
        self._function = function
        table.stream_listeners.append(self._on_record)
        self.env.process(self._dispatch(), name=f"stream:{name}")

    def _on_record(self, record: StreamRecord) -> None:
        self.sent += 1
        # Streams bill as DynamoDB read units on the consumer side; the
        # paper's §5.2.2 cost comparison charges 1 kB write units per record.
        self.meter.charge(self.service_label, "stream_record",
                          self.profile.prices.kv_write_cost(1.0))
        self._buffer.put(record)

    def _dispatch(self):
        env = self.env
        while True:
            first = yield self._buffer.get()
            batch: List[StreamRecord] = [first]
            while len(batch) < 1000:
                nxt = self._buffer.get_nowait()
                if nxt is None:
                    break
                batch.append(nxt)
            latency = self.profile.invoke_stream.sample(self.rng, 0.0)
            done = self._function.invoke(batch, invoke_latency_ms=latency)
            try:
                yield done
                self.delivered += len(batch)
            except Exception:
                for m in reversed(batch):
                    self._buffer.items.appendleft(m)
                yield env.timeout(REDELIVERY_BACKOFF_MS)
