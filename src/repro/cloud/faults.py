"""Seeded transient-fault injection for the simulated storage services.

Real cloud storage fails transiently — DynamoDB throttles, S3 times out,
connections reset mid-request — and the paper's serverless design leans on
the client SDKs retrying through those failures.  The simulation's stores
were perfect until now, so the retry layer above them had nothing to prove
itself against.  :class:`FaultInjector` closes that gap: each storage
operation draws once from a dedicated, named RNG stream and may be handed
one of four fault classes:

* ``throttle`` — the request is rejected up front (:class:`ThrottlingError`);
  no latency, no billing, no mutation.
* ``timeout`` — the request hangs for ``timeout_ms`` of virtual time and
  dies (:class:`StorageTimeout`); the mutation did **not** apply.
* ``conn_reset`` — the connection drops before the request is sent
  (:class:`ConnectionReset`); the mutation did **not** apply.
* ``partial_write`` — mutators only: the mutation **applies server-side**
  and the connection dies before the response.  The caller sees the same
  :class:`ConnectionReset` as the pre-send drop — the ambiguous failure
  idempotence tokens exist for.

Determinism: the injector's RNG is a named stream of the simulation's
:class:`~repro.sim.rng.RngRegistry` (streams are independently seeded by
name), so an armed run replays exactly from the sim seed and a *disarmed*
store draws nothing — the stream is never even created, which is what
keeps the default deployment's latency/cost fingerprint bit-for-bit
intact.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Sequence, Tuple

from .errors import ConnectionReset, StorageTimeout, ThrottlingError

__all__ = ["FaultInjector", "FAULT_KINDS"]

#: Fault classes, in their cumulative-weight order.
FAULT_KINDS: Tuple[str, ...] = ("throttle", "timeout", "conn_reset",
                                "partial_write")

#: Default mix: mostly cheap rejections, a tail of ambiguous failures —
#: roughly the shape of real provider error budgets.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "throttle": 0.4,
    "timeout": 0.25,
    "conn_reset": 0.25,
    "partial_write": 0.1,
}


class FaultInjector:
    """One store's fault schedule: per-op draws from a dedicated stream.

    ``rate`` is the per-operation fault probability; ``weights`` splits it
    across the fault classes.  Read operations cannot partial-write, so a
    read drawing ``partial_write`` degrades to ``conn_reset`` (the
    pre-send kind) instead of silently lowering the read fault rate.
    """

    def __init__(self, env, rng, rate: float,
                 weights: Optional[Dict[str, float]] = None,
                 timeout_ms: float = 250.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self.env = env
        self.rng = rng
        self.rate = rate
        self.timeout_ms = timeout_ms
        merged = dict(DEFAULT_WEIGHTS)
        if weights:
            unknown = set(weights) - set(FAULT_KINDS)
            if unknown:
                raise ValueError(f"unknown fault kinds {sorted(unknown)}")
            merged.update(weights)
        total = sum(merged.values())
        if total <= 0:
            raise ValueError("fault weights must sum to > 0")
        self._cumulative = []
        running = 0.0
        for kind in FAULT_KINDS:
            running += merged[kind] / total
            self._cumulative.append((running, kind))
        #: fault kind -> times injected (exposed as callback metrics).
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # ------------------------------------------------------------ schedule
    def draw(self, op: str, mutating: bool) -> Optional[str]:
        """One schedule decision: None (no fault) or a fault kind.

        Exactly one RNG draw on the no-fault path keeps armed runs
        replayable: the schedule depends only on the op *sequence*, not on
        which faults earlier ops drew.
        """
        roll = self.rng.random()
        if roll >= self.rate:
            return None
        scaled = roll / self.rate  # reuse the draw to pick the kind
        kind = self._cumulative[-1][1]
        for bound, candidate in self._cumulative:
            if scaled <= bound:
                kind = candidate
                break
        if kind == "partial_write" and not mutating:
            kind = "conn_reset"
        self.injected[kind] += 1
        return kind

    def fire_before(self, kind: str, op: str) -> Generator[Any, Any, None]:
        """Raise the pre-mutation fault classes (generator: a timeout
        burns virtual time before dying, like a hung request)."""
        if kind == "throttle":
            raise ThrottlingError(f"{op}: injected throttle")
        if kind == "timeout":
            yield self.env.timeout(self.timeout_ms)
            raise StorageTimeout(f"{op}: injected timeout "
                                 f"after {self.timeout_ms} ms")
        if kind == "conn_reset":
            raise ConnectionReset(f"{op}: injected connection reset")
        return None  # partial_write fires after the mutation

    def fire_after(self, kind: Optional[str], op: str) -> None:
        """Raise the post-mutation fault (the ambiguous partial write)."""
        if kind == "partial_write":
            raise ConnectionReset(
                f"{op}: injected connection reset after apply")

    def total_injected(self) -> int:
        return sum(self.injected.values())


def draw_fault(injector: Optional[FaultInjector], op: str,
               mutating: bool) -> Optional[str]:
    """Schedule helper for stores: one draw iff an injector is armed."""
    if injector is None or injector.rate <= 0.0:
        return None
    return injector.draw(op, mutating)
