"""Simulated cloud substrate: storage, queues, functions, pricing.

This package is the stand-in for AWS/GCP in the reproduction (see
DESIGN.md's substitution table).  Services live on a shared DES clock and
draw latencies from models calibrated to the paper's measurements.
"""

from .cache import InMemoryCache
from .calibration import CloudProfile, aws_profile, gcp_profile, io_multiplier
from .cloud import Cloud
from .context import CLIENT_CTX, OpContext
from .errors import (
    CloudError,
    ConditionFailed,
    FunctionCrash,
    ItemTooLarge,
    NoSuchBucket,
    NoSuchObject,
    NoSuchTable,
    PayloadTooLarge,
)
from .expressions import (
    Add,
    Attr,
    ListAppend,
    ListPopHead,
    ListRemove,
    Remove,
    Set,
    SetIfNotExists,
    item_size_kb,
)
from .functions import DeployedFunction, FunctionContext, FunctionRuntime, FunctionSpec
from .kvstore import KeyValueStore, StreamRecord, Table
from .objectstore import ObjectStore
from .pricing import AWS_PRICES, GCP_PRICES, CostMeter, PriceSheet, VM_DAY_RATE
from .queues import FifoQueue, Message, StandardQueue, StreamTrigger

__all__ = [
    "Cloud",
    "CloudProfile",
    "aws_profile",
    "gcp_profile",
    "io_multiplier",
    "OpContext",
    "CLIENT_CTX",
    "CloudError",
    "ConditionFailed",
    "FunctionCrash",
    "ItemTooLarge",
    "NoSuchBucket",
    "NoSuchObject",
    "NoSuchTable",
    "PayloadTooLarge",
    "Attr",
    "Set",
    "SetIfNotExists",
    "Add",
    "Remove",
    "ListAppend",
    "ListRemove",
    "ListPopHead",
    "item_size_kb",
    "KeyValueStore",
    "Table",
    "StreamRecord",
    "ObjectStore",
    "InMemoryCache",
    "FunctionRuntime",
    "FunctionSpec",
    "FunctionContext",
    "DeployedFunction",
    "FifoQueue",
    "StandardQueue",
    "StreamTrigger",
    "Message",
    "CostMeter",
    "PriceSheet",
    "AWS_PRICES",
    "GCP_PRICES",
    "VM_DAY_RATE",
]
