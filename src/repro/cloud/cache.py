"""Simulated in-memory cache (user-managed Redis on a VM).

The paper evaluates Redis as an alternative user-data store (Figure 8:
"FaaSKeeper with in-memory cache on par with self-hosted ZooKeeper") while
noting it is *not* serverless: it requires a provisioned VM (Table 2 marks
Redis reliability with an X) and therefore re-introduces a fixed daily cost.
We model sub-millisecond access latency and meter the VM cost separately so
the cost benchmarks can show the trade-off.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Generator, Optional

from ..sim.kernel import Environment, Event
from .calibration import CloudProfile
from .context import OpContext
from .faults import FaultInjector, draw_fault
from .pricing import CostMeter, VM_DAY_RATE

__all__ = ["InMemoryCache"]


class InMemoryCache:
    """A flat key -> value store with Redis-like latency."""

    def __init__(
        self,
        env: Environment,
        profile: CloudProfile,
        meter: CostMeter,
        rng,
        region: str = "us-east-1",
        vm_type: str = "t3.small",
        service_label: str = "cache",
    ) -> None:
        self.env = env
        self.profile = profile
        self.meter = meter
        self.rng = rng
        self.region = region
        self.vm_type = vm_type
        self.service_label = service_label
        self._data: Dict[str, Any] = {}
        #: Armed by deployments running a fault schedule (None = no draws).
        self.faults: Optional[FaultInjector] = None

    def _latency(self, ctx: OpContext, size_kb: float) -> float:
        value = self.profile.cache_rw.sample(self.rng, size_kb) * ctx.io_mult
        if ctx.region is not None and ctx.region != self.region:
            value += self.profile.inter_region_extra_ms
        return value

    @staticmethod
    def _size_kb(value: Any) -> float:
        if isinstance(value, (bytes, bytearray)):
            return len(value) / 1024.0
        if isinstance(value, str):
            return len(value.encode()) / 1024.0
        if isinstance(value, dict):
            from .expressions import item_size_kb

            return item_size_kb(value)
        return 0.05

    def set(self, ctx: OpContext, key: str, value: Any) -> Generator[Event, Any, None]:
        fault = draw_fault(self.faults, "set", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"cache set {key}")
        yield self.env.timeout(self._latency(ctx, self._size_kb(value)))
        self._data[key] = copy.deepcopy(value)
        if fault is not None:
            self.faults.fire_after(fault, f"cache set {key}")

    def get(self, ctx: OpContext, key: str) -> Generator[Event, Any, Optional[Any]]:
        fault = draw_fault(self.faults, "get", mutating=False)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"cache get {key}")
        value = self._data.get(key)
        yield self.env.timeout(self._latency(ctx, self._size_kb(value)))
        value = self._data.get(key)
        return copy.deepcopy(value) if value is not None else None

    def delete(self, ctx: OpContext, key: str) -> Generator[Event, Any, None]:
        fault = draw_fault(self.faults, "delete", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"cache delete {key}")
        yield self.env.timeout(self._latency(ctx, 0.0))
        self._data.pop(key, None)
        if fault is not None:
            self.faults.fire_after(fault, f"cache delete {key}")

    def daily_cost(self) -> float:
        """Fixed provisioning cost — the non-serverless part of this option."""
        return VM_DAY_RATE[self.vm_type]

    def __len__(self) -> int:
        return len(self._data)
