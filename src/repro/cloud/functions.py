"""Simulated serverless function runtime (AWS Lambda / Cloud Functions).

Implements the three function classes of Section 2.1:

* **free functions** — direct, API-style invocation (:meth:`DeployedFunction.invoke`);
* **event functions** — invoked by queue triggers (:mod:`repro.cloud.queues`);
* **scheduled functions** — cron-style periodic invocation
  (:meth:`FunctionRuntime.schedule`).

The runtime models the FaaS properties the paper's evaluation depends on:

* **sandbox reuse** — warm starts are ~1 ms, cold starts sample the
  calibrated cold-start model; sandboxes expire after an idle window;
* **memory-dependent I/O** — a function's storage calls are slowed by
  ``io_multiplier(memory_mb)`` (Section 5.3.2: larger allocations buy I/O
  bandwidth, and there is *no yield* — waiting on I/O accrues billed time,
  the paper's Requirement #9);
* **GB-second billing** plus a per-request fee;
* **architecture profiles** — ARM runs small I/O slightly faster but
  payload processing ~2x slower (the leader's observed 94 % slowdown);
* **fault injection** — named crash points let tests kill a function at a
  precise step to exercise the paper's fault-tolerance arguments (Z1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim.kernel import Environment, Event
from .calibration import CloudProfile, io_multiplier
from .context import OpContext
from .errors import FunctionCrash
from .pricing import CostMeter

__all__ = ["FunctionRuntime", "FunctionSpec", "DeployedFunction", "FunctionContext"]

#: Idle sandbox lifetime before a container is reclaimed (ms).
SANDBOX_IDLE_MS = 15 * 60 * 1000.0
#: Overhead of reusing a warm sandbox (ms).
WARM_OVERHEAD_MS = 1.0


@dataclass
class FunctionSpec:
    """Deployment-time configuration of one function."""

    name: str
    handler: Callable[["FunctionContext", Any], Generator[Event, Any, Any]]
    memory_mb: int = 2048
    arch: str = "x86"            # "x86" | "arm"
    cpu_alloc: float = 1.0       # GCP: vCPU fraction, independent of memory
    region: str = "us-east-1"
    base_compute_ms: float = 1.0  # fixed per-invocation compute


class FunctionContext:
    """Handed to handlers; carries identity, op context and probes."""

    def __init__(self, env: Environment, function: "DeployedFunction", invocation_id: int) -> None:
        self.env = env
        self.function = function
        self.invocation_id = invocation_id
        spec = function.spec
        io_mult = io_multiplier(spec.memory_mb)
        if spec.arch == "arm":
            io_mult *= function.runtime.profile.arm_io_factor
        self.ctx = OpContext(
            payer=None,
            io_mult=io_mult,
            region=spec.region,
            arch=spec.arch,
        )

    @property
    def now(self) -> float:
        return self.env.now

    def record(self, segment: str, elapsed_ms: float) -> None:
        """Record a timing probe (drives Figure 10 / Table 3)."""
        self.function.segments[segment].append(elapsed_ms)
        if self.function.on_segment is not None:
            self.function.on_segment(segment, elapsed_ms)

    def compute(self, base_ms: float = 0.0, payload_kb: float = 0.0,
                per_kb_ms: float = 0.02) -> Event:
        """CPU work: serialization/base64 of ``payload_kb`` of data.

        Scaled by the CPU allocation and by the architecture's data-handling
        factor (ARM's large-payload penalty, Section 5.3.2).
        """
        spec = self.function.spec
        profile = self.function.runtime.profile
        factor = 1.0 / max(spec.cpu_alloc, 0.05)
        # Sub-vCPU allocations only slow the (small) compute share: the paper
        # measured just 2-10% end-to-end impact for a 3x smaller CPU.
        factor = 1.0 + (factor - 1.0) * 0.35
        if spec.arch == "arm":
            per_kb_ms = per_kb_ms * profile.arm_data_factor
        delay = (base_ms + per_kb_ms * payload_kb) * factor
        return self.env.timeout(delay)

    def crash_point(self, name: str) -> None:
        """Die here if a fault is planned for (function, point)."""
        self.function._maybe_crash(name)


class DeployedFunction:
    """One deployed function: sandbox pool, stats, fault plan."""

    def __init__(self, runtime: "FunctionRuntime", spec: FunctionSpec) -> None:
        self.runtime = runtime
        self.spec = spec
        self._idle_sandboxes: List[float] = []  # last-used timestamps
        self.invocations = 0
        self.cold_starts = 0
        self.failures = 0
        self.durations_ms: List[float] = []
        self.segments: Dict[str, List[float]] = defaultdict(list)
        # fault plan: crash point name -> list of invocation ids to crash on,
        # or a callable(invocation_id) -> bool
        self.fault_plan: Dict[str, Any] = {}
        #: Observer called as ``on_failure(fn, exc)`` when an invocation
        #: dies (crash harnesses model the sandbox loss here); must not
        #: raise — it runs on the provider side of the failure path.
        self.on_failure: Optional[Callable[["DeployedFunction", BaseException], None]] = None
        #: Observer called as ``on_segment(segment, elapsed_ms)`` for every
        #: timing probe the handler records — the hook metrics registries
        #: attach to; must not raise or touch the simulation clock.
        self.on_segment: Optional[Callable[[str, float], None]] = None
        self._active = 0

    # ---------------------------------------------------------------- faults
    def plan_crash(self, point: str, invocations: Optional[List[int]] = None,
                   predicate: Optional[Callable[[int], bool]] = None) -> None:
        """Arrange for the function to crash at ``point``.

        ``invocations`` is a list of 1-based invocation indices; a predicate
        may be given instead for probabilistic injection.
        """
        self.fault_plan[point] = predicate if predicate is not None else list(invocations or [])

    def _maybe_crash(self, point: str) -> None:
        plan = self.fault_plan.get(point)
        if plan is None:
            return
        if callable(plan):
            if plan(self.invocations):
                raise FunctionCrash(f"{self.spec.name} crashed at {point!r}")
            return
        if self.invocations in plan:
            raise FunctionCrash(f"{self.spec.name} crashed at {point!r}")

    # ------------------------------------------------------------ invocation
    def _sandbox_overhead(self) -> tuple[float, bool]:
        """Return (startup overhead ms, was_cold)."""
        now = self.runtime.env.now
        # Reclaim expired sandboxes.
        self._idle_sandboxes = [t for t in self._idle_sandboxes if now - t < SANDBOX_IDLE_MS]
        if self._idle_sandboxes:
            self._idle_sandboxes.pop()
            return WARM_OVERHEAD_MS, False
        return self.runtime.profile.cold_start.sample(self.runtime.rng), True

    def invoke(self, payload: Any, invoke_latency_ms: float = 0.0) -> Event:
        """Start an invocation; returns an event with the handler's result.

        ``invoke_latency_ms`` is the trigger-path delay (sampled by the
        caller from the appropriate model: direct, FIFO queue, ...).
        The returned event fails if the handler raises, so triggers can
        implement retries; exceptions are pre-defused for fire-and-forget
        callers.
        """
        done = self.runtime.env.event()
        done.defused()
        self.runtime.env.process(self._run(payload, invoke_latency_ms, done),
                                 name=f"fn:{self.spec.name}")
        return done

    def _run(self, payload: Any, invoke_latency_ms: float, done: Event):
        env = self.runtime.env
        if invoke_latency_ms > 0:
            yield env.timeout(invoke_latency_ms)
        overhead, cold = self._sandbox_overhead()
        if cold:
            self.cold_starts += 1
        yield env.timeout(overhead)
        self.invocations += 1
        self._active += 1
        fctx = FunctionContext(env, self, self.invocations)
        started = env.now
        try:
            yield env.timeout(self.spec.base_compute_ms)
            result = yield from self.spec.handler(fctx, payload)
        except BaseException as exc:
            self.failures += 1
            self._finish(started)
            if self.on_failure is not None:
                self.on_failure(self, exc)
            done.fail(exc)
            return
        self._finish(started)
        done.succeed(result)

    def _finish(self, started: float) -> None:
        env = self.runtime.env
        duration = env.now - started
        self.durations_ms.append(duration)
        self._active -= 1
        self._idle_sandboxes.append(env.now)
        cost = self.runtime.profile.prices.fn_cost(
            self.spec.memory_mb, duration, self.spec.arch
        )
        self.runtime.meter.charge(f"fn:{self.spec.name}", "invoke", cost)


class FunctionRuntime:
    """Deploys functions, provides direct invocation and cron schedules."""

    def __init__(self, env: Environment, profile: CloudProfile, meter: CostMeter, rng) -> None:
        self.env = env
        self.profile = profile
        self.meter = meter
        self.rng = rng
        self.functions: Dict[str, DeployedFunction] = {}

    def deploy(self, spec: FunctionSpec) -> DeployedFunction:
        if spec.name in self.functions:
            raise ValueError(f"function {spec.name!r} already deployed")
        fn = DeployedFunction(self, spec)
        self.functions[spec.name] = fn
        return fn

    def invoke_direct(self, fn: DeployedFunction, payload: Any,
                      payload_kb: float = 0.0) -> Event:
        """Free-function invocation over the direct API path (Table 7a)."""
        latency = self.profile.invoke_direct.sample(self.rng, payload_kb)
        return fn.invoke(payload, invoke_latency_ms=latency)

    def schedule(self, fn: DeployedFunction, period_ms: float,
                 payload_factory: Callable[[], Any] = lambda: None,
                 offset_ms: float = 0.0) -> "ScheduledTask":
        """Scheduled-function trigger: invoke every ``period_ms``.

        ``offset_ms`` phase-shifts the cron (first firing at
        ``offset + period``): a fleet of partitioned sweeps staggers its
        members so they do not all land on the table's capacity bucket in
        the same instant.  The default of 0 is the historical schedule.
        """
        task = ScheduledTask(self, fn, period_ms, payload_factory, offset_ms)
        task.start()
        return task


class ScheduledTask:
    """Cron-style periodic invocation of a function."""

    def __init__(self, runtime: FunctionRuntime, fn: DeployedFunction,
                 period_ms: float, payload_factory: Callable[[], Any],
                 offset_ms: float = 0.0) -> None:
        self.runtime = runtime
        self.fn = fn
        self.period_ms = period_ms
        self.payload_factory = payload_factory
        self.offset_ms = offset_ms
        self.enabled = False
        self.fired = 0
        self._proc = None

    def start(self) -> None:
        if self.enabled:
            return
        self.enabled = True
        self._proc = self.runtime.env.process(self._loop(), name=f"cron:{self.fn.spec.name}")

    def stop(self) -> None:
        """Suspend the schedule (FaaSKeeper stops heartbeats at scale-to-zero)."""
        self.enabled = False

    def _loop(self):
        env = self.runtime.env
        if self.offset_ms:
            # Strictly positive only: a zero-delay timeout would still
            # occupy an event-queue slot and perturb offset-free schedules.
            yield env.timeout(self.offset_ms)
            if not self.enabled:
                return
        while self.enabled:
            yield env.timeout(self.period_ms)
            if not self.enabled:
                return
            self.fired += 1
            done = self.fn.invoke(self.payload_factory())
            try:
                yield done
            except Exception:
                # Scheduled functions get a provider retry policy; a failure
                # must not kill the cron loop (Section 2.1, "Scheduled").
                retry = self.fn.invoke(self.payload_factory())
                try:
                    yield retry
                except Exception:
                    pass
