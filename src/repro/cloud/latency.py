"""Latency models for simulated cloud services.

Every service operation samples a latency (milliseconds of virtual time)
from a model in this module.  Models are calibrated against the percentile
tables the paper publishes (Tables 3, 6a, 7a, 7c; Figures 4b, 8, 9), see
:mod:`repro.cloud.calibration` for the concrete numbers.

The workhorse is :class:`SizeAware`: a lognormal base latency (fitted from
p50/p99) plus a bandwidth term linear in the payload size, with a small
probability of a heavy-tail outlier — the structure visible in all of the
paper's latency tables (tight p50..p95 band, occasional 10x max).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..sim.rng import lognormal_from_percentiles

__all__ = ["LatencyModel", "Fixed", "SizeAware", "scaled"]


class LatencyModel:
    """Base class: ``sample(rng, size_kb)`` returns milliseconds."""

    def sample(self, rng: random.Random, size_kb: float = 0.0) -> float:
        raise NotImplementedError

    def median(self, size_kb: float = 0.0) -> float:
        """Deterministic central value, used by analytic cost estimates."""
        raise NotImplementedError


@dataclass(frozen=True)
class Fixed(LatencyModel):
    """Constant latency (useful in tests and for idealized services)."""

    value_ms: float = 0.0

    def sample(self, rng: random.Random, size_kb: float = 0.0) -> float:
        return self.value_ms

    def median(self, size_kb: float = 0.0) -> float:
        return self.value_ms


@dataclass(frozen=True)
class SizeAware(LatencyModel):
    """Lognormal base + linear bandwidth term + rare heavy-tail outliers.

    Parameters
    ----------
    p50_ms, p99_ms:
        Base (zero-size) latency percentiles; the lognormal is fitted to
        them.
    per_kb_ms:
        Added per kB of payload (1/bandwidth).  The bandwidth term gets the
        same relative noise as the base draw, matching the widening tails
        the paper reports for larger payloads.
    min_ms:
        Floor clamp (the paper's "Min" columns).
    outlier_p, outlier_scale:
        With probability ``outlier_p`` the draw is multiplied by
        ``outlier_scale`` — reproduces the "Max" rows that sit an order of
        magnitude above p99 (e.g. 60 ms max on a 4.3 ms median DynamoDB
        write).
    """

    p50_ms: float
    p99_ms: float
    per_kb_ms: float = 0.0
    min_ms: float = 0.0
    outlier_p: float = 0.002
    outlier_scale: float = 10.0

    def _params(self) -> tuple[float, float]:
        return lognormal_from_percentiles(self.p50_ms, self.p99_ms)

    def sample(self, rng: random.Random, size_kb: float = 0.0) -> float:
        mu, sigma = self._params()
        noise = math.exp(rng.gauss(0.0, sigma)) if sigma > 0 else 1.0
        base = self.p50_ms * noise
        # The bandwidth term shares the multiplicative noise: large payloads
        # widen the absolute spread, as in Table 6a (64 kB rows).
        value = base + self.per_kb_ms * size_kb * noise
        if self.outlier_p > 0 and rng.random() < self.outlier_p:
            value *= self.outlier_scale
        return max(self.min_ms, value)

    def median(self, size_kb: float = 0.0) -> float:
        return max(self.min_ms, self.p50_ms + self.per_kb_ms * size_kb)


@dataclass(frozen=True)
class Scaled(LatencyModel):
    """Wrap a model with a multiplicative factor (cross-region, memory...)."""

    inner: LatencyModel
    factor: float = 1.0
    extra_ms: float = 0.0

    def sample(self, rng: random.Random, size_kb: float = 0.0) -> float:
        return self.inner.sample(rng, size_kb) * self.factor + self.extra_ms

    def median(self, size_kb: float = 0.0) -> float:
        return self.inner.median(size_kb) * self.factor + self.extra_ms


def scaled(model: LatencyModel, factor: float = 1.0, extra_ms: float = 0.0) -> LatencyModel:
    """Convenience constructor for :class:`Scaled`."""
    if factor == 1.0 and extra_ms == 0.0:
        return model
    return Scaled(model, factor, extra_ms)
