"""Operation context: who is calling a service, from where, at what speed.

Every service generator takes an :class:`OpContext` as its first argument.
The context carries:

* ``payer`` — the cost-meter service label charged for the operation
  (e.g. ``"s3"`` vs ``"s3:system"``), letting benchmarks split costs the way
  Figures 9/11 do;
* ``io_mult`` — latency multiplier of the caller (functions with small
  memory allocations do I/O slower, Section 5.3.2);
* ``region`` — caller region; a mismatch with the service's region adds the
  inter-region penalty of Figure 4b.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["OpContext", "CLIENT_CTX"]


@dataclass(frozen=True)
class OpContext:
    payer: str | None = None
    io_mult: float = 1.0
    region: str | None = None
    arch: str = "x86"

    def with_payer(self, payer: str) -> "OpContext":
        return replace(self, payer=payer)

    def with_region(self, region: str) -> "OpContext":
        return replace(self, region=region)


#: Default context for direct client calls (full-speed I/O, no attribution).
CLIENT_CTX = OpContext()
