"""Simulated object store (S3 / Cloud Storage).

Models the properties the paper's storage decision rests on (Section 4.2):

* strong read-after-write consistency ([24] in the paper);
* whole-object writes only — no partial updates (Requirement #6 discusses
  the cost of this), so updating a node's metadata re-uploads all data;
* flat per-operation billing: writes 12.5x the price of reads (Figure 4a);
* latency linear in object size with an inter-region penalty (Figure 4b).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Generator, List, Optional

from ..sim.kernel import Environment, Event
from .calibration import CloudProfile
from .context import OpContext
from .errors import NoSuchBucket, NoSuchObject
from .faults import FaultInjector, draw_fault
from .pricing import CostMeter

__all__ = ["ObjectStore"]


class ObjectStore:
    """Named buckets of key -> (bytes-like payload, metadata dict)."""

    def __init__(
        self,
        env: Environment,
        profile: CloudProfile,
        meter: CostMeter,
        rng,
        region: str = "us-east-1",
        service_label: str = "object",
    ) -> None:
        self.env = env
        self.profile = profile
        self.meter = meter
        self.rng = rng
        self.region = region
        self.service_label = service_label
        self._buckets: Dict[str, Dict[str, tuple[Any, Dict[str, Any]]]] = {}
        #: Armed by deployments running a fault schedule (None = no draws).
        self.faults: Optional[FaultInjector] = None

    # ------------------------------------------------------------ buckets
    def create_bucket(self, name: str) -> None:
        if name in self._buckets:
            raise ValueError(f"bucket {name!r} already exists")
        self._buckets[name] = {}

    def _bucket(self, name: str) -> Dict[str, tuple[Any, Dict[str, Any]]]:
        try:
            return self._buckets[name]
        except KeyError:
            raise NoSuchBucket(name) from None

    def bucket_keys(self, name: str) -> List[str]:
        return sorted(self._bucket(name).keys())

    def raw(self, bucket: str, key: str) -> Optional[Any]:
        """Zero-latency payload peek for tests."""
        entry = self._bucket(bucket).get(key)
        return None if entry is None else entry[0]

    # ------------------------------------------------------------ helpers
    @staticmethod
    def payload_kb(payload: Any) -> float:
        if payload is None:
            return 0.0
        if isinstance(payload, (bytes, bytearray, memoryview)):
            return len(payload) / 1024.0
        if isinstance(payload, str):
            return len(payload.encode()) / 1024.0
        return 0.25  # opaque metadata-only objects

    def _latency(self, ctx: OpContext, model, size_kb: float) -> float:
        value = model.sample(self.rng, size_kb) * ctx.io_mult
        if ctx.region is not None and ctx.region != self.region:
            value += self.profile.inter_region_extra_ms
            value += self.profile.inter_region_per_kb_ms * size_kb
        return value

    # ------------------------------------------------------------ operations
    def put_object(
        self,
        ctx: OpContext,
        bucket: str,
        key: str,
        payload: Any,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Generator[Event, Any, None]:
        """Whole-object write (there is no partial-update path, Req. #6)."""
        objects = self._bucket(bucket)
        fault = draw_fault(self.faults, "put_object", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"put_object {bucket}/{key}")
        size_kb = self.payload_kb(payload)
        yield self.env.timeout(self._latency(ctx, self.profile.obj_write, size_kb))
        objects[key] = (payload, copy.deepcopy(metadata or {}))
        self.meter.charge(ctx.payer or self.service_label, "obj_write",
                          self.profile.prices.object_write_cost(size_kb))
        if fault is not None:
            self.faults.fire_after(fault, f"put_object {bucket}/{key}")

    def get_object(
        self,
        ctx: OpContext,
        bucket: str,
        key: str,
    ) -> Generator[Event, Any, tuple[Any, Dict[str, Any]]]:
        """Strongly consistent read; raises :class:`NoSuchObject` if absent."""
        objects = self._bucket(bucket)
        fault = draw_fault(self.faults, "get_object", mutating=False)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"get_object {bucket}/{key}")
        entry = objects.get(key)
        size_kb = self.payload_kb(entry[0]) if entry else 0.0
        yield self.env.timeout(self._latency(ctx, self.profile.obj_read, size_kb))
        self.meter.charge(ctx.payer or self.service_label, "obj_read",
                          self.profile.prices.object_read_cost(size_kb))
        entry = objects.get(key)
        if entry is None:
            raise NoSuchObject(f"{bucket}/{key}")
        payload, metadata = entry
        return payload, copy.deepcopy(metadata)

    def delete_object(
        self,
        ctx: OpContext,
        bucket: str,
        key: str,
    ) -> Generator[Event, Any, None]:
        objects = self._bucket(bucket)
        fault = draw_fault(self.faults, "delete_object", mutating=True)
        if fault is not None:
            yield from self.faults.fire_before(fault, f"delete_object {bucket}/{key}")
        yield self.env.timeout(self._latency(ctx, self.profile.obj_write, 0.0))
        objects.pop(key, None)
        self.meter.charge(ctx.payer or self.service_label, "obj_write",
                          self.profile.prices.object_write_cost(0.0))
        if fault is not None:
            self.faults.fire_after(fault, f"delete_object {bucket}/{key}")

    def total_stored_kb(self, bucket: str) -> float:
        return sum(self.payload_kb(p) for p, _ in self._bucket(bucket).values())
