"""Simulated ZooKeeper ensemble (the paper's IaaS baseline, Section 2.2).

A leader and ``n-1`` followers keep full replicas of the node tree.  Writes
are forwarded to the leader, which validates them against its replica,
assigns a monotone ``zxid`` and runs a ZAB-style atomic broadcast: the
transaction commits once a quorum (majority) of servers acknowledged the
proposal, and is then applied by every server in zxid order.  Reads are
served from the session's server-local replica; watches fire when that
server applies a matching transaction.

The model captures what the comparison in Section 5.3 needs:

* sub-millisecond reads from warm in-memory replicas over TCP;
* few-millisecond quorum writes, degrading as servers are added;
* session heartbeats and ephemeral-node expiry;
* per-server utilization accounting (Figure 5) and a fixed VM day-rate
  (Figure 14) instead of pay-as-you-go billing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..cloud.calibration import CloudProfile
from ..cloud.pricing import VM_DAY_RATE
from ..sim.kernel import Environment
from ..faaskeeper.model import (
    EventType,
    WatchType,
    WatchedEvent,
    node_name,
    parent_path,
    validate_path,
)

__all__ = ["ZooKeeperEnsemble", "ZkTxn", "ZkServer"]

#: Propagation delay from commit at the leader to apply at a follower (ms).
FOLLOWER_APPLY_DELAY_MS = 0.7
#: Session-expiry sweep interval at the leader (ms).
SESSION_SWEEP_MS = 1000.0


@dataclass
class ZkTxn:
    """One committed transaction."""

    zxid: int
    op: str                       # create | set_data | delete
    path: str
    data: bytes = b""
    ephemeral_owner: Optional[str] = None
    session: str = ""


def _new_node(data: bytes, zxid: int, owner: Optional[str]) -> Dict[str, Any]:
    return {
        "data": data, "version": 0, "cversion": 0,
        "created_tx": zxid, "modified_tx": zxid,
        "children": [], "cseq": 0, "ephemeral_owner": owner,
    }


class ZkServer:
    """One replica: a node tree plus the server-local watch table."""

    def __init__(self, index: int, env: Environment) -> None:
        self.index = index
        self.env = env
        self.tree: Dict[str, Dict[str, Any]] = {"/": _new_node(b"", 0, None)}
        self.applied_zxid = 0
        self.busy_ms = 0.0          # accumulated service time (Figure 5)
        self.reads = 0
        self.writes_applied = 0
        # watches: path -> type -> list of (session, callback)
        self.watches: Dict[str, Dict[str, List[Tuple[str, Callable]]]] = {}

    # ------------------------------------------------------------ replica ops
    def apply(self, txn: ZkTxn) -> List[Tuple[str, Callable, WatchedEvent]]:
        """Apply a committed transaction; returns watch deliveries due."""
        assert txn.zxid == self.applied_zxid + 1, \
            f"server {self.index}: apply {txn.zxid} after {self.applied_zxid}"
        self.applied_zxid = txn.zxid
        self.writes_applied += 1
        fired: List[Tuple[str, Callable, WatchedEvent]] = []
        if txn.op == "create":
            parent = self.tree[parent_path(txn.path)]
            parent["children"].append(node_name(txn.path))
            parent["cversion"] += 1
            if txn.path.rstrip("0123456789") != txn.path:
                parent["cseq"] += 1
            self.tree[txn.path] = _new_node(txn.data, txn.zxid, txn.ephemeral_owner)
            fired += self._fire(txn.path, WatchType.EXISTS,
                                EventType.NODE_CREATED, txn.zxid)
            fired += self._fire(parent_path(txn.path), WatchType.CHILDREN,
                                EventType.NODE_CHILDREN_CHANGED, txn.zxid)
        elif txn.op == "set_data":
            node = self.tree[txn.path]
            node["data"] = txn.data
            node["version"] += 1
            node["modified_tx"] = txn.zxid
            fired += self._fire(txn.path, WatchType.DATA,
                                EventType.NODE_DATA_CHANGED, txn.zxid)
            fired += self._fire(txn.path, WatchType.EXISTS,
                                EventType.NODE_DATA_CHANGED, txn.zxid)
        elif txn.op == "delete":
            parent = self.tree[parent_path(txn.path)]
            try:
                parent["children"].remove(node_name(txn.path))
            except ValueError:  # pragma: no cover - defensive
                pass
            parent["cversion"] += 1
            self.tree.pop(txn.path, None)
            for wtype in (WatchType.DATA, WatchType.EXISTS, WatchType.CHILDREN):
                fired += self._fire(txn.path, wtype, EventType.NODE_DELETED,
                                    txn.zxid)
            fired += self._fire(parent_path(txn.path), WatchType.CHILDREN,
                                EventType.NODE_CHILDREN_CHANGED, txn.zxid)
        return fired

    def _fire(self, path: str, wtype: WatchType, event_type: EventType,
              zxid: int) -> List[Tuple[str, Callable, WatchedEvent]]:
        registered = self.watches.get(path, {}).pop(wtype.value, None)
        if not registered:
            return []
        event = WatchedEvent(type=event_type, path=path, txid=zxid)
        return [(session, cb, event) for session, cb in registered]

    def register_watch(self, path: str, wtype: WatchType, session: str,
                       callback: Callable) -> None:
        self.watches.setdefault(path, {}).setdefault(wtype.value, []).append(
            (session, callback))

    def drop_session_watches(self, session: str) -> None:
        for per_path in self.watches.values():
            for key in list(per_path.keys()):
                per_path[key] = [(s, cb) for s, cb in per_path[key] if s != session]


@dataclass
class _Session:
    session_id: str
    server: ZkServer
    ephemerals: List[str] = field(default_factory=list)
    last_heartbeat: float = 0.0
    expired: bool = False


class ZooKeeperEnsemble:
    """The deployment: servers, sessions, the write pipeline."""

    def __init__(self, env: Environment, profile: CloudProfile, rng,
                 n_servers: int = 3, vm_type: str = "t3.medium",
                 session_timeout_ms: float = 10_000.0) -> None:
        if n_servers < 3 or n_servers % 2 == 0:
            raise ValueError("ensemble size must be odd and >= 3")
        self.env = env
        self.profile = profile
        self.rng = rng
        self.vm_type = vm_type
        self.session_timeout_ms = session_timeout_ms
        self.servers = [ZkServer(i, env) for i in range(n_servers)]
        self.leader = self.servers[0]
        self._zxid = 0
        self._session_ids = itertools.count(1)
        self.sessions: Dict[str, _Session] = {}
        self._expiry_callbacks: List[Callable[[str], None]] = []
        self._write_gate = None  # created lazily: serializes ZAB at the leader
        env.process(self._session_sweeper(), name="zk-session-sweeper")

    # ------------------------------------------------------------ sessions
    def open_session(self, server_index: Optional[int] = None) -> _Session:
        sid = f"zk-s{next(self._session_ids)}"
        server = self.servers[
            server_index if server_index is not None
            else self.rng.randrange(len(self.servers))]
        session = _Session(session_id=sid, server=server,
                           last_heartbeat=self.env.now)
        self.sessions[sid] = session
        return session

    def heartbeat(self, sid: str) -> None:
        session = self.sessions.get(sid)
        if session is not None:
            session.last_heartbeat = self.env.now

    def on_session_expired(self, callback: Callable[[str], None]) -> None:
        self._expiry_callbacks.append(callback)

    def _session_sweeper(self):
        while True:
            yield self.env.timeout(SESSION_SWEEP_MS)
            now = self.env.now
            for session in list(self.sessions.values()):
                if session.expired:
                    continue
                if now - session.last_heartbeat > self.session_timeout_ms:
                    yield from self._expire(session)

    def _expire(self, session: _Session):
        session.expired = True
        for path in sorted(session.ephemerals, key=lambda p: -p.count("/")):
            try:
                yield from self.submit_write("delete", path, session=session,
                                             internal=True)
            except Exception:  # pragma: no cover - already deleted
                pass
        session.server.drop_session_watches(session.session_id)
        self.sessions.pop(session.session_id, None)
        for callback in self._expiry_callbacks:
            callback(session.session_id)

    def close_session(self, session: _Session):
        yield from self._expire(session)

    # ------------------------------------------------------------ validation
    def _validate(self, op: str, path: str, version: int,
                  session: _Session, ephemeral: bool, sequence: bool):
        """Leader-side validation; returns an error code or the final path."""
        tree = self.leader.tree
        if op == "create":
            parent = parent_path(path)
            if parent not in tree:
                return "no_node"
            if tree[parent].get("ephemeral_owner"):
                return "no_children_for_ephemerals"
            final = path
            if sequence:
                final = f"{path}{tree[parent]['cseq']:010d}"
            if final in tree:
                return "node_exists"
            return final
        if path not in tree:
            return "no_node"
        node = tree[path]
        if version >= 0 and node["version"] != version:
            return "bad_version"
        if op == "delete" and node["children"]:
            return "not_empty"
        return path

    # ------------------------------------------------------------ writes
    def submit_write(self, op: str, path: str, session: _Session,
                     data: bytes = b"", version: int = -1,
                     ephemeral: bool = False, sequence: bool = False,
                     internal: bool = False
                     ) -> Generator[Any, Any, Tuple[str, ZkTxn]]:
        """Full write pipeline; returns (error|"ok", txn)."""
        from ..sim.resources import Resource

        if self._write_gate is None:
            self._write_gate = Resource(self.env, capacity=1)
        # client -> serving server -> leader hop
        if not internal:
            yield self.env.timeout(self.profile.zk_tcp_rtt_ms / 2)
            if session.server is not self.leader:
                yield self.env.timeout(FOLLOWER_APPLY_DELAY_MS / 2)
        # The leader serializes proposals (single ZAB pipeline).
        req = self._write_gate.request()
        yield req
        try:
            result = self._validate(op, path, version, session, ephemeral, sequence)
            if result in ("no_node", "node_exists", "bad_version", "not_empty",
                          "no_children_for_ephemerals"):
                return result, None
            final_path = result
            # quorum broadcast: latency grows mildly with ensemble size
            # (the paper: "adding more servers hurts write performance")
            size_kb = len(data) / 1024.0
            quorum_factor = 1.0 + 0.15 * (len(self.servers) - 3)
            latency = self.profile.zk_write.sample(self.rng, size_kb) * quorum_factor
            yield self.env.timeout(latency)
            self.leader.busy_ms += latency
            self._zxid += 1
            txn = ZkTxn(zxid=self._zxid, op=op, path=final_path, data=data,
                        ephemeral_owner=session.session_id if ephemeral else None,
                        session=session.session_id)
            deliveries = self.leader.apply(txn)
            self._deliver(deliveries)
            for server in self.servers[1:]:
                self.env.process(self._follower_apply(server, txn),
                                 name=f"zk-apply-{server.index}")
        finally:
            self._write_gate.release(req)
        if ephemeral and not internal:
            session.ephemerals.append(final_path)
        if op == "delete":
            for s in self.sessions.values():
                if final_path in s.ephemerals:
                    s.ephemerals.remove(final_path)
        # response travels back through the serving server
        if not internal:
            yield self.env.timeout(self.profile.zk_tcp_rtt_ms / 2)
        return "ok", txn

    def _follower_apply(self, server: ZkServer, txn: ZkTxn):
        yield self.env.timeout(FOLLOWER_APPLY_DELAY_MS)
        # zxid-ordered application: wait for predecessors if needed
        while server.applied_zxid < txn.zxid - 1:  # pragma: no cover - rare
            yield self.env.timeout(0.05)
        self._deliver(server.apply(txn))

    def _deliver(self, deliveries) -> None:
        for _session, callback, event in deliveries:
            callback(event)

    # ------------------------------------------------------------ reads
    def read(self, session: _Session, path: str
             ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        """Serve from the session's local replica over the warm TCP link."""
        server = session.server
        node = server.tree.get(path)
        size_kb = len(node["data"]) / 1024.0 if node else 0.0
        latency = self.profile.zk_read.sample(self.rng, size_kb)
        yield self.env.timeout(latency)
        server.busy_ms += latency
        server.reads += 1
        node = server.tree.get(path)
        if node is None:
            return None
        return {
            "path": path, "data": node["data"], "version": node["version"],
            "cversion": node["cversion"], "created_tx": node["created_tx"],
            "modified_tx": node["modified_tx"],
            "children": list(node["children"]),
            "ephemeral_owner": node["ephemeral_owner"],
        }

    # ------------------------------------------------------------ economics
    def daily_cost(self, storage_gb: float = 20.0) -> float:
        """Fixed cost: n VMs plus block storage (Section 5.3.4)."""
        vm = len(self.servers) * VM_DAY_RATE[self.vm_type]
        ebs = len(self.servers) * storage_gb * \
            self.profile.prices.block_storage_gb_month / 30.0
        return vm + ebs

    def utilization(self, window_ms: float) -> List[float]:
        """Per-server busy fraction over the last window (Figure 5)."""
        return [min(1.0, s.busy_ms / window_ms) for s in self.servers]
