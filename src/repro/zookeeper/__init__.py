"""Simulated ZooKeeper: the IaaS baseline FaaSKeeper is compared against.

Helper :func:`deploy_zookeeper` stands up an ensemble on a cloud's clock::

    from repro.cloud import Cloud
    from repro.zookeeper import deploy_zookeeper

    cloud = Cloud.aws(seed=1)
    zk = deploy_zookeeper(cloud, n_servers=3, vm_type="t3.medium")
    client = zk.connect()
"""

from __future__ import annotations

from typing import Optional

from ..cloud.cloud import Cloud
from .client import ZooKeeperClient
from .ensemble import ZkServer, ZkTxn, ZooKeeperEnsemble

__all__ = ["ZooKeeperEnsemble", "ZooKeeperClient", "ZkTxn", "ZkServer",
           "ZooKeeperDeployment", "deploy_zookeeper"]


class ZooKeeperDeployment:
    """Convenience wrapper pairing an ensemble with client factories."""

    def __init__(self, cloud: Cloud, n_servers: int = 3,
                 vm_type: str = "t3.medium",
                 session_timeout_ms: float = 10_000.0) -> None:
        self.cloud = cloud
        self.ensemble = ZooKeeperEnsemble(
            cloud.env, cloud.profile, cloud.rng.stream("zookeeper"),
            n_servers=n_servers, vm_type=vm_type,
            session_timeout_ms=session_timeout_ms)

    def connect(self, server_index: Optional[int] = None,
                auto_heartbeat: bool = True) -> ZooKeeperClient:
        return ZooKeeperClient(self.ensemble, server_index, auto_heartbeat)

    def daily_cost(self, storage_gb: float = 20.0) -> float:
        return self.ensemble.daily_cost(storage_gb)


def deploy_zookeeper(cloud: Cloud, n_servers: int = 3,
                     vm_type: str = "t3.medium",
                     session_timeout_ms: float = 10_000.0) -> ZooKeeperDeployment:
    return ZooKeeperDeployment(cloud, n_servers, vm_type, session_timeout_ms)
