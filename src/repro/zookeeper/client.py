"""ZooKeeper client with the same surface as the FaaSKeeper client.

Benchmarks drive both systems through an identical API, so the comparison
figures (8, 9, 14) exercise the same call patterns.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..faaskeeper.client import WriteResult
from ..faaskeeper.exceptions import (
    BadVersionError,
    NoChildrenForEphemeralsError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    SessionClosedError,
)
from ..faaskeeper.model import NodeStat, WatchType, validate_path
from .ensemble import ZooKeeperEnsemble

__all__ = ["ZooKeeperClient"]

_ERRORS = {
    "no_node": NoNodeError,
    "node_exists": NodeExistsError,
    "bad_version": BadVersionError,
    "not_empty": NotEmptyError,
    "no_children_for_ephemerals": NoChildrenForEphemeralsError,
}


class ZooKeeperClient:
    """Synchronous client bound to one session of the ensemble."""

    def __init__(self, ensemble: ZooKeeperEnsemble,
                 server_index: Optional[int] = None,
                 auto_heartbeat: bool = True) -> None:
        self.ensemble = ensemble
        self.env = ensemble.env
        self.session = ensemble.open_session(server_index)
        self.watch_events: List = []
        self.auto_heartbeat = auto_heartbeat
        if auto_heartbeat:
            self._hb_proc = self.env.process(self._heartbeat_loop(),
                                             name=f"zk-hb-{self.session.session_id}")

    # ------------------------------------------------------------ plumbing
    @property
    def session_id(self) -> str:
        return self.session.session_id

    @property
    def closed(self) -> bool:
        return self.session.expired

    def _heartbeat_loop(self):
        from ..sim.kernel import Interrupt

        period = self.ensemble.session_timeout_ms / 3.0
        try:
            while not self.session.expired:
                self.ensemble.heartbeat(self.session_id)
                yield self.env.timeout(period)
        except Interrupt:
            return

    def stop_heartbeats(self) -> None:
        """Simulate a client failure (the session will expire)."""
        self.auto_heartbeat = False
        if self._hb_proc is not None and self._hb_proc.is_alive:
            self._hb_proc.interrupt("stopped")
            self._hb_proc = None

    def _run(self, generator) -> Any:
        proc = self.env.process(generator)
        return self.env.run(until=proc)

    def _check_open(self) -> None:
        if self.session.expired:
            raise SessionClosedError(self.session_id)

    # ------------------------------------------------------------ writes
    def _write(self, op: str, path: str, **kwargs) -> Tuple[str, Any]:
        self._check_open()
        validate_path(path, allow_root=False)

        def flow():
            return (yield from self.ensemble.submit_write(
                op, path, session=self.session, **kwargs))

        error, txn = self._run(flow())
        if error != "ok":
            raise _ERRORS[error](f"{op} {path}: {error}")
        return error, txn

    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequence: bool = False) -> str:
        _, txn = self._write("create", path, data=bytes(data),
                             ephemeral=ephemeral, sequence=sequence)
        return txn.path

    def set_data(self, path: str, data: bytes, version: int = -1) -> WriteResult:
        _, txn = self._write("set_data", path, data=bytes(data), version=version)
        node = self.ensemble.leader.tree[path]
        return WriteResult(path=path, txid=txn.zxid, version=node["version"])

    def delete(self, path: str, version: int = -1) -> None:
        self._write("delete", path, version=version)

    # ------------------------------------------------------------ reads
    def _read(self, path: str, wtype: Optional[WatchType],
              watch: Optional[Callable]) -> Optional[Dict[str, Any]]:
        self._check_open()
        validate_path(path)
        if watch is not None and wtype is not None:
            def tracked(event):
                self.watch_events.append(event)
                watch(event)
            self.session.server.register_watch(path, wtype, self.session_id, tracked)
        return self._run(self.ensemble.read(self.session, path))

    def get_data(self, path: str, watch: Optional[Callable] = None
                 ) -> Tuple[bytes, NodeStat]:
        image = self._read(path, WatchType.DATA, watch)
        if image is None:
            raise NoNodeError(path)
        return image["data"], NodeStat.from_image(image)

    def exists(self, path: str, watch: Optional[Callable] = None
               ) -> Optional[NodeStat]:
        image = self._read(path, WatchType.EXISTS, watch)
        if image is None:
            return None
        return NodeStat.from_image(image)

    def get_children(self, path: str, watch: Optional[Callable] = None
                     ) -> List[str]:
        image = self._read(path, WatchType.CHILDREN, watch)
        if image is None:
            raise NoNodeError(path)
        return sorted(image["children"])

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self.session.expired:
            return
        self.stop_heartbeats()
        self._run(self.ensemble.close_session(self.session))

    def __enter__(self) -> "ZooKeeperClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
