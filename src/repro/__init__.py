"""repro: a full reproduction of "FaaSKeeper: Learning from Building
Serverless Services with ZooKeeper as an Example" (HPDC 2024).

Subpackages
-----------
sim
    Deterministic discrete-event simulation kernel.
cloud
    Simulated AWS/GCP substrate: key-value store, object store, queues,
    functions, pricing — calibrated to the paper's measurements.
primitives
    Serverless synchronization primitives (timed lock, atomic counter/list).
faaskeeper
    The paper's contribution: follower/leader/watch/heartbeat functions and
    the kazoo-like client.
zookeeper
    The IaaS baseline: a ZAB-style replicated ensemble.
costmodel
    Analytic cost models (Table 4, Figures 4a/13/14).
workloads
    YCSB, read/write mixes, the HBase coordination trace.
analysis
    Percentile summaries and table renderers used by benchmarks.
"""

__version__ = "1.0.0"

__all__ = [
    "sim", "cloud", "primitives", "faaskeeper", "zookeeper",
    "costmodel", "workloads", "analysis",
]
