"""fklint: domain-aware static analysis + runtime sanitizer.

Static rules (``python -m repro.fklint src examples benchmarks``):

====== ===================== ==============================================
FK001  determinism           no wall clock / ambient RNG outside the kernel
FK002  atomic-commit         log/outbox writes only via transact_update
FK003  watch-guard           watch-instance Remove needs the id+session guard
FK004  handler-state         no mutable module state in handler modules
FK005  blocking-in-coroutine no env.run/time.sleep/sync facades in co_* cores
FK006  config-hygiene        every config knob: default + annotation + README
====== ===================== ==============================================

The runtime half (:mod:`repro.fklint.sanitize`, armed by ``FK_SANITIZE=1``)
asserts the dynamic portions of FK002/FK003 at the kvstore layer.

This module stays import-light: the cloud layer imports
:mod:`repro.fklint.sanitize`, so nothing here may import from
:mod:`repro.cloud` or :mod:`repro.faaskeeper`.
"""

from .core import (Checker, Finding, LintContext, all_checkers, lint_file,
                   lint_paths, lint_source, register)

__all__ = ["Checker", "Finding", "LintContext", "all_checkers",
           "lint_file", "lint_paths", "lint_source", "register"]
