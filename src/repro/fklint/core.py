"""fklint core: findings, the checker registry, suppressions, the driver.

``fklint`` is a *domain-aware* static analyser: its rules are not generic
style checks but machine-enforced versions of the invariants this
reproduction's correctness story rests on — determinism off the sim
kernel (the fingerprint gates), atomic system-table commits (the
commit-log/outbox transaction), the guarded watch-removal protocol (the
bug class fixed independently in the PR 3 GC sweep and the PR 5 watch
consume), stateless cold-restartable function handlers (the chaos
suite's model of sandbox loss), non-blocking ``co_*`` coroutine cores,
and config-knob hygiene.

Architecture:

* :class:`Finding` — one diagnostic (rule id, message, file, line, col);
* :class:`LintContext` — everything a checker may look at: the parsed
  AST, the raw source, the *scope path* (a normalised, project-relative
  posix path used to decide which rules apply where) and the project's
  README text (for documentation-completeness rules);
* :class:`Checker` + :func:`register` — the per-rule plugin registry;
  checkers are plain AST visitors instantiated per file;
* suppressions — ``# fklint: disable=FK001[,FK002]`` on the offending
  line (or ``disable-file=...`` anywhere) silences a rule *with an
  audit trail*: CONTRIBUTING.md requires every suppression to carry a
  justification in the same comment or the line above.

The driver (:func:`lint_source` / :func:`lint_file` / :func:`lint_paths`)
parses each file once and hands the same tree to every applicable
checker, so a whole-repo run stays fast enough for a pre-commit hook.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "LintContext",
    "Checker",
    "register",
    "all_checkers",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "PARSE_ERROR_RULE",
]

#: Pseudo-rule reported when a file does not parse at all.
PARSE_ERROR_RULE = "FK000"

_SUPPRESS_RE = re.compile(
    r"#\s*fklint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, ordered for stable reports."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


class LintContext:
    """Per-file lint state shared by every checker."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 scope_path: str, readme_text: Optional[str] = None) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: Normalised project-relative posix path ("src/repro/faaskeeper/
        #: leader.py") — what rule scoping predicates match against.
        self.scope_path = scope_path
        self.readme_text = readme_text
        self.lines = source.splitlines()

    # ---------------------------------------------------------- scoping
    def in_dir(self, *parts: str) -> bool:
        """True when the file lives under a ``/``-joined directory chain
        anywhere in its path (``in_dir("repro", "faaskeeper")``)."""
        needle = "/" + "/".join(parts) + "/"
        return needle in "/" + self.scope_path

    def basename(self) -> str:
        return self.scope_path.rsplit("/", 1)[-1]

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(path=self.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule=rule, message=message)


class Checker:
    """Base class of one rule.  Subclasses set the class attributes and
    implement :meth:`check`; :func:`register` adds them to the registry."""

    #: Rule identifier ("FK001").
    rule: str = ""
    #: Short slug used by ``--select`` ("determinism").
    name: str = ""
    #: One-line description shown by ``--list-rules``.
    description: str = ""

    def applies(self, ctx: LintContext) -> bool:  # pragma: no cover - default
        return True

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: add a checker to the global registry."""
    if not cls.rule or not cls.name:
        raise ValueError(f"checker {cls.__name__} needs rule and name")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> List[Type[Checker]]:
    """Registered checkers, in rule-id order.  Importing
    :mod:`repro.fklint.checkers` populates the registry."""
    from . import checkers as _checkers  # noqa: F401  (registration import)
    return [_REGISTRY[rule] for rule in sorted(_REGISTRY)]


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------

def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Scan for ``# fklint: disable=...`` comments.

    Returns (line -> suppressed rules, file-wide suppressed rules); the
    wildcard ``all`` suppresses every rule.  Comment scanning is textual
    (not tokenised) — good enough because the marker never appears inside
    string literals in practice, and a false suppression is loudly
    visible in the diff.
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {r.strip().upper() for r in match.group("rules").split(",")
                 if r.strip()}
        if match.group("kind") == "disable-file":
            file_wide |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return per_line, file_wide


def _suppressed(finding: Finding, per_line: Dict[int, Set[str]],
                file_wide: Set[str]) -> bool:
    for rules in (file_wide, per_line.get(finding.line, set())):
        if "ALL" in rules or finding.rule in rules:
            return True
    return False


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def _scope_path(path: str, root: Optional[Path]) -> str:
    """Project-relative posix form of ``path`` (best effort)."""
    p = Path(path)
    try:
        resolved = p.resolve()
    except OSError:  # pragma: no cover - unresolvable path
        resolved = p
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return p.as_posix().lstrip("./")


def find_project_root(start: Path) -> Optional[Path]:
    """Nearest ancestor holding a ``pyproject.toml`` (or ``.git``)."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        if (candidate / "pyproject.toml").exists() or \
                (candidate / ".git").exists():
            return candidate
    return None


def lint_source(source: str, path: str = "<string>",
                scope_path: Optional[str] = None,
                readme_text: Optional[str] = None,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source blob.  ``scope_path`` is the virtual location used
    for rule scoping (tests pass e.g. ``src/repro/faaskeeper/leader.py``);
    it defaults to ``path``."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1, rule=PARSE_ERROR_RULE,
                        message=f"file does not parse: {exc.msg}")]
    ctx = LintContext(path=path, source=source, tree=tree,
                      scope_path=(scope_path or path).replace("\\", "/"),
                      readme_text=readme_text)
    wanted = {r.upper() for r in select} if select else None
    findings: List[Finding] = []
    for cls in all_checkers():
        if wanted is not None and cls.rule not in wanted and \
                cls.name.upper() not in wanted:
            continue
        checker = cls()
        if not checker.applies(ctx):
            continue
        findings.extend(checker.check(ctx))
    per_line, file_wide = _parse_suppressions(source)
    findings = [f for f in findings
                if not _suppressed(f, per_line, file_wide)]
    return sorted(findings)


def lint_file(path: str, root: Optional[Path] = None,
              readme_text: Optional[str] = None,
              select: Optional[Sequence[str]] = None) -> List[Finding]:
    try:
        source = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(path=path, line=1, col=1, rule=PARSE_ERROR_RULE,
                        message=f"cannot read file: {exc}")]
    if root is None:
        root = find_project_root(Path(path))
    if readme_text is None and root is not None:
        readme = root / "README.md"
        if readme.exists():
            readme_text = readme.read_text(encoding="utf-8")
    return lint_source(source, path=path,
                       scope_path=_scope_path(path, root),
                       readme_text=readme_text, select=select)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files,
    skipping caches, hidden directories and build output."""
    out: List[str] = []
    skip_dirs = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache",
                 "build", "dist", ".eggs"}
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            out.append(str(p))
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for sub in sorted(p.rglob("*.py")):
            if any(part in skip_dirs or part.startswith(".")
                   for part in sub.parts):
                continue
            if sub.name.endswith(".egg-info"):  # pragma: no cover
                continue
            out.append(str(sub))
    return out


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None
               ) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns (findings, files checked)."""
    files = iter_python_files(paths)
    readme_cache: Dict[Path, Optional[str]] = {}
    findings: List[Finding] = []
    for path in files:
        root = find_project_root(Path(path))
        if root is not None and root not in readme_cache:
            readme = root / "README.md"
            readme_cache[root] = (readme.read_text(encoding="utf-8")
                                  if readme.exists() else None)
        findings.extend(lint_file(
            path, root=root,
            readme_text=readme_cache.get(root) if root else None,
            select=select))
    return sorted(findings), len(files)
