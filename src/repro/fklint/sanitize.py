"""Runtime sanitizer: the dynamic half of FK002/FK003.

Static analysis cannot see through dynamically-computed table names or
update lists built at runtime, so the kvstore facade calls
:func:`check_mutation` at the top of every mutator when ``FK_SANITIZE=1``
is set (the CI sanitizer leg runs the whole tier-1 suite this way).  The
checks are cheap string/type tests — disarmed, the cost is one module
attribute read per storage op — and a violation raises
:class:`SanitizerError` (an ``AssertionError`` subclass) at the exact
offending call, ASan-style, instead of letting a torn commit or an
unguarded watch sweep surface three tests later as a flaky timeout.

Armed invariants:

* **FK002** — ``fk-system-log`` / ``fk-system-outbox`` accept appends
  only inside a storage transaction (``transact_update``: the commit's
  conditional multi-item write); plain ``put_item``/``update_item`` on
  them raises.  Deletes (compaction/retention) must be conditional.
* **FK003** — a ``Remove`` of an ``inst.*`` attribute on
  ``fk-system-watches`` must carry a condition (the id + session-list
  guard of the guarded-removal protocol), transactional or not.

This module is imported by :mod:`repro.cloud.kvstore`, so it must not
import anything from :mod:`repro.cloud` or :mod:`repro.faaskeeper` —
update actions are duck-typed by class name.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence

__all__ = ["SanitizerError", "enabled", "check_mutation"]

APPEND_ONLY_TABLES = ("fk-system-log", "fk-system-outbox")
WATCH_TABLE = "fk-system-watches"


class SanitizerError(AssertionError):
    """A machine-checked storage-discipline invariant was violated."""


def enabled() -> bool:
    """True when ``FK_SANITIZE=1`` arms the assertions."""
    return os.environ.get("FK_SANITIZE", "") == "1"


def _is_instance_remove(action: Any) -> bool:
    return (type(action).__name__ == "Remove"
            and str(getattr(action, "path", "")).startswith("inst"))


def check_mutation(method: str, table_name: str, key: str,
                   updates: Optional[Sequence[Any]] = None,
                   condition: Optional[Any] = None,
                   transactional: bool = False) -> None:
    """Assert the FK002/FK003 storage invariants for one mutation.

    Called by the kvstore facade with the *resolved* table name, so
    dynamically-built names the static checker cannot see are covered.
    """
    if table_name in APPEND_ONLY_TABLES:
        if method in ("put_item", "update_item") and not transactional:
            raise SanitizerError(
                f"FK002: direct {method} on {table_name!r} (key={key!r}) "
                "outside a storage transaction — log/outbox records must "
                "ride the commit's conditional transact_update "
                "(SnapshotManager.append_log); see CONTRIBUTING.md")
        if method == "delete_item" and condition is None:
            raise SanitizerError(
                f"FK002: unconditional delete_item on {table_name!r} "
                f"(key={key!r}) — compaction/retention deletes must be "
                "guarded by a watermark/floor condition; see "
                "CONTRIBUTING.md")
    if table_name == WATCH_TABLE and updates is not None and \
            condition is None:
        for action in updates:
            if _is_instance_remove(action):
                raise SanitizerError(
                    f"FK003: unguarded Remove of watch instance "
                    f"{getattr(action, 'path', '?')!r} on {table_name!r} "
                    f"(key={key!r}) — condition the update on the "
                    "observed instance id AND session list "
                    "(guarded-removal protocol); see CONTRIBUTING.md")
