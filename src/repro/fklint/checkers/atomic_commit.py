"""FK002 — atomic-commit discipline on the log/outbox system tables.

The durability and event-streaming guarantees (PR 6/PR 7) hinge on one
property: a committed transaction's log record, its per-shard head
watermark and its outbox event are written in a **single conditional
``transact_update``** (``SnapshotManager.append_log``).  A direct
``put_item``/``update_item`` on ``fk-system-log`` or ``fk-system-outbox``
bypasses that transaction — a crash between two plain writes leaves a
committed change without its event (or an event without its change),
exactly the torn state the transactional-outbox pattern exists to rule
out.  Deletes are legitimate only for compaction/retention and must be
**conditional** (compaction clamps to the slowest region's watermark;
outbox GC checks the published floor), so an unconditional
``delete_item`` is flagged too.

The rule also keeps non-core code honest: any mutation of *any*
``fk-system-*`` table from ``examples/`` or ``benchmarks/`` is flagged —
system tables belong to the pipeline functions, and artifacts that poke
them are measuring a deployment that cannot exist.

The runtime half of this rule lives in :mod:`repro.fklint.sanitize`
(armed by ``FK_SANITIZE=1``), which catches dynamically-computed table
names this static check cannot resolve.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Checker, Finding, LintContext, register
from .common import call_arg, call_kwarg, table_name_of

#: Tables whose append path must ride the commit transaction.
APPEND_ONLY_TABLES = ("fk-system-log", "fk-system-outbox")
MUTATORS = {"put_item": 2, "update_item": 2, "delete_item": 2}


@register
class AtomicCommitChecker(Checker):
    rule = "FK002"
    name = "atomic-commit"
    description = ("direct write to fk-system-log/outbox outside the "
                   "commit transact_update (torn commit/event state)")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        outside_core = not ctx.in_dir("repro", "faaskeeper")
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in MUTATORS:
                continue
            # Signature: (ctx, table_name, key, ...) on the store facade.
            table = table_name_of(call_arg(node, 1, "table_name"))
            if table is None:
                continue
            if table in APPEND_ONLY_TABLES:
                if method in ("put_item", "update_item"):
                    findings.append(ctx.finding(
                        self.rule, node,
                        f"direct `{method}` on `{table}`: log/outbox "
                        "records must be appended inside the commit's "
                        "conditional transact_update "
                        "(SnapshotManager.append_log)"))
                elif call_kwarg(node, "condition") is None:
                    findings.append(ctx.finding(
                        self.rule, node,
                        f"unconditional `delete_item` on `{table}`: "
                        "compaction/retention deletes must be guarded by "
                        "a condition (watermark clamp / published floor)"))
            elif outside_core and table.startswith("fk-system-"):
                findings.append(ctx.finding(
                    self.rule, node,
                    f"`{method}` on system table `{table}` outside the "
                    "faaskeeper core: system tables are owned by the "
                    "pipeline functions"))
        return findings
