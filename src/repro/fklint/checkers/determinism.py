"""FK001 — determinism: no ambient wall clock or process RNG.

Every benchmark table and every bit-for-bit fingerprint gate in CI rests
on runs being reproducible from a single seed: time must come from the
sim kernel's virtual clock (``env.now``) and randomness from a named
:class:`repro.sim.rng.RngRegistry` stream (or an explicitly seeded
``random.Random(seed)``).  One stray ``time.time()`` or ``random.random()``
in the service, the cloud models, an example or a benchmark makes output
artifacts (``BENCH_*.json``, fingerprints) machine-dependent and turns
every seeded chaos replay into a heisenbug.

Flags calls to the ambient stdlib clocks (``time.time``/``monotonic``/
``perf_counter``/``sleep``, ``datetime.now``/``utcnow``/``today``), the
module-level ``random.*`` functions (they draw from the global, per-process
stream), **unseeded** ``random.Random()``, ``uuid.uuid1``/``uuid4``,
``os.urandom`` and the ``secrets`` module.  ``random.Random(seed)`` with an
explicit seed argument is allowed — that is the sanctioned escape hatch the
chaos monkey and workload generators use.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Checker, Finding, LintContext, register
from .common import ImportMap, resolve_call_name

#: Fully-qualified callables that read ambient time or entropy.
FORBIDDEN_CALLS = {
    "time.time": "use the sim kernel clock (env.now)",
    "time.time_ns": "use the sim kernel clock (env.now)",
    "time.monotonic": "use the sim kernel clock (env.now)",
    "time.monotonic_ns": "use the sim kernel clock (env.now)",
    "time.perf_counter": "use the sim kernel clock (env.now)",
    "time.perf_counter_ns": "use the sim kernel clock (env.now)",
    "time.sleep": "advance virtual time with env.timeout(...) instead",
    "datetime.datetime.now": "use the sim kernel clock (env.now)",
    "datetime.datetime.utcnow": "use the sim kernel clock (env.now)",
    "datetime.datetime.today": "use the sim kernel clock (env.now)",
    "datetime.date.today": "use the sim kernel clock (env.now)",
    "uuid.uuid1": "derive ids from seeded counters or RngRegistry streams",
    "uuid.uuid4": "derive ids from seeded counters or RngRegistry streams",
    "os.urandom": "draw from a seeded RngRegistry stream",
    "secrets.token_bytes": "draw from a seeded RngRegistry stream",
    "secrets.token_hex": "draw from a seeded RngRegistry stream",
    "secrets.token_urlsafe": "draw from a seeded RngRegistry stream",
    "secrets.randbelow": "draw from a seeded RngRegistry stream",
    "secrets.choice": "draw from a seeded RngRegistry stream",
}

#: Module-level ``random.*`` functions: every one of these draws from the
#: process-global stream, whose state no seed in this codebase controls.
GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed", "setstate", "getstate",
}


@register
class DeterminismChecker(Checker):
    rule = "FK001"
    name = "determinism"
    description = ("wall-clock/ambient-RNG call outside the sim kernel "
                   "(breaks fingerprint gates and seeded replays)")

    def applies(self, ctx: LintContext) -> bool:
        return (ctx.in_dir("repro", "faaskeeper")
                or ctx.in_dir("repro", "cloud")
                or ctx.in_dir("examples") or ctx.in_dir("benchmarks")
                or ctx.scope_path.startswith(("examples/", "benchmarks/")))

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_name(node, imports)
            if target is None:
                continue
            hint = FORBIDDEN_CALLS.get(target)
            if hint is not None:
                findings.append(ctx.finding(
                    self.rule, node,
                    f"nondeterministic call `{target}()`: {hint}"))
                continue
            head, _, tail = target.partition(".")
            if head == "random" and tail in GLOBAL_RANDOM_FNS:
                findings.append(ctx.finding(
                    self.rule, node,
                    f"global-stream RNG call `random.{tail}()`: draw from "
                    "a seeded RngRegistry stream or random.Random(seed)"))
            elif target == "random.Random" and not node.args and \
                    not node.keywords:
                findings.append(ctx.finding(
                    self.rule, node,
                    "unseeded random.Random(): pass an explicit seed so "
                    "runs replay bit-for-bit"))
        return findings
