"""Shared AST utilities for the domain checkers."""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["ImportMap", "dotted_name", "resolve_call_name",
           "table_name_of", "call_kwarg", "call_arg"]

#: System-table constant names -> the table-name strings they hold
#: (mirrors ``repro.faaskeeper.layout``; kept literal so the linter does
#: not import the code under analysis).
TABLE_CONSTANTS: Dict[str, str] = {
    "SYSTEM_NODES": "fk-system-nodes",
    "SYSTEM_STATE": "fk-system-state",
    "SYSTEM_SESSIONS": "fk-system-sessions",
    "SYSTEM_WATCHES": "fk-system-watches",
    "SYSTEM_LOG": "fk-system-log",
    "SYSTEM_SNAPSHOT": "fk-system-snapshot",
    "SYSTEM_OUTBOX": "fk-system-outbox",
    "USER_TABLE": "fk-user-nodes",
}


class ImportMap(ast.NodeVisitor):
    """Resolve local names to fully-qualified module paths.

    ``import time as t`` maps ``t -> time``; ``from datetime import
    datetime as dt`` maps ``dt -> datetime.datetime``.  Only top-level
    and function-local imports of *absolute* modules are tracked — which
    covers how stdlib clock/RNG modules are actually imported.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            return  # relative import: project-internal, never stdlib
        for alias in node.names:
            if alias.name == "*":
                continue
            self.aliases[alias.asname or alias.name] = \
                f"{node.module}.{alias.name}"

    def expand(self, dotted: str) -> str:
        """Rewrite the leading component through the alias map."""
        head, _, rest = dotted.partition(".")
        expanded = self.aliases.get(head, head)
        return f"{expanded}.{rest}" if rest else expanded


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_name(call: ast.Call, imports: ImportMap) -> Optional[str]:
    """Fully-qualified dotted name of a call target, alias-expanded."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return imports.expand(name)


def call_kwarg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def call_arg(call: ast.Call, index: int, name: str) -> Optional[ast.expr]:
    """Positional-or-keyword argument lookup."""
    kw = call_kwarg(call, name)
    if kw is not None:
        return kw
    if len(call.args) > index:
        return call.args[index]
    return None


def table_name_of(node: Optional[ast.expr]) -> Optional[str]:
    """Best-effort resolution of a kvstore table argument to its string.

    Handles string literals, the layout-module constants (``SYSTEM_LOG``)
    and attribute access on them (``layout.SYSTEM_LOG``).  Anything
    dynamic resolves to None — the runtime sanitizer covers those.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = dotted_name(node)
    if name is None:
        return None
    return TABLE_CONSTANTS.get(name.rsplit(".", 1)[-1])
