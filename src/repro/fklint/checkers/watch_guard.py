"""FK003 — guarded watch removal.

The watch table maps a path to at-most-one instance per watch type, with
a session list that concurrent registrations append to.  Removing an
instance with a plain ``Remove`` races registration: a session that
joined (or re-created) the instance between the reader's snapshot and
the removal is swept away *silently* — never notified, its re-arm dead,
any cache entry the instance guards stale forever.  This exact bug was
found and fixed twice independently — in the PR 3 GC sweep and again in
the PR 5 watch consume (where it livelocked the lock recipe under
cache + distributor) — which is precisely why it is now a machine rule.

The protocol: every ``Remove`` of an ``inst.*`` attribute on
``fk-system-watches`` must be conditioned on the instance still matching
the observed snapshot — id **and** session list
(:meth:`WatchRegistry.remove_instance` / ``_consume_types``) — and
retried from a fresh read on conflict.  Statically we flag any
``update_item`` on the watch table whose updates contain a ``Remove`` of
an instance attribute without a ``condition=``; the ``FK_SANITIZE=1``
runtime assertion covers call sites this cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Checker, Finding, LintContext, register
from .common import call_arg, call_kwarg, table_name_of

WATCH_TABLE = "fk-system-watches"


def _is_instance_remove(node: ast.expr) -> bool:
    """``Remove("inst...")`` (or dotted ``expressions.Remove``)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else \
        func.id if isinstance(func, ast.Name) else None
    if name != "Remove":
        return False
    if not node.args:
        return True  # malformed Remove: flag conservatively
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value.startswith("inst")
    # f-string / computed attribute path: assume it targets an instance.
    return True


@register
class WatchGuardChecker(Checker):
    rule = "FK003"
    name = "watch-guard"
    description = ("watch-instance Remove without the id+session-list "
                   "guard (silently unsubscribes racing sessions)")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr == "update_item":
                table = table_name_of(call_arg(node, 1, "table_name"))
                if table != WATCH_TABLE:
                    continue
                updates = call_arg(node, 3, "updates")
                if not isinstance(updates, (ast.List, ast.Tuple)):
                    continue
                removes = [u for u in updates.elts if _is_instance_remove(u)]
                if removes and call_kwarg(node, "condition") is None:
                    findings.append(ctx.finding(
                        self.rule, removes[0],
                        "unguarded Remove of a watch instance: condition "
                        "the update on the observed instance id AND "
                        "session list (guarded-removal protocol, cf. "
                        "WatchRegistry.remove_instance) and retry from a "
                        "fresh read on ConditionFailed"))
            elif node.func.attr == "transact_update":
                # Same discipline inside storage transactions: each op is
                # (table, key, updates, condition) — a watch-instance
                # Remove op must carry a non-None condition.
                ops = call_arg(node, 1, "ops")
                if not isinstance(ops, (ast.List, ast.Tuple)):
                    continue
                for op in ops.elts:
                    if not isinstance(op, (ast.Tuple, ast.List)) or \
                            len(op.elts) != 4:
                        continue
                    table = table_name_of(op.elts[0])
                    if table != WATCH_TABLE:
                        continue
                    updates = op.elts[2]
                    if not isinstance(updates, (ast.List, ast.Tuple)):
                        continue
                    cond = op.elts[3]
                    has_guard = not (isinstance(cond, ast.Constant)
                                     and cond.value is None)
                    if not has_guard and any(_is_instance_remove(u)
                                             for u in updates.elts):
                        findings.append(ctx.finding(
                            self.rule, op,
                            "unguarded watch-instance Remove inside a "
                            "transact_update op: pin the observed id and "
                            "session list in the op's condition"))
        return findings
