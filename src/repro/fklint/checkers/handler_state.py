"""FK004 — handler statelessness (cold-restart survivability).

The chaos suite models sandbox loss by calling ``cold_restart()`` on a
stage logic and redelivering in-flight queue messages; the paper's
correctness argument (and our crash-restart CI leg) assumes a handler
holds **no** state the platform would not reconstruct.  Mutable state at
*module* level is the one place that assumption silently breaks: it
survives ``cold_restart()`` (which only resets the instance), so a test
passes locally while a real redeployment — or merely a second concurrent
sandbox — diverges.

The rule flags module-level assignments of mutable containers (dict/
list/set displays, comprehensions, ``defaultdict``/``deque``/``Counter``/
``OrderedDict``/``itertools.count`` constructions) in the handler
modules (leader, follower, distributor, watch_fn, heartbeat, gc, outbox,
snapshot).  Immutable values (tuples, frozensets, constants) and
``__all__`` are exempt.  Genuinely-constant registries populated at
import time may be suppressed with ``# fklint: disable=FK004`` plus a
justification comment — CONTRIBUTING.md documents the bar.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..core import Checker, Finding, LintContext, register
from .common import dotted_name

#: Handler modules whose top level must stay stateless.
HANDLER_MODULES = {
    "leader.py", "follower.py", "distributor.py", "watch_fn.py",
    "heartbeat.py", "gc.py", "outbox.py", "snapshot.py",
}

#: Constructors that produce mutable containers.
MUTABLE_CALLS = {
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict", "defaultdict", "deque", "Counter",
    "OrderedDict", "itertools.count", "count",
}

MUTABLE_DISPLAYS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                    ast.ListComp, ast.SetComp)


def _mutable_reason(value: Optional[ast.expr]) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, MUTABLE_DISPLAYS):
        return type(value).__name__.lower().replace("comp", " comprehension")
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name in MUTABLE_CALLS:
            return f"{name}()"
    return None


@register
class HandlerStateChecker(Checker):
    rule = "FK004"
    name = "handler-state"
    description = ("mutable module-level state in a function-handler "
                   "module (survives cold_restart, diverges across "
                   "sandboxes)")

    def applies(self, ctx: LintContext) -> bool:
        return (ctx.in_dir("repro", "faaskeeper")
                and ctx.basename() in HANDLER_MODULES)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = [t.id for t in stmt.targets
                           if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                targets = [stmt.target.id]
                value = stmt.value
            else:
                continue
            if not targets or targets == ["__all__"]:
                continue
            reason = _mutable_reason(value)
            if reason is None:
                continue
            findings.append(ctx.finding(
                self.rule, stmt,
                f"module-level mutable state `{targets[0]} = {reason}` in "
                "a handler module: it survives cold_restart() and is not "
                "shared across sandboxes — move it onto the stage-logic "
                "instance (reset in cold_restart) or into a system table"))
        return findings
