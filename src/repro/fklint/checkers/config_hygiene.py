"""FK006 — config-knob hygiene.

Every knob on :class:`FaaSKeeperConfig` is a published experiment
parameter: benchmark tables cite them, ablations sweep them, and the
README's configuration reference is how a reader maps a figure back to
the deployment that produced it.  A knob is complete only when it has a
**default** (so every pre-existing configuration keeps meaning the same
deployment), a **type annotation** (the mypy-strict surface includes
``config.py``) and a **README mention** (the reference table).

The rule parses the ``FaaSKeeperConfig`` dataclass body and flags fields
missing any of the three.  The README check is a word-boundary search of
the project ``README.md`` the driver hands in via
:attr:`LintContext.readme_text`; when no README is available (bare
``lint_source`` calls in tests) the documentation check is skipped.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from ..core import Checker, Finding, LintContext, register

CONFIG_CLASS = "FaaSKeeperConfig"


@register
class ConfigHygieneChecker(Checker):
    rule = "FK006"
    name = "config-hygiene"
    description = ("FaaSKeeperConfig knob missing a default, a type "
                   "annotation, or a README mention")

    def applies(self, ctx: LintContext) -> bool:
        return (ctx.basename() == "config.py"
                and ctx.in_dir("repro", "faaskeeper"))

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
                findings.extend(self._check_class(ctx, node))
        return findings

    def _check_class(self, ctx: LintContext,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if name.startswith("_"):
                    continue
                if stmt.value is None:
                    yield ctx.finding(
                        self.rule, stmt,
                        f"config knob `{name}` has no default: every knob "
                        "must default to the paper's evaluation setup so "
                        "existing configurations keep meaning the same "
                        "deployment")
                if self._undocumented(ctx, name):
                    yield ctx.finding(
                        self.rule, stmt,
                        f"config knob `{name}` is not mentioned in "
                        "README.md: add it to the configuration reference")
            elif isinstance(stmt, ast.Assign):
                names = [t.id for t in stmt.targets
                         if isinstance(t, ast.Name)]
                for name in names:
                    if name.startswith("_"):
                        continue
                    yield ctx.finding(
                        self.rule, stmt,
                        f"config knob `{name}` has no type annotation: "
                        "config.py is on the mypy-strict surface")

    @staticmethod
    def _undocumented(ctx: LintContext, name: str) -> bool:
        if ctx.readme_text is None:
            return False
        return re.search(rf"\b{re.escape(name)}\b", ctx.readme_text) is None
