"""Checker registration: importing this package populates the registry."""

from . import (  # noqa: F401  (imported for their @register side effect)
    atomic_commit,
    blocking,
    config_hygiene,
    determinism,
    handler_state,
    storage_access,
    watch_guard,
)

__all__ = ["atomic_commit", "blocking", "config_hygiene", "determinism",
           "handler_state", "storage_access", "watch_guard"]
