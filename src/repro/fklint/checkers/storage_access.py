"""FK007 — naked storage call (bypasses the self-healing storage layer).

Every storage round trip of a deployment is supposed to go through
``service.system_store`` / ``service.user_store``, which carry the
retry/backoff engine, the idempotence tokens and the per-region circuit
breaker (and, when a fault schedule is armed, the injector bookkeeping).
A handler that acquires a raw client instead — ``cloud.kv(...)``,
``cloud.objectstore(...)``, ``cloud.cache(...)`` — gets none of that: a
single injected throttle becomes a session-fatal error again, and the
chaos suite's zero-fatal-errors guarantee silently stops covering that
call site.

The rule flags any call of an attribute named ``kv``/``objectstore``/
``cache`` inside the handler modules (leader, follower, distributor,
watch_fn, heartbeat, gc, outbox, snapshot).  Backend implementations
(``userstore.py``) and the deployment wiring (``service.py``) own the raw
clients by design and are exempt.  A handler with a genuine reason to
hold a raw client may suppress with ``# fklint: disable=FK007`` plus a
justification — CONTRIBUTING.md documents the bar.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Checker, Finding, LintContext, register
from .handler_state import HANDLER_MODULES

#: Storage-client factory attributes on the Cloud facade.
RAW_CLIENT_ATTRS = {"kv", "objectstore", "cache"}


@register
class StorageAccessChecker(Checker):
    rule = "FK007"
    name = "naked-storage-call"
    description = ("raw storage client acquired in a function-handler "
                   "module (bypasses retry/backoff, idempotence tokens "
                   "and the circuit breaker)")

    def applies(self, ctx: LintContext) -> bool:
        return (ctx.in_dir("repro", "faaskeeper")
                and ctx.basename() in HANDLER_MODULES)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in RAW_CLIENT_ATTRS:
                continue
            findings.append(ctx.finding(
                self.rule, node,
                f"naked storage call `.{func.attr}(...)` in a handler "
                "module: raw clients skip the retry/breaker layer — go "
                "through service.system_store / service.user_store "
                "instead"))
        return findings
