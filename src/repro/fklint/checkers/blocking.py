"""FK005 — no blocking calls inside ``co_*`` coroutine cores.

Recipes and the client expose two faces: a synchronous facade that runs
the event loop (``env.run(until=...)``) and a ``co_*`` generator core
that *is run by* the loop.  Calling a blocking facade — or ``env.run``
or ``time.sleep`` — from inside a ``co_*`` core re-enters the kernel
from within one of its own processes: at best ``RuntimeError``, at
worst a silently nested run that executes other sessions' callbacks at
the wrong virtual time.  Inside a coroutine, every storage/client step
must be awaited (``yield client.x_async(...).event`` or
``yield from self.co_x(...)``) and every delay must be a kernel timeout.

The rule flags, inside any ``co_*``/``_co_*`` function: ``time.sleep``;
``env.run``/``self._run``; and sync client-facade methods (``create``,
``get_data``, ``acquire``, ...) invoked on a ``client`` object — the
``*_async`` variants are of course fine.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..core import Checker, Finding, LintContext, register
from .common import ImportMap, dotted_name, resolve_call_name

#: Sync client-facade methods (each has an ``*_async`` twin).
BLOCKING_CLIENT_METHODS = {
    "create", "delete", "exists", "get", "get_data", "set_data",
    "get_children", "ensure_path", "get_acl", "set_acl", "sync", "multi",
    "acquire", "release", "wait",
}


def _chain_parts(node: ast.expr) -> List[str]:
    name = dotted_name(node)
    return name.split(".") if name else []


@register
class BlockingInCoroutineChecker(Checker):
    rule = "FK005"
    name = "blocking-in-coroutine"
    description = ("blocking call (time.sleep / env.run / sync client "
                   "facade) inside a co_* coroutine core")

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_dir("repro", "faaskeeper") or \
            ctx.in_dir("repro", "cloud")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.lstrip("_").startswith("co_"):
                continue
            findings.extend(self._check_coroutine(ctx, node, imports))
        return findings

    def _check_coroutine(self, ctx: LintContext, func: ast.AST,
                         imports: ImportMap) -> Iterable[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_name(node, imports)
            if target == "time.sleep":
                yield ctx.finding(
                    self.rule, node,
                    "time.sleep inside a co_* core blocks the whole "
                    "kernel: yield env.timeout(delay_ms) instead")
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            chain = _chain_parts(node.func.value)
            tail = chain[-1] if chain else ""
            if method in ("run", "_run") and \
                    (tail in ("env", "") or tail.endswith("env")
                     or method == "_run"):
                yield ctx.finding(
                    self.rule, node,
                    f"`{'.'.join(chain + [method])}()` inside a co_* core "
                    "re-enters the event loop from one of its own "
                    "processes: yield the async event instead")
            elif method in BLOCKING_CLIENT_METHODS and \
                    ("client" in tail or tail == "zk"):
                yield ctx.finding(
                    self.rule, node,
                    f"sync client facade `{tail}.{method}()` inside a "
                    f"co_* core: use `yield {tail}.{method}_async(...)"
                    ".event` (or `yield from` the co_ form)")
