"""``python -m repro.fklint`` — the command-line driver.

Exit status: 0 clean, 1 findings, 2 usage/IO error (argparse semantics).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import all_checkers, lint_paths
from .reporters import write_report

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fklint",
        description="Domain-aware static analysis for the FaaSKeeper "
                    "reproduction: machine-enforces the determinism, "
                    "atomic-commit, watch-guard, handler-statelessness, "
                    "coroutine and config invariants the test suite "
                    "otherwise only assumes.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids or names to run "
                             "(e.g. FK001,atomic-commit); default: all")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for cls in all_checkers():
            print(f"{cls.rule}  {cls.name:<22} {cls.description}")
        return 0
    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    try:
        findings, nfiles = lint_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        print(f"fklint: error: {exc}", file=sys.stderr)
        return 2
    write_report(findings, nfiles, args.format, sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
