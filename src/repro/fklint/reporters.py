"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import IO, List

from .core import Finding

__all__ = ["render_text", "render_json", "write_report"]


def render_text(findings: List[Finding], nfiles: int) -> str:
    lines = [f.format() for f in findings]
    if findings:
        lines.append(f"found {len(findings)} problem"
                     f"{'s' if len(findings) != 1 else ''} "
                     f"in {nfiles} file{'s' if nfiles != 1 else ''}")
    else:
        lines.append(f"checked {nfiles} file{'s' if nfiles != 1 else ''}: "
                     "all clean")
    return "\n".join(lines)


def render_json(findings: List[Finding], nfiles: int) -> str:
    return json.dumps({
        "files_checked": nfiles,
        "findings": [f.to_dict() for f in findings],
    }, indent=2, sort_keys=True)


def write_report(findings: List[Finding], nfiles: int, fmt: str,
                 stream: IO[str]) -> None:
    renderer = render_json if fmt == "json" else render_text
    stream.write(renderer(findings, nfiles) + "\n")
