"""Entry point for ``python -m repro.fklint``."""

import sys

from .cli import main

sys.exit(main())
