"""Deterministic random-number streams.

Every stochastic element of the simulation (latency noise, payload
generation, failure injection) draws from a named stream derived from a
single root seed.  Independent streams keep experiments comparable: adding a
new noise source does not perturb the draws of existing ones, which is the
standard variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Sequence

__all__ = ["RngRegistry", "lognormal_from_percentiles"]

# Standard-normal quantiles used by the percentile-fitting helper.
_Z = {50: 0.0, 90: 1.2815515655446004, 95: 1.6448536269514722, 99: 2.3263478740408408}


class RngRegistry:
    """Factory of named, independently-seeded :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (used per-deployment for isolation)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))


def lognormal_from_percentiles(p50: float, p99: float) -> tuple[float, float]:
    """Fit ``(mu, sigma)`` of a lognormal from its median and 99th percentile.

    Used to calibrate latency models to the percentile tables published in
    the paper (Tables 3, 6a, 7a, 7c).  ``p50`` and ``p99`` must be positive
    with ``p99 >= p50``.
    """
    if p50 <= 0 or p99 <= 0:
        raise ValueError("percentiles must be positive")
    if p99 < p50:
        raise ValueError("p99 must be >= p50")
    mu = math.log(p50)
    sigma = (math.log(p99) - mu) / _Z[99] if p99 > p50 else 0.0
    return mu, sigma


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (same convention as numpy's default).

    Kept dependency-free so the core library does not require numpy.
    """
    if not samples:
        raise ValueError("no samples")
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    rank = (q / 100.0) * (len(xs) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return xs[lo]
    frac = rank - lo
    return xs[lo] * (1 - frac) + xs[hi] * frac
