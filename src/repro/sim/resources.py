"""Process-interaction resources for the DES kernel.

Provides the three coordination objects the simulated cloud is built from:

* :class:`Store` — an unbounded FIFO buffer of items (used for queue message
  buffers and client response mailboxes);
* :class:`Resource` — a counted semaphore with FIFO waiters (used for
  function-concurrency limits and storage-partition capacity);
* :class:`TokenBucketLimiter` — a rate limiter used to model per-table /
  per-queue throughput ceilings (Figures 6b and 7b).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .kernel import Environment, Event, SimulationError

__all__ = ["Store", "Resource", "TokenBucketLimiter"]


class Store:
    """Unbounded FIFO item store with event-based ``get``/``put``.

    ``put`` never blocks.  ``get`` returns an event that triggers with the
    oldest item as soon as one is available.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (FIFO)."""
        event = self.env.event()
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Optional[Any]:
        """Pop the next item immediately, or return None when empty."""
        if self.items:
            return self.items.popleft()
        return None

    def cancel_get(self, event: Event) -> None:
        """Withdraw a pending getter (used by timeout races)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class Resource:
    """Counted resource with FIFO request queue.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._waiters)

    def request(self) -> Event:
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def release(self, request: Event) -> None:
        if not request.triggered:
            # The request never got a slot: withdraw it from the queue.
            try:
                self._waiters.remove(request)
                return
            except ValueError:
                raise SimulationError(
                    "releasing a request that was never made") from None
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(None)
        else:
            self._in_use -= 1
            if self._in_use < 0:  # pragma: no cover - defensive
                raise SimulationError("resource released more times than acquired")

    def acquire(self) -> Generator[Event, Any, Event]:
        """Convenience: ``req = yield from resource.acquire()``."""
        req = self.request()
        yield req
        return req


class TokenBucketLimiter:
    """Token-bucket rate limiter on virtual time.

    Models a service-side throughput ceiling: each operation must obtain a
    token; tokens refill at ``rate`` per second up to ``burst``.  ``admit``
    returns the delay (ms) an operation must wait before being serviced,
    which callers turn into a timeout.  This reproduces queueing delay and
    saturation behaviour without simulating individual server threads.
    """

    def __init__(self, env: Environment, rate_per_s: float, burst: float = 1.0) -> None:
        if rate_per_s <= 0:
            raise SimulationError("rate must be positive")
        self.env = env
        self.rate = rate_per_s
        self.burst = max(1.0, burst)
        # GCRA (virtual scheduling): theoretical arrival time of the next
        # conforming request, and the burst tolerance in milliseconds.
        self._tat = env.now
        self._tau = (self.burst - 1.0) * 1000.0 / rate_per_s

    def admit(self, units: float = 1.0) -> float:
        """Reserve ``units`` of capacity; return the wait in ms (0 if idle).

        Fractional units model operations that consume different amounts of
        provisioned capacity (e.g. conditional writes cost ~1.19 units —
        the source of Figure 6b's locked-throughput gap).  The GCRA form
        guarantees the long-run admitted rate never exceeds ``rate_per_s``
        units/s while permitting bursts of up to ``burst`` operations.
        """
        if units <= 0:
            return 0.0
        now = self.env.now
        increment = 1000.0 * units / self.rate
        tat = max(self._tat, now)
        wait = max(0.0, tat - self._tau - now)
        self._tat = tat + increment
        return wait
