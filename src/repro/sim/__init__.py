"""Deterministic discrete-event simulation kernel (SimPy-style)."""

from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Resource, Store, TokenBucketLimiter
from .rng import RngRegistry, lognormal_from_percentiles, percentile

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Resource",
    "Store",
    "TokenBucketLimiter",
    "RngRegistry",
    "lognormal_from_percentiles",
    "percentile",
]
