"""Discrete-event simulation kernel.

A small, deterministic, generator-based event loop in the style of SimPy.
Every simulated cloud service in :mod:`repro.cloud` is built as processes on
this kernel, which gives the reproduction three properties the paper's
experiments need:

* **determinism** — runs are reproducible from a single seed, so benchmark
  tables are stable across machines;
* **virtual time** — latency models advance a virtual clock instead of
  sleeping, so a multi-hour cloud experiment executes in milliseconds;
* **causal ordering** — FIFO queues, single-instance function concurrency and
  lock contention interleave exactly as scheduled, making the consistency
  properties (Z1-Z4) testable.

The public surface mirrors SimPy closely (``Environment``, ``Process``,
``Timeout``, ``AnyOf``/``AllOf``) so the simulation code reads like standard
process-interaction models.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, double triggers...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


# Event priorities: URGENT events (process resumptions) run before NORMAL
# events scheduled at the same instant, matching SimPy's semantics and keeping
# wakeup ordering independent of heap tie-breaking.
URGENT = 0
NORMAL = 1


class Event:
    """A condition that may be triggered once, at a simulated instant.

    Processes wait on events by ``yield``-ing them.  An event carries a value
    (delivered as the result of the ``yield``) and an *ok* flag; failed events
    re-raise their value inside the waiting process.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    _PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok = True
        self._scheduled = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired callbacks)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self, priority=URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception`` raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._value = exception
        self._ok = False
        self.env._schedule(self, priority=URGENT)
        return self

    def trigger(self, event: "Event") -> None:
        """Chain trigger: adopt the outcome of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defused(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self._value = value
        self._ok = True
        env._schedule(self, priority=NORMAL, delay=delay)


class Initialize(Event):
    """Internal: starts a freshly created process at the current instant."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._value = None
        self._ok = True
        env._schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator; the process event triggers when the generator ends.

    The generator yields :class:`Event` instances; each yield suspends the
    process until the event triggers.  The event's value becomes the result
    of the ``yield`` expression, and failed events raise inside the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise SimulationError(f"{self} has terminated and cannot be interrupted")
        if self._target is not None and self._target.callbacks is not None:
            # Unsubscribe from the event the process was waiting on, so its
            # later firing does not resume a generator that has moved on.
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, priority=URGENT)

    # -- generator driving --------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_ev = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_ev = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                self.env._schedule(self, priority=URGENT)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env._schedule(self, priority=URGENT)
                break

            if not isinstance(next_ev, Event):
                # Be strict: yielding a non-event is always a programming bug.
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue

            if next_ev.callbacks is not None:
                # Event still pending: subscribe and suspend.
                next_ev.callbacks.append(self._resume)
                self._target = next_ev
                break
            # Event already processed: loop immediately with its outcome.
            event = next_ev

        self.env._active_process = None


class ConditionValue(dict):
    """Mapping of event -> value for fired condition sub-events."""


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite events."""

    __slots__ = ("_events", "_fired", "_need")

    def __init__(self, env: "Environment", events: Iterable[Event], need_all: bool) -> None:
        super().__init__(env)
        self._events = list(events)
        self._fired: list[Event] = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._need = len(self._events) if need_all else min(1, len(self._events))
        if self._need == 0:
            self.succeed(ConditionValue())
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if len(self._fired) >= self._need:
            value = ConditionValue()
            # Preserve the original event order among fired sub-events.
            fired = set(map(id, self._fired))
            for ev in self._events:
                if id(ev) in fired:
                    value[ev] = ev._value
            self.succeed(value)


class AnyOf(Condition):
    """Triggers when any sub-event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, need_all=False)


class AllOf(Condition):
    """Triggers when all sub-events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, need_all=True)


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (milliseconds by convention in repro)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._scheduled = False
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run()/step().
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the given time or event; with no argument, run dry.

        Returns the event's value when ``until`` is an event.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} lies in the past (now={self._now})"
                )

        while True:
            if stop_event is not None and stop_event.processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            nxt = self.peek()
            if nxt == float("inf"):
                if stop_event is not None:
                    raise SimulationError(
                        "simulation ran dry before the awaited event triggered"
                    )
                if stop_time != float("inf"):
                    # Idle until the requested time: the clock still advances.
                    self._now = stop_time
                return None
            if nxt > stop_time:
                self._now = stop_time
                return None
            self.step()
