"""Serverless synchronization primitives over cloud storage (Section 2.1).

Functions operating in parallel need lock/counter/list primitives that live
in storage rather than shared memory; this package implements the three the
paper defines and FaaSKeeper is built on.
"""

from .atomics import AtomicCounter, AtomicList
from .locks import LOCK_ATTR, LockHandle, TimedLock

__all__ = ["TimedLock", "LockHandle", "LOCK_ATTR", "AtomicCounter", "AtomicList"]
