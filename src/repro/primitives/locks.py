"""Timed lock over key-value conditional updates (paper Sections 2.1, 3.3).

The timed lock extends a regular lock with a bounded holding time, like a
lease: this prevents a crashed function from deadlocking the system.  The
protocol, exactly as the paper specifies:

* **acquire** — conditional update that sets the lock timestamp iff no
  timestamp is present *or* the existing one is older than ``max_hold_ms``
  (an expired holder is overridden);
* **guarded updates** — every mutation of a locked item carries the
  condition "the stored timestamp still equals mine", so a holder that lost
  the lock to expiry cannot accidentally overwrite newer state;
* **release / commit-unlock** — removes the timestamp, optionally fused
  with the data update into one atomic conditional write (the follower's
  step ➃ in Algorithm 1).

Every operation is a single conditional write to a single item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Sequence

from ..cloud.context import OpContext
from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, Condition, Remove, Set, UpdateAction
from ..cloud.kvstore import KeyValueStore

__all__ = ["TimedLock", "LockHandle", "LOCK_ATTR"]

#: Attribute path where the lock timestamp lives inside the item.
LOCK_ATTR = "lock"


@dataclass(frozen=True)
class LockHandle:
    """Proof of acquisition: the timestamp written by the holder."""

    key: str
    timestamp: float
    item: Optional[Dict[str, Any]]  # item image at acquisition (old data)


class TimedLock:
    """A timed (leased) lock on one key-value item."""

    def __init__(
        self,
        store: KeyValueStore,
        table: str,
        max_hold_ms: float = 2_000.0,
    ) -> None:
        self.store = store
        self.table = table
        self.max_hold_ms = max_hold_ms

    # ------------------------------------------------------------ protocol
    def _free_condition(self, now: float) -> Condition:
        held = Attr(f"{LOCK_ATTR}.ts")
        return held.not_exists() | (held <= now - self.max_hold_ms)

    def _held_by(self, timestamp: float) -> Condition:
        return Attr(f"{LOCK_ATTR}.ts") == timestamp

    def acquire(
        self, ctx: OpContext, key: str
    ) -> Generator[Any, Any, Optional[LockHandle]]:
        """Try to acquire; returns a handle or ``None`` when held by another.

        The handle carries the item image observed at acquisition — the
        ``oldData`` of Algorithm 1 step ➀.
        """
        now = self.store.env.now
        try:
            new_image = yield from self.store.update_item(
                ctx,
                self.table,
                key,
                updates=[Set(f"{LOCK_ATTR}.ts", now)],
                condition=self._free_condition(now),
            )
        except ConditionFailed:
            return None
        return LockHandle(key=key, timestamp=now, item=new_image)

    def release(self, ctx: OpContext, handle: LockHandle) -> Generator[Any, Any, bool]:
        """Remove the timestamp iff we still hold the lock."""
        try:
            yield from self.store.update_item(
                ctx,
                self.table,
                handle.key,
                updates=[Remove(LOCK_ATTR)],
                condition=self._held_by(handle.timestamp),
            )
        except ConditionFailed:
            return False
        return True

    def guarded_update(
        self,
        ctx: OpContext,
        handle: LockHandle,
        updates: Sequence[UpdateAction],
        extra_condition: Optional[Condition] = None,
    ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        """Apply updates iff the lock is still ours; keeps the lock held.

        Returns the new image, or ``None`` when the lease was lost.
        """
        condition = self._held_by(handle.timestamp)
        if extra_condition is not None:
            condition = condition & extra_condition
        try:
            return (yield from self.store.update_item(
                ctx, self.table, handle.key, updates=updates, condition=condition,
            ))
        except ConditionFailed:
            return None

    def commit_unlock(
        self,
        ctx: OpContext,
        handle: LockHandle,
        updates: Sequence[UpdateAction],
        extra_condition: Optional[Condition] = None,
    ) -> Generator[Any, Any, Optional[Dict[str, Any]]]:
        """Atomically apply updates *and* release the lock (step ➃).

        The commit succeeds only while the lease is still valid; an expired
        lease makes this a no-op returning ``None``, so a stalled function
        cannot clobber a newer holder's work.
        """
        all_updates = list(updates) + [Remove(LOCK_ATTR)]
        condition = self._held_by(handle.timestamp)
        if extra_condition is not None:
            condition = condition & extra_condition
        try:
            return (yield from self.store.update_item(
                ctx, self.table, handle.key, updates=all_updates, condition=condition,
            ))
        except ConditionFailed:
            return None
