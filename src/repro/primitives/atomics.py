"""Atomic counter and atomic list (paper Sections 2.1, 3.3).

* The **atomic counter** is a single number; an update adds a constant in
  one storage operation — FaaSKeeper's system state counter ``txid`` is one
  of these.
* The **atomic list** supports safe concurrent expansion and truncation —
  FaaSKeeper's epoch counter (pending watch notifications per region) and
  per-node pending-transaction lists are atomic lists.

Each operation is a single write to a single item, as the paper requires.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Sequence

from ..cloud.context import OpContext
from ..cloud.expressions import (
    Add,
    Attr,
    ListAppend,
    ListPopHead,
    ListRemove,
    item_size_kb,
)
from ..cloud.kvstore import KeyValueStore

__all__ = ["AtomicCounter", "AtomicList"]


class AtomicCounter:
    """A numeric attribute with single-step atomic increments."""

    def __init__(self, store: KeyValueStore, table: str, key: str,
                 attr: str = "value") -> None:
        self.store = store
        self.table = table
        self.key = key
        self.attr = attr

    def increment(self, ctx: OpContext, delta: float = 1
                  ) -> Generator[Any, Any, float]:
        """Atomically add ``delta``; returns the post-increment value."""
        image = yield from self.store.update_item(
            ctx, self.table, self.key,
            updates=[Add(self.attr, delta)],
            atomic_hint=True,
            payload_kb=0.008,
        )
        return image[self.attr]

    def get(self, ctx: OpContext) -> Generator[Any, Any, float]:
        item = yield from self.store.get_item(ctx, self.table, self.key)
        if item is None:
            return 0
        return item.get(self.attr, 0)


class AtomicList:
    """A list attribute with atomic append / remove / truncate."""

    def __init__(self, store: KeyValueStore, table: str, key: str,
                 attr: str = "items") -> None:
        self.store = store
        self.table = table
        self.key = key
        self.attr = attr

    def append(self, ctx: OpContext, values: Iterable[Any]
               ) -> Generator[Any, Any, List[Any]]:
        """Atomically append; returns the new list contents."""
        values = list(values)
        image = yield from self.store.update_item(
            ctx, self.table, self.key,
            updates=[ListAppend(self.attr, values)],
            payload_kb=max(item_size_kb({"v": values}), 0.008),
            latency_model=self.store.profile.kv_list_append,
        )
        return image[self.attr]

    def remove(self, ctx: OpContext, values: Iterable[Any]
               ) -> Generator[Any, Any, List[Any]]:
        """Atomically remove first occurrences of the given values."""
        values = list(values)
        image = yield from self.store.update_item(
            ctx, self.table, self.key,
            updates=[ListRemove(self.attr, values)],
            payload_kb=max(item_size_kb({"v": values}), 0.008),
            latency_model=self.store.profile.kv_list_append,
        )
        return image.get(self.attr, [])

    def pop_head(self, ctx: OpContext, count: int = 1
                 ) -> Generator[Any, Any, List[Any]]:
        """Atomically drop the oldest ``count`` elements (truncation)."""
        image = yield from self.store.update_item(
            ctx, self.table, self.key,
            updates=[ListPopHead(self.attr, count)],
            payload_kb=0.008,
            latency_model=self.store.profile.kv_list_append,
        )
        return image.get(self.attr, [])

    def get(self, ctx: OpContext) -> Generator[Any, Any, List[Any]]:
        item = yield from self.store.get_item(ctx, self.table, self.key)
        if item is None:
            return []
        return list(item.get(self.attr, []))
