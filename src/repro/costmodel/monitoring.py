"""Service-monitoring cost model (Section 5.3.3, Figure 13).

The heartbeat function runs once a minute (the highest cron frequency on
AWS); its daily cost is 1440 invocations of (GB-seconds + request fee +
session-table scan).  The paper's headline: total daily allocation time is
<0.2 % of the day — "status monitoring for a fraction of VM price".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloud.pricing import AWS_PRICES, VM_DAY_RATE, PriceSheet
from .params import r_dd

__all__ = ["MonitoringCostModel"]

INVOCATIONS_PER_DAY = 24 * 60  # one per minute


@dataclass
class MonitoringCostModel:
    prices: PriceSheet = AWS_PRICES

    def daily_cost(self, memory_mb: int, exec_time_ms: float,
                   n_clients: int, session_item_kb: float = 0.5) -> float:
        fn = self.prices.fn_cost(memory_mb, exec_time_ms) * INVOCATIONS_PER_DAY
        scan = r_dd(max(1.0, n_clients * session_item_kb)) * INVOCATIONS_PER_DAY
        return fn + scan

    def daily_allocation_fraction(self, exec_time_ms: float) -> float:
        """Fraction of the day the function is allocated."""
        return (exec_time_ms * INVOCATIONS_PER_DAY) / (24 * 3600 * 1000.0)

    def vm_price_fraction(self, memory_mb: int, exec_time_ms: float,
                          n_clients: int, vm_type: str = "t3.small") -> float:
        return (self.daily_cost(memory_mb, exec_time_ms, n_clients)
                / VM_DAY_RATE[vm_type])
