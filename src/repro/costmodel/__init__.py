"""Analytic cost models: Table 4 formulas, Figure 4a/13/14 computations."""

from .breakeven import (
    FIGURE14_DEPLOYMENTS,
    FIGURE14_REQUESTS,
    BreakevenModel,
)
from .monitoring import MonitoringCostModel
from .params import AWS_COST_PARAMS, CostParams, q_sqs, r_dd, r_s3, w_dd, w_s3
from .storage import StorageCostModel

__all__ = [
    "CostParams",
    "AWS_COST_PARAMS",
    "w_s3",
    "r_s3",
    "w_dd",
    "r_dd",
    "q_sqs",
    "BreakevenModel",
    "FIGURE14_REQUESTS",
    "FIGURE14_DEPLOYMENTS",
    "StorageCostModel",
    "MonitoringCostModel",
]
