"""Cost-model parameters (Table 4) and constants recovered from Section 5.3.4.

All prices in dollars; sizes in kB.  The per-operation storage/queue prices
restate :mod:`repro.cloud.pricing`; this module adds the closed-form
read/write cost formulas the paper prints and the calibrated function-cost
constants (see DESIGN.md for the derivation from the paper's arithmetic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cloud.pricing import AWS_PRICES, VM_DAY_RATE, PriceSheet

__all__ = [
    "CostParams",
    "AWS_COST_PARAMS",
    "w_s3", "r_s3", "w_dd", "r_dd", "q_sqs",
]


def w_s3(size_kb: float) -> float:
    """W_S3(s): writing data to S3 — flat 5e-6 per operation."""
    return 5e-6


def r_s3(size_kb: float) -> float:
    """R_S3(s): reading data from S3 — flat 4e-7 per operation."""
    return 4e-7


def w_dd(size_kb: float) -> float:
    """W_DD(s) = ceil(s) * 1.25e-6 (1 kB write units)."""
    return max(1, math.ceil(size_kb)) * 1.25e-6


def r_dd(size_kb: float) -> float:
    """R_DD(s) = ceil(s/4) * 0.25e-6 (4 kB strongly consistent read units)."""
    return max(1, math.ceil(size_kb / 4)) * 0.25e-6


def q_sqs(size_kb: float) -> float:
    """Q(s) = ceil(s/64) * 0.5e-6 (64 kB SQS billing increments)."""
    return max(1, math.ceil(size_kb / 64)) * 0.5e-6


@dataclass(frozen=True)
class CostParams:
    """End-to-end per-request cost formulas (Section 5.3.4).

    ``fn_write_std`` / ``fn_write_hybrid`` are the combined follower+leader
    charges per write at 512 MB, calibrated so that 100 K standard writes
    cost $1.12 and 100 K hybrid writes cost $0.72, exactly as the paper
    states.
    """

    prices: PriceSheet = AWS_PRICES
    fn_write_std: float = 1.2e-6
    fn_write_hybrid: float = 0.95e-6

    # ------------------------------------------------------------ requests
    def read_cost(self, size_kb: float = 1.0, hybrid: bool = False) -> float:
        """Cost_R: one read — a single user-store access."""
        return r_dd(size_kb) if hybrid else r_s3(size_kb)

    def write_cost(self, size_kb: float = 1.0, hybrid: bool = False) -> float:
        """Cost_W = 2*Q(s) + 3*W_DD(1) + R_DD(1) + W_user(s) + F_W + F_D."""
        base = 2 * q_sqs(size_kb) + 3 * w_dd(1.0) + r_dd(1.0)
        if hybrid:
            return base + w_dd(size_kb) + self.fn_write_hybrid
        return base + w_s3(size_kb) + self.fn_write_std

    # ------------------------------------------------------------ retention
    def s3_storage_month(self, gb: float) -> float:
        return gb * self.prices.object_storage_gb_month

    def dynamodb_storage_month(self, gb: float) -> float:
        return gb * self.prices.kv_storage_gb_month

    def ebs_storage_month(self, gb: float) -> float:
        return gb * self.prices.block_storage_gb_month

    # ------------------------------------------------------------ IaaS
    @staticmethod
    def zookeeper_daily(n_servers: int, vm_type: str,
                        storage_gb: float = 0.0) -> float:
        """Fixed daily price of an ensemble (VMs + optional block storage)."""
        vm = n_servers * VM_DAY_RATE[vm_type]
        ebs = n_servers * storage_gb * AWS_PRICES.block_storage_gb_month / 30.0
        return vm + ebs


AWS_COST_PARAMS = CostParams()
