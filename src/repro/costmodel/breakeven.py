"""Break-even analysis: the Figure 14 cost-ratio matrices.

For a daily workload of ``requests`` operations at a given read fraction,
the FaaSKeeper cost is requests * (f*Cost_R + (1-f)*Cost_W) while ZooKeeper
costs a fixed n_vms * day_rate.  The matrices print the ratio
ZooKeeper/FaaSKeeper — values > 1 mean FaaSKeeper is cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .params import AWS_COST_PARAMS, CostParams

__all__ = ["BreakevenModel", "FIGURE14_REQUESTS", "FIGURE14_DEPLOYMENTS"]

#: Daily request counts on Figure 14's x-axis.
FIGURE14_REQUESTS = (100_000, 500_000, 1_000_000, 2_000_000, 5_000_000)

#: (n_servers, vm_type) rows of Figure 14's y-axis.
FIGURE14_DEPLOYMENTS = (
    (3, "t3.small"), (3, "t3.medium"), (3, "t3.large"),
    (9, "t3.small"), (9, "t3.medium"), (9, "t3.large"),
)


@dataclass
class BreakevenModel:
    params: CostParams = AWS_COST_PARAMS
    write_kb: float = 1.0

    def faaskeeper_daily(self, requests: int, read_fraction: float,
                         hybrid: bool) -> float:
        reads = requests * read_fraction
        writes = requests * (1.0 - read_fraction)
        return (reads * self.params.read_cost(self.write_kb, hybrid)
                + writes * self.params.write_cost(self.write_kb, hybrid))

    def ratio(self, requests: int, read_fraction: float, hybrid: bool,
              n_servers: int, vm_type: str) -> float:
        zk = self.params.zookeeper_daily(n_servers, vm_type)
        fk = self.faaskeeper_daily(requests, read_fraction, hybrid)
        return zk / fk

    def matrix(self, read_fraction: float, hybrid: bool,
               requests: Sequence[int] = FIGURE14_REQUESTS,
               deployments: Sequence[Tuple[int, str]] = FIGURE14_DEPLOYMENTS,
               ) -> List[List[float]]:
        """Rows = deployments, columns = request counts (Figure 14 layout)."""
        return [
            [self.ratio(r, read_fraction, hybrid, n, vm) for r in requests]
            for (n, vm) in deployments
        ]

    def breakeven_requests(self, read_fraction: float, hybrid: bool,
                           n_servers: int = 3, vm_type: str = "t3.small",
                           ) -> float:
        """Daily requests at which FaaSKeeper's cost equals ZooKeeper's."""
        zk = self.params.zookeeper_daily(n_servers, vm_type)
        per_request = self.faaskeeper_daily(1, read_fraction, hybrid)
        return zk / per_request
