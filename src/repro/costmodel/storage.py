"""Storage cost curves (Figure 4a) and retention comparisons (Section 5.3.4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .params import AWS_COST_PARAMS, CostParams, r_dd, r_s3, w_dd, w_s3

__all__ = ["StorageCostModel"]


@dataclass
class StorageCostModel:
    params: CostParams = AWS_COST_PARAMS

    # ------------------------------------------------------ Figure 4a left
    def monthly_cost(self, service: str, op: str, stored_gb: float,
                     ops: int = 1_000_000, op_kb: float = 1.0) -> float:
        """Operations plus retention for one month."""
        per_op = {
            ("s3", "read"): r_s3, ("s3", "write"): w_s3,
            ("dynamodb", "read"): r_dd, ("dynamodb", "write"): w_dd,
        }[(service, op)](op_kb)
        retention = (self.params.s3_storage_month(stored_gb) if service == "s3"
                     else self.params.dynamodb_storage_month(stored_gb))
        return ops * per_op + retention

    def size_sweep(self, sizes_gb: Sequence[float], ops: int = 1_000_000,
                   op_kb: float = 1.0) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {}
        for service in ("s3", "dynamodb"):
            for op in ("read", "write"):
                out[f"{service}_{op}"] = [
                    self.monthly_cost(service, op, gb, ops, op_kb)
                    for gb in sizes_gb
                ]
        return out

    # ------------------------------------------------------ Figure 4a right
    def ops_sweep(self, ops_counts: Sequence[int], stored_gb: float = 1.0,
                  op_kb: float = 1.0) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {}
        for service in ("s3", "dynamodb"):
            for op in ("read", "write"):
                out[f"{service}_{op}"] = [
                    self.monthly_cost(service, op, stored_gb, n, op_kb)
                    for n in ops_counts
                ]
        return out

    # ------------------------------------------------------ headline ratios
    def s3_write_read_ratio(self) -> float:
        """"Object storage: writes 12.5x more expensive than reads"."""
        return w_s3(1.0) / r_s3(1.0)

    def kv_vs_s3_large_data(self, size_kb: float = 128.0) -> float:
        """"Reading 128 kB from DynamoDB is 20x more expensive than S3"."""
        return r_dd(size_kb) / r_s3(size_kb)

    def s3_vs_ebs_retention(self) -> float:
        """"Storing user data in S3 is 3.47x cheaper than gp3"."""
        return (self.params.ebs_storage_month(1.0)
                / self.params.s3_storage_month(1.0))

    def dynamodb_vs_ebs_retention(self) -> float:
        """"Retaining data in DynamoDB is 3.125x more expensive than gp3"."""
        return (self.params.dynamodb_storage_month(1.0)
                / self.params.ebs_storage_month(1.0))
