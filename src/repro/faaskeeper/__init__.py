"""FaaSKeeper: the paper's serverless coordination service.

Public entry points::

    from repro.cloud import Cloud
    from repro.faaskeeper import FaaSKeeperService, FaaSKeeperConfig

    cloud = Cloud.aws(seed=0)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(user_store="hybrid"))
    with fk.connect() as client:
        client.create("/app", b"hello")
        data, stat = client.get_data("/app")
"""

from .client import FaaSKeeperClient, FKFuture, WriteResult
from .config import FaaSKeeperConfig, UserStoreKind
from .exceptions import (
    AccessDeniedError,
    BadArgumentsError,
    BadVersionError,
    FaaSKeeperError,
    NoChildrenForEphemeralsError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    RequestFailedError,
    SessionClosedError,
)
from .model import ACL_PERMS, OPEN_ACL, EventType, NodeStat, WatchedEvent, WatchType, acl_allows
from .service import FaaSKeeperService

__all__ = [
    "FaaSKeeperService",
    "FaaSKeeperConfig",
    "UserStoreKind",
    "FaaSKeeperClient",
    "FKFuture",
    "WriteResult",
    "NodeStat",
    "ACL_PERMS",
    "OPEN_ACL",
    "acl_allows",
    "WatchedEvent",
    "WatchType",
    "EventType",
    "FaaSKeeperError",
    "NoNodeError",
    "NodeExistsError",
    "BadVersionError",
    "NotEmptyError",
    "NoChildrenForEphemeralsError",
    "SessionClosedError",
    "RequestFailedError",
    "AccessDeniedError",
    "BadArgumentsError",
]
