"""FaaSKeeper: the paper's serverless coordination service.

Public entry points::

    from repro.cloud import Cloud
    from repro.faaskeeper import FaaSKeeperService, FaaSKeeperConfig

    cloud = Cloud.aws(seed=0)
    fk = FaaSKeeperService.deploy(cloud, FaaSKeeperConfig(user_store="hybrid"))
    with fk.connect() as client:
        client.create("/app", b"hello")
        data, stat = client.get_data("/app")
"""

from .cache import ClientReadCache
from .chaos import (
    ChaosMonkey,
    verify_exactly_once,
    verify_outbox_delivery,
    wipe_system_tables,
    wipe_user_region,
)
from .client import (
    ClientEvent,
    FaaSKeeperClient,
    FKFuture,
    SessionRetry,
    Transaction,
    WriteResult,
)
from .config import FaaSKeeperConfig, UserStoreKind
from .distributor import DistributionStage, VisibilityBoard
from .exceptions import (
    AccessDeniedError,
    BadArgumentsError,
    BadVersionError,
    FaaSKeeperError,
    NoChildrenForEphemeralsError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    RequestFailedError,
    RetryFailedError,
    RolledBackError,
    SessionClosedError,
    TransactionFailedError,
)
from .model import (
    ACL_PERMS,
    OPEN_ACL,
    CheckOp,
    CheckResult,
    CreateOp,
    DeleteOp,
    EventType,
    KeeperState,
    NodeStat,
    Operation,
    SetDataOp,
    WatchedEvent,
    WatchType,
    acl_allows,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .outbox import (
    FakeHttp,
    FileSink,
    InProcSink,
    OutboxStage,
    Sink,
    WebhookSink,
    make_sink,
    register_sink,
)
from .service import FaaSKeeperService
from .snapshot import SnapshotManager
from .watches import ChildrenWatch, DataWatch
from . import recipes

__all__ = [
    "FaaSKeeperService",
    "FaaSKeeperConfig",
    "UserStoreKind",
    "FaaSKeeperClient",
    "KeeperState",
    "ClientEvent",
    "SessionRetry",
    "DataWatch",
    "ChildrenWatch",
    "recipes",
    "ClientReadCache",
    "DistributionStage",
    "VisibilityBoard",
    "SnapshotManager",
    "ChaosMonkey",
    "wipe_user_region",
    "wipe_system_tables",
    "verify_exactly_once",
    "verify_outbox_delivery",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "OutboxStage",
    "Sink",
    "InProcSink",
    "FileSink",
    "WebhookSink",
    "FakeHttp",
    "make_sink",
    "register_sink",
    "FKFuture",
    "Transaction",
    "WriteResult",
    "CheckResult",
    "Operation",
    "CreateOp",
    "SetDataOp",
    "DeleteOp",
    "CheckOp",
    "NodeStat",
    "ACL_PERMS",
    "OPEN_ACL",
    "acl_allows",
    "WatchedEvent",
    "WatchType",
    "EventType",
    "FaaSKeeperError",
    "NoNodeError",
    "NodeExistsError",
    "BadVersionError",
    "NotEmptyError",
    "NoChildrenForEphemeralsError",
    "SessionClosedError",
    "RequestFailedError",
    "AccessDeniedError",
    "BadArgumentsError",
    "RolledBackError",
    "TransactionFailedError",
    "RetryFailedError",
]
