"""Session-swarm load harness: 100k live sessions on the virtual clock.

The paper evaluates FaaSKeeper with a handful of clients; the session
plane's costs only show at four orders of magnitude more.  This module
spins up ``SwarmSpec.sessions`` live sessions against one deployment and
drives realistic churn — batched registration, heartbeat-answering
passives, watch-heavy cohorts, YCSB-mix writers, a Lock-recipe contention
group, graceful closes and silent failures — entirely on the simulation
clock, with every random choice drawn from seeded RNGs (fklint FK001
clean), so a given spec replays bit-for-bit.

Four metric families come out of a run (p50/p99/p999 each):

* **heartbeat sweep latency** — execution time of every heartbeat-sweep
  invocation across all session-plane shards (``fn.durations_ms``);
* **watch fan-out latency** — per-delivery time from a hot-path write's
  submission to the watcher's callback firing;
* **eviction lag** — time from a session going silent to the evictor
  closing it (``client.closed_at``);
* **registration throughput** — per-wave sessions/s through the batched
  ``Service.connect_many`` path.

``benchmarks/bench_swarm.py`` runs the same spec flat
(``session_plane_shards=1``) and sharded and gates the sweep-latency
improvement; the integration tests run scaled-down swarms.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List

from ..sim.kernel import AllOf
from ..sim.rng import percentile
from .recipes import Lock

__all__ = ["SwarmSpec", "SessionSwarm", "summarize_samples"]


@dataclass(frozen=True)
class SwarmSpec:
    """Shape of one swarm run.  Cohort sizes are session counts carved out
    of the registered population (disjoint; the remainder stays passive,
    answering heartbeats and nothing else)."""

    #: Total sessions registered up front (the live population).
    sessions: int = 100_000
    #: ``BatchWriteItem`` chunk size for registration.
    registration_batch: int = 25
    #: Sessions registered per throughput-measurement wave.
    registration_wave: int = 5_000
    #: Sessions arming data watches on the hot paths.
    watchers: int = 200
    #: Hot paths the watcher cohort spreads over.
    watch_paths: int = 10
    #: Write rounds against each hot path (each re-arms its watchers).
    watch_rounds: int = 2
    #: Writer sessions running the YCSB mix on private paths.
    writers: int = 50
    #: Operations each writer performs.
    writer_ops: int = 4
    #: YCSB core workload name driving the writer mix ("A".."F").
    ycsb_mix: str = "A"
    #: Lock-recipe contenders on one shared lock path.
    lock_contenders: int = 6
    #: Acquire/release rounds per contender.
    lock_rounds: int = 2
    #: Sessions that close gracefully mid-run (connect/disconnect churn).
    graceful_closes: int = 200
    #: Sessions that go silent (``alive = False``) and must be evicted.
    silent: int = 200
    #: Virtual run time after registration; must cover enough heartbeat
    #: periods for sweeps and evictions to land (0 = auto: 4 periods +
    #: the session timeout).
    duration_ms: float = 0.0
    #: Master seed for every cohort-selection and workload draw.
    seed: int = 20240801

    def __post_init__(self) -> None:
        active = (self.watchers + self.writers + self.lock_contenders
                  + self.graceful_closes + self.silent)
        if active > self.sessions:
            raise ValueError(
                f"cohorts need {active} sessions, spec has {self.sessions}")
        if self.watch_paths < 1 or self.registration_wave < 1:
            raise ValueError("watch_paths and registration_wave must be >= 1")


def summarize_samples(samples: List[float]) -> Dict[str, Any]:
    """p50/p99/p999 + count/mean for one metric family (JSON-able)."""
    if not samples:
        return {"n": 0, "p50": None, "p99": None, "p999": None, "mean": None}
    return {
        "n": len(samples),
        "p50": percentile(samples, 50.0),
        "p99": percentile(samples, 99.0),
        "p999": percentile(samples, 99.9),
        "mean": sum(samples) / len(samples),
    }


class SessionSwarm:
    """Drives one :class:`SwarmSpec` against a deployed service.

    Construct with a fresh deployment (no sessions yet), call :meth:`run`
    once; the report dict carries the four metric families plus raw
    bookkeeping the benchmarks and tests assert on.
    """

    def __init__(self, cloud, service, spec: SwarmSpec) -> None:
        self.cloud = cloud
        self.service = service
        self.spec = spec
        self.clients: List[Any] = []
        # Sample sinks (virtual-clock milliseconds).
        self.watch_fanout_ms: List[float] = []
        self.eviction_lag_ms: List[float] = []
        self.registration_rate_per_s: List[float] = []
        self._silenced_at: Dict[str, float] = {}
        self._lock_grants = 0
        self._writer_ops_done = 0

    # ------------------------------------------------------------ phases
    def _register(self) -> None:
        """Batched registration in throughput-measurement waves."""
        spec = self.spec
        env = self.cloud.env
        remaining = spec.sessions
        while remaining > 0:
            wave = min(spec.registration_wave, remaining)
            t0 = env.now
            self.clients.extend(self.service.connect_many(
                wave, batch_size=spec.registration_batch))
            elapsed_ms = env.now - t0
            if elapsed_ms > 0:
                self.registration_rate_per_s.append(1000.0 * wave / elapsed_ms)
            remaining -= wave

    def _pick_cohorts(self) -> Dict[str, List[Any]]:
        """Disjoint cohort assignment, seeded — replayable per spec."""
        spec = self.spec
        order = list(range(len(self.clients)))
        random.Random(spec.seed).shuffle(order)
        cursor = 0

        def take(n: int) -> List[Any]:
            nonlocal cursor
            out = [self.clients[i] for i in order[cursor:cursor + n]]
            cursor += n
            return out

        return {
            "watchers": take(spec.watchers),
            "writers": take(spec.writers),
            "lockers": take(spec.lock_contenders),
            "graceful": take(spec.graceful_closes),
            "silent": take(spec.silent),
        }

    # -- watch-heavy cohort -------------------------------------------------
    def _hot_path_driver(self, path: str, owner, watchers: List[Any]):
        """One hot path: rounds of (arm all watchers, write, await fan-out).

        Fan-out latency is write-submission to callback delivery, per
        watcher — the client-visible notification lag, including the write
        pipeline the trigger rides.
        """
        env = self.cloud.env
        yield owner.create_async(path, b"swarm").event
        for round_no in range(self.spec.watch_rounds):
            done = env.event()
            done.defused()
            pending = [len(watchers)]
            submitted = [0.0]

            def on_event(_event, _pending=pending, _submitted=submitted,
                         _done=done):
                self.watch_fanout_ms.append(env.now - _submitted[0])
                _pending[0] -= 1
                if _pending[0] == 0 and not _done.triggered:
                    _done.succeed(None)

            # (Re-)arm: one-shot watches are consumed by the previous
            # round's write, so each round registers fresh instances —
            # re-arming under load is part of the workload.
            armed = [c.get_data_async(path, watch=on_event).event
                     for c in watchers]
            if armed:
                yield AllOf(env, armed)
            submitted[0] = env.now
            yield owner.set_data_async(path, b"v%d" % round_no).event
            if watchers:
                yield done

    # -- YCSB writer cohort ---------------------------------------------------
    def _writer(self, idx: int, client):
        """One writer session running the spec's YCSB mix on private paths."""
        from ..workloads.ycsb import CORE_WORKLOADS
        mix = next(w for w in CORE_WORKLOADS if w.name == self.spec.ycsb_mix)
        rng = random.Random(self.spec.seed * 1_000_003 + idx)
        base = f"/swarm-w{idx}"
        yield client.create_async(base, b"0").event
        inserts = 0
        for _ in range(self.spec.writer_ops):
            draw = rng.random()
            if draw < mix.read:
                yield client.get_data_async(base).event
            elif draw < mix.read + mix.update + mix.read_modify_write:
                # update and RMW both land as a set_data; RMW reads first.
                if draw >= mix.read + mix.update:
                    yield client.get_data_async(base).event
                yield client.set_data_async(base, b"u").event
            elif draw < mix.read + mix.update + mix.read_modify_write \
                    + mix.insert:
                inserts += 1
                yield client.create_async(f"{base}/n{inserts}", b"").event
            else:  # scan
                yield client.get_children_async(base).event
            self._writer_ops_done += 1
            yield self.cloud.env.timeout(1.0 + rng.random() * 25.0)

    # -- Lock-recipe contention group -----------------------------------------
    def _locker(self, idx: int, client, hold_ms: float = 20.0):
        lock = Lock(client, "/swarm-lock", identifier=f"swarm-{idx}")
        for _ in range(self.spec.lock_rounds):
            acquired = yield from lock.co_acquire()
            if acquired:
                self._lock_grants += 1
                yield self.cloud.env.timeout(hold_ms)
                yield from lock.co_release()

    # -- churn cohorts --------------------------------------------------------
    def _graceful_closer(self, client, after_ms: float):
        yield self.cloud.env.timeout(after_ms)
        if not client.closed:
            yield client.close_async().event

    def _silencer(self, client, after_ms: float):
        yield self.cloud.env.timeout(after_ms)
        if not client.closed:
            self._silenced_at[client.session_id] = self.cloud.env.now
            client.alive = False

    # ------------------------------------------------------------ run
    def run(self) -> Dict[str, Any]:
        spec = self.spec
        env = self.cloud.env
        config = self.service.config
        duration_ms = spec.duration_ms or (
            4.0 * config.heartbeat_period_ms + config.session_timeout_ms)

        self._register()
        live_after_registration = self.service.active_sessions
        cohorts = self._pick_cohorts()
        stagger = random.Random(spec.seed + 1)

        procs = []
        # Watchers spread round-robin over the hot paths; each path's
        # writes come from a dedicated writer outside the watcher cohort.
        per_path: List[List[Any]] = [[] for _ in range(spec.watch_paths)]
        for i, c in enumerate(cohorts["watchers"]):
            per_path[i % spec.watch_paths].append(c)
        owners = self.service.connect_many(spec.watch_paths)
        for i, watchers in enumerate(per_path):
            procs.append(env.process(
                self._hot_path_driver(f"/swarm-hot{i}", owners[i], watchers),
                name=f"swarm:hot{i}"))
        for i, c in enumerate(cohorts["writers"]):
            procs.append(env.process(self._writer(i, c),
                                     name=f"swarm:writer{i}"))
        for i, c in enumerate(cohorts["lockers"]):
            procs.append(env.process(self._locker(i, c),
                                     name=f"swarm:lock{i}"))
        # Churn is staggered across the first heartbeat period so closes
        # and silences overlap registration-fresh sweeps.
        for c in cohorts["graceful"]:
            procs.append(env.process(self._graceful_closer(
                c, stagger.random() * config.heartbeat_period_ms),
                name="swarm:close"))
        for c in cohorts["silent"]:
            procs.append(env.process(self._silencer(
                c, stagger.random() * config.heartbeat_period_ms),
                name="swarm:silent"))

        start = env.now
        self.cloud.run(until=start + duration_ms)
        # Cohort work should be long done; drain any stragglers without
        # advancing past the measurement window by more than one period.
        pending = [p for p in procs if not p.triggered]
        if pending:
            self.cloud.run(until=AllOf(env, pending))

        for sid, silenced_at in self._silenced_at.items():
            closed_at = self.service.clients[sid].closed_at
            if closed_at is not None:
                self.eviction_lag_ms.append(closed_at - silenced_at)

        sweep_ms = [d for fn in self.service.heartbeat_fns
                    for d in fn.durations_ms]
        return {
            "spec": asdict(spec),
            "session_plane_shards": config.session_plane_shards,
            "sessions_registered": len(self.clients) + spec.watch_paths,
            "live_after_registration": live_after_registration,
            "live_at_end": self.service.active_sessions,
            "sweeps": len(sweep_ms),
            "evicted": len(self.eviction_lag_ms),
            "lock_grants": self._lock_grants,
            "writer_ops": self._writer_ops_done,
            "metrics": {
                "heartbeat_sweep_ms": summarize_samples(sweep_ms),
                "watch_fanout_ms": summarize_samples(self.watch_fanout_ms),
                "eviction_lag_ms": summarize_samples(self.eviction_lag_ms),
                "registration_rate_per_s": summarize_samples(
                    self.registration_rate_per_s),
            },
        }
