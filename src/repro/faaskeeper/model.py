"""Data model: node stats, watch events, the unified operation envelope.

Every write travels as a :class:`Request` envelope holding one or more
typed :class:`Operation` elements.  The client's per-method APIs build
one-element envelopes; ``multi()``/``transaction()`` build longer ones
that commit atomically (ZooKeeper's ``multi`` semantics).  The follower
parses the same ``Operation`` objects back out of the wire dict, so the
client and the service agree on one schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, ClassVar, Dict, List, Optional, Type

from .exceptions import BadArgumentsError

__all__ = [
    "ACL_PERMS",
    "OPEN_ACL",
    "acl_allows",
    "KeeperState",
    "NodeStat",
    "WatchType",
    "WatchedEvent",
    "EventType",
    "Operation",
    "CreateOp",
    "SetDataOp",
    "DeleteOp",
    "CheckOp",
    "operation_from_dict",
    "WriteResult",
    "CheckResult",
    "Request",
    "Response",
    "validate_path",
    "parent_path",
    "node_name",
]


class KeeperState(str, Enum):
    """Session lifecycle states surfaced to client state listeners.

    Mirrors kazoo's ``KazooState``: CONNECTED while the session is healthy,
    SUSPENDED when the service has observed the client unreachable (a missed
    heartbeat, a dropped request) but the session still exists — operations
    may yet succeed or the session may be evicted — and LOST once the
    session is closed or evicted, which is terminal: ephemeral nodes are
    gone and a new session must be opened.
    """

    CONNECTED = "connected"
    SUSPENDED = "suspended"
    LOST = "lost"


class WatchType(str, Enum):
    """What kind of change a watch fires on (ZooKeeper watch classes)."""

    DATA = "data"          # set_data / delete on the node
    EXISTS = "exists"      # create / delete of the node
    CHILDREN = "children"  # create / delete of a direct child


class EventType(str, Enum):
    """Client-visible watch event types."""

    NODE_DATA_CHANGED = "node_data_changed"
    NODE_CREATED = "node_created"
    NODE_DELETED = "node_deleted"
    NODE_CHILDREN_CHANGED = "node_children_changed"


@dataclass(frozen=True)
class NodeStat:
    """Per-node metadata, the analogue of ZooKeeper's ``Stat``.

    ``created_tx``/``modified_tx`` are FaaSKeeper txids (the zxid analogue);
    ``version`` counts data changes, ``cversion`` child-list changes.
    """

    created_tx: int
    modified_tx: int
    version: int
    cversion: int
    num_children: int
    data_length: int
    ephemeral_owner: Optional[str] = None

    @classmethod
    def from_image(cls, image: Dict[str, Any]) -> "NodeStat":
        data = image.get("data", b"") or b""
        return cls(
            created_tx=image.get("created_tx", 0),
            modified_tx=image.get("modified_tx", 0),
            version=image.get("version", 0),
            cversion=image.get("cversion", 0),
            num_children=len(image.get("children", [])),
            data_length=len(data),
            ephemeral_owner=image.get("ephemeral_owner"),
        )


@dataclass(frozen=True)
class WatchedEvent:
    """Delivered to watch callbacks."""

    type: EventType
    path: str
    txid: int


ACL_PERMS = ("read", "write", "create", "delete")

#: Everyone-may-do-everything ACL (ZooKeeper's OPEN_ACL_UNSAFE).
OPEN_ACL = {perm: ["world"] for perm in ACL_PERMS}


def acl_allows(acl: Optional[Dict[str, List[str]]], perm: str,
               session: str) -> bool:
    """Check one permission of a node ACL for a session (Section 4.4)."""
    if not acl:
        return True
    allowed = acl.get(perm, [])
    return "world" in allowed or session in allowed


@dataclass(frozen=True)
class WriteResult:
    """Outcome of a committed write."""

    path: str
    txid: int
    version: int


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a passed version check inside a transaction."""

    path: str
    version: int


@dataclass(frozen=True)
class Operation:
    """One element of the write envelope: a typed, validated operation.

    Subclasses mirror ZooKeeper's transaction op set (create / setData /
    delete / check).  ``validate()`` runs client-side before submission;
    ``to_dict()``/:func:`operation_from_dict` define the wire schema shared
    with the follower; the ``result_*`` hooks map a committed envelope's
    response back to the per-op typed result.
    """

    path: str

    OP: ClassVar[str] = ""

    def validate(self) -> None:
        validate_path(self.path)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.OP, "path": self.path}

    @property
    def payload_kb(self) -> float:
        """Queue-payload contribution (same accounting as a lone request)."""
        return 128 / 1024.0

    def result_from_response(self, response: "Response") -> Any:
        """Typed result of a one-element envelope."""
        raise NotImplementedError

    def result_from_multi(self, result: Dict[str, Any]) -> Any:
        """Typed result of this op inside a committed multi."""
        raise NotImplementedError


@dataclass(frozen=True)
class CreateOp(Operation):
    """Create a node (optionally ephemeral / sequence-suffixed / ACL'd)."""

    data: bytes = b""
    ephemeral: bool = False
    sequence: bool = False
    acl: Optional[dict] = None

    OP: ClassVar[str] = "create"

    def validate(self) -> None:
        validate_path(self.path, allow_root=False)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.OP, "path": self.path, "data": bytes(self.data),
                "ephemeral": self.ephemeral, "sequence": self.sequence,
                "acl": self.acl}

    @property
    def payload_kb(self) -> float:
        return (len(self.data) + 128) / 1024.0

    def result_from_response(self, response: "Response") -> str:
        return response.path

    def result_from_multi(self, result: Dict[str, Any]) -> str:
        return result["path"]


@dataclass(frozen=True)
class SetDataOp(Operation):
    """Replace node data, optionally conditional on ``version``."""

    data: bytes = b""
    version: int = -1

    OP: ClassVar[str] = "set_data"

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.OP, "path": self.path, "data": bytes(self.data),
                "version": self.version}

    @property
    def payload_kb(self) -> float:
        return (len(self.data) + 128) / 1024.0

    def result_from_response(self, response: "Response") -> WriteResult:
        return WriteResult(path=response.path or self.path,
                           txid=response.txid, version=response.version)

    def result_from_multi(self, result: Dict[str, Any]) -> WriteResult:
        return WriteResult(path=result["path"], txid=result["txid"],
                           version=result["version"])


@dataclass(frozen=True)
class DeleteOp(Operation):
    """Delete a (childless) node, optionally conditional on ``version``."""

    version: int = -1

    OP: ClassVar[str] = "delete"

    def validate(self) -> None:
        validate_path(self.path, allow_root=False)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.OP, "path": self.path, "version": self.version}

    def result_from_response(self, response: "Response") -> None:
        return None

    def result_from_multi(self, result: Dict[str, Any]) -> None:
        return None


@dataclass(frozen=True)
class CheckOp(Operation):
    """Assert a node exists (and, when ``version >= 0``, matches it).

    ZooKeeper's transaction-only guard op: it never mutates state, but the
    whole multi aborts when the check fails at commit time.
    """

    version: int = -1

    OP: ClassVar[str] = "check"

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.OP, "path": self.path, "version": self.version}

    def result_from_multi(self, result: Dict[str, Any]) -> CheckResult:
        return CheckResult(path=result["path"], version=result["version"])


_OPERATION_TYPES: Dict[str, Type[Operation]] = {
    cls.OP: cls for cls in (CreateOp, SetDataOp, DeleteOp, CheckOp)}


def operation_from_dict(raw: Dict[str, Any]) -> Operation:
    """Parse one wire-dict envelope element back into a typed Operation."""
    if not isinstance(raw, dict):
        raise BadArgumentsError(f"malformed operation {raw!r}")
    cls = _OPERATION_TYPES.get(raw.get("op"))
    if cls is None:
        raise BadArgumentsError(f"unknown operation {raw.get('op')!r}")
    fields = {k: v for k, v in raw.items() if k != "op"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise BadArgumentsError(
            f"malformed {raw.get('op')} operation: {exc}") from exc


@dataclass
class Request:
    """Client -> follower queue message (the operation envelope).

    Single operations use the flat fields (the historical wire schema,
    preserved bit-for-bit); a ``multi`` envelope carries its elements in
    ``ops`` and commits them atomically.
    """

    session: str
    rid: int                      # per-session request id (dedup + ordering)
    op: str                       # create | set_data | delete | multi | close_session
    path: str = ""
    data: bytes = b""
    version: int = -1             # expected version, -1 = unconditional
    ephemeral: bool = False
    sequence: bool = False
    acl: dict | None = None       # ACL for the created node
    shard_hint: int | None = None  # client-computed leader shard for the path
    ops: List[dict] | None = None  # multi: wire dicts of the member operations
    #: close_session only: ephemeral paths to release when the session
    #: record no longer exists (native-TTL evictions delete it first).
    ephemerals: List[str] | None = None

    @classmethod
    def from_operation(cls, session: str, rid: int, op: Operation) -> "Request":
        """One-element envelope: the flat single-op wire schema."""
        d = op.to_dict()
        return cls(session=session, rid=rid, op=d["op"], path=d.get("path", ""),
                   data=d.get("data", b""), version=d.get("version", -1),
                   ephemeral=d.get("ephemeral", False),
                   sequence=d.get("sequence", False), acl=d.get("acl"))

    @classmethod
    def from_operations(cls, session: str, rid: int,
                        ops: List[Operation]) -> "Request":
        """Multi envelope: N operations, one queue message, one commit."""
        return cls(session=session, rid=rid, op="multi",
                   ops=[op.to_dict() for op in ops])

    def to_body(self) -> Dict[str, Any]:
        """The queue-message dict (single-op bodies match the historical
        per-method construction exactly)."""
        body = {
            "session": self.session, "rid": self.rid, "op": self.op,
            "path": self.path, "data": self.data,
            "version": self.version, "ephemeral": self.ephemeral,
            "sequence": self.sequence, "acl": self.acl,
        }
        if self.ops is not None:
            body["ops"] = self.ops
        return body

    def write_paths(self) -> List[str]:
        """Paths this envelope writes (check ops guard, they don't write)."""
        if self.ops is None:
            return [self.path]
        return [d["path"] for d in self.ops if d.get("op") != "check"]

    @property
    def size_kb(self) -> float:
        if self.ops is not None:
            return sum((len(d.get("data", b"") or b"") + 128) / 1024.0
                       for d in self.ops)
        return (len(self.data) + 128) / 1024.0


@dataclass
class Response:
    """Function -> client notification (success/failure of a request)."""

    session: str
    rid: int
    ok: bool
    error: str = ""
    path: str = ""                # created path (sequential nodes)
    txid: int = 0
    version: int = 0
    results: List[dict] | None = None  # multi: per-op outcome dicts, in op order


def validate_path(path: str, allow_root: bool = True) -> None:
    """ZooKeeper path rules: absolute, no trailing slash, no empty segments."""
    if not path or not path.startswith("/"):
        raise BadArgumentsError(f"path must start with '/': {path!r}")
    if path == "/":
        if not allow_root:
            raise BadArgumentsError("operation not permitted on '/'")
        return
    if path.endswith("/"):
        raise BadArgumentsError(f"path must not end with '/': {path!r}")
    for segment in path[1:].split("/"):
        if not segment or segment in (".", ".."):
            raise BadArgumentsError(f"invalid path segment in {path!r}")


def parent_path(path: str) -> str:
    if path == "/":
        raise BadArgumentsError("'/' has no parent")
    parent = path.rsplit("/", 1)[0]
    return parent or "/"


def node_name(path: str) -> str:
    return path.rsplit("/", 1)[1]
