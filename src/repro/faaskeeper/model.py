"""Data model: node stats, watch events, request/response envelopes."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from .exceptions import BadArgumentsError

__all__ = [
    "ACL_PERMS",
    "OPEN_ACL",
    "acl_allows",
    "NodeStat",
    "WatchType",
    "WatchedEvent",
    "EventType",
    "Request",
    "Response",
    "validate_path",
    "parent_path",
    "node_name",
]


class WatchType(str, Enum):
    """What kind of change a watch fires on (ZooKeeper watch classes)."""

    DATA = "data"          # set_data / delete on the node
    EXISTS = "exists"      # create / delete of the node
    CHILDREN = "children"  # create / delete of a direct child


class EventType(str, Enum):
    """Client-visible watch event types."""

    NODE_DATA_CHANGED = "node_data_changed"
    NODE_CREATED = "node_created"
    NODE_DELETED = "node_deleted"
    NODE_CHILDREN_CHANGED = "node_children_changed"


@dataclass(frozen=True)
class NodeStat:
    """Per-node metadata, the analogue of ZooKeeper's ``Stat``.

    ``created_tx``/``modified_tx`` are FaaSKeeper txids (the zxid analogue);
    ``version`` counts data changes, ``cversion`` child-list changes.
    """

    created_tx: int
    modified_tx: int
    version: int
    cversion: int
    num_children: int
    data_length: int
    ephemeral_owner: Optional[str] = None

    @classmethod
    def from_image(cls, image: Dict[str, Any]) -> "NodeStat":
        data = image.get("data", b"") or b""
        return cls(
            created_tx=image.get("created_tx", 0),
            modified_tx=image.get("modified_tx", 0),
            version=image.get("version", 0),
            cversion=image.get("cversion", 0),
            num_children=len(image.get("children", [])),
            data_length=len(data),
            ephemeral_owner=image.get("ephemeral_owner"),
        )


@dataclass(frozen=True)
class WatchedEvent:
    """Delivered to watch callbacks."""

    type: EventType
    path: str
    txid: int


ACL_PERMS = ("read", "write", "create", "delete")

#: Everyone-may-do-everything ACL (ZooKeeper's OPEN_ACL_UNSAFE).
OPEN_ACL = {perm: ["world"] for perm in ACL_PERMS}


def acl_allows(acl, perm: str, session: str) -> bool:
    """Check one permission of a node ACL for a session (Section 4.4)."""
    if not acl:
        return True
    allowed = acl.get(perm, [])
    return "world" in allowed or session in allowed


@dataclass
class Request:
    """Client -> follower queue message."""

    session: str
    rid: int                      # per-session request id (dedup + ordering)
    op: str                       # create | set_data | delete | close_session
    path: str = ""
    data: bytes = b""
    version: int = -1             # expected version, -1 = unconditional
    ephemeral: bool = False
    sequence: bool = False
    acl: dict | None = None       # ACL for the created node
    shard_hint: int | None = None  # client-computed leader shard for the path

    @property
    def size_kb(self) -> float:
        return (len(self.data) + 128) / 1024.0


@dataclass
class Response:
    """Function -> client notification (success/failure of a request)."""

    session: str
    rid: int
    ok: bool
    error: str = ""
    path: str = ""                # created path (sequential nodes)
    txid: int = 0
    version: int = 0


def validate_path(path: str, allow_root: bool = True) -> None:
    """ZooKeeper path rules: absolute, no trailing slash, no empty segments."""
    if not path or not path.startswith("/"):
        raise BadArgumentsError(f"path must start with '/': {path!r}")
    if path == "/":
        if not allow_root:
            raise BadArgumentsError("operation not permitted on '/'")
        return
    if path.endswith("/"):
        raise BadArgumentsError(f"path must not end with '/': {path!r}")
    for segment in path[1:].split("/"):
        if not segment or segment in (".", ".."):
            raise BadArgumentsError(f"invalid path segment in {path!r}")


def parent_path(path: str) -> str:
    if path == "/":
        raise BadArgumentsError("'/' has no parent")
    parent = path.rsplit("/", 1)[0]
    return parent or "/"


def node_name(path: str) -> str:
    return path.rsplit("/", 1)[1]
