"""Garbage-collection scheduled function (extension).

Section 2.1 names garbage collection as the canonical use of scheduled
functions ("Functions can be launched to perform regular routines such as
garbage collection..."); the paper's prototype leaves it implicit.  This
module implements it:

* **tombstones** — deleted nodes leave ``exists=False`` items in the system
  node table so the leader can verify late transactions; once the pending
  transaction list is drained and a grace period has passed, the item can
  be removed;
* **phantom lock items** — a failed create leaves an item containing only
  an (expired) lock timestamp; these are swept as well;
* **stale watch instances** — watch instances whose sessions are all gone
  are dropped, so dead clients do not accumulate fan-out work.

The sweeper runs as a scheduled function, just like the heartbeat, and is
suspended together with it at scale-to-zero.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr
from .layout import SYSTEM_NODES, SYSTEM_SESSIONS

__all__ = ["GarbageCollectorLogic"]

#: A tombstone must be idle this long before collection (ms).
TOMBSTONE_GRACE_MS = 60_000.0


class GarbageCollectorLogic:
    """Behaviour of the GC function, bound to one deployment."""

    def __init__(self, service) -> None:
        self.service = service
        self._collected = service.metrics.counter(
            "fk_gc_collected_total",
            "Items reclaimed by the GC sweep", ("kind",))

    # Pre-metrics attribute API (read-only over the registry).
    @property
    def collected_tombstones(self) -> int:
        return int(self._collected.labels(kind="tombstone").value)

    @property
    def collected_phantoms(self) -> int:
        return int(self._collected.labels(kind="phantom").value)

    @property
    def collected_watches(self) -> int:
        return int(self._collected.labels(kind="watch").value)

    def handler(self, fctx, payload: Any) -> Generator:
        yield from self._sweep_nodes(fctx)
        yield from self._sweep_watches(fctx)
        return {
            "tombstones": self.collected_tombstones,
            "phantoms": self.collected_phantoms,
            "watches": self.collected_watches,
        }

    # ------------------------------------------------------------ nodes
    def _sweep_nodes(self, fctx) -> Generator:
        store = self.service.system_store
        table = store.table(SYSTEM_NODES)
        now = fctx.env.now
        max_hold = self.service.config.lock_max_hold_ms
        # The scan is billed like the heartbeat's session scan.
        items = yield from store.scan(fctx.ctx, SYSTEM_NODES)
        for key, item in items.items():
            if key == "/":
                continue
            lock_ts = (item.get("lock") or {}).get("ts")
            lock_expired = lock_ts is None or now - lock_ts >= max_hold
            if not lock_expired:
                continue
            is_tombstone = item.get("exists") is False and not item.get("transactions")
            is_phantom = "exists" not in item and not item.get("transactions")
            if is_tombstone and now - self._age_marker(item) < TOMBSTONE_GRACE_MS:
                continue
            if not (is_tombstone or is_phantom):
                continue
            # Guarded delete: only while still tombstone/phantom and unlocked.
            guard = (Attr("lock.ts").not_exists()
                     | (Attr("lock.ts") <= now - max_hold))
            if is_tombstone:
                guard = guard & (Attr("exists") == False)  # noqa: E712
            else:
                guard = guard & Attr("exists").not_exists()
            try:
                yield from store.delete_item(fctx.ctx, SYSTEM_NODES, key,
                                             condition=guard)
            except ConditionFailed:
                continue  # resurrected concurrently: leave it alone
            if is_tombstone:
                self._collected.labels(kind="tombstone").inc()
            else:
                self._collected.labels(kind="phantom").inc()
        return None

    @staticmethod
    def _age_marker(item: Dict[str, Any]) -> float:
        # Tombstones carry no timestamp attribute; use the lock timestamp
        # (set at deletion time) when present, else treat as old.
        lock_ts = (item.get("lock") or {}).get("ts")
        return lock_ts if lock_ts is not None else 0.0

    # ------------------------------------------------------------ watches
    def _sweep_watches(self, fctx) -> Generator:
        store = self.service.system_store
        sessions = yield from store.scan(fctx.ctx, SYSTEM_SESSIONS)
        live = set(sessions.keys())
        # One scan per watch shard table (a single table when the session
        # plane is flat); each path's removal routes back through the
        # registry, which owns the table mapping.
        watch_items: Dict[str, Any] = {}
        for table_name in self.service.watch_registry.tables:
            shard_items = yield from store.scan(fctx.ctx, table_name)
            watch_items.update(shard_items)
        for path, item in watch_items.items():
            for wtype, inst in (item.get("inst") or {}).items():
                alive = [s for s in inst.get("sessions", []) if s in live]
                if alive:
                    continue
                # Guarded removal: the scan snapshot is stale by the time
                # the update lands — a watch consumed (fired) and
                # re-registered in between holds a fresh instance id, and a
                # live session may have joined the existing instance;
                # deleting either would silently unsubscribe live sessions.
                removed = yield from self.service.watch_registry.remove_instance(
                    fctx.ctx, path, wtype, inst.get("id"),
                    inst.get("sessions", []))
                if removed:
                    self._collected.labels(kind="watch").inc()
        return None
