"""The watch fan-out function (Section 4.1, "Decoupling Watch Delivery").

Delivering one watch may mean notifying hundreds of clients; doing that from
the leader would serialize the write pipeline.  FaaSKeeper moves the fan-out
into a separate *free* function so resource allocation scales with the
number of watchers, while the leader only pays the cheap watch-table query.

The payload is a list of triggered watch instances; each watcher session is
notified in parallel.  The function completes when every delivery finished —
that completion is what the leader's WatchCallback (epoch cleanup) awaits.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ..sim.kernel import AllOf
from .model import EventType, WatchedEvent

__all__ = ["WatchFanoutLogic"]


class WatchFanoutLogic:
    """Behaviour of the watch function, bound to one deployment."""

    def __init__(self, service) -> None:
        self.service = service

    def handler(self, fctx, payload: Dict[str, Any]) -> Generator:
        """payload = {"txid": int, "watches": [{watch_id, path, event,
        sessions}, ...]}"""
        env = fctx.env
        txid = payload["txid"]
        deliveries = []
        for watch in payload["watches"]:
            event = WatchedEvent(
                type=EventType(watch["event"]),
                path=watch["path"],
                txid=txid,
            )
            for session in watch["sessions"]:
                deliveries.append(env.process(
                    self.service.notify_watch_process(
                        session, watch["watch_id"], event),
                    name=f"deliver:{watch['watch_id']}:{session}",
                ))
        if deliveries:
            yield AllOf(env, deliveries)
        return len(deliveries)
