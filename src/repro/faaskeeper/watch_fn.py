"""The watch fan-out function (Section 4.1, "Decoupling Watch Delivery").

Delivering one watch may mean notifying hundreds of clients; doing that from
the leader would serialize the write pipeline.  FaaSKeeper moves the fan-out
into a separate *free* function so resource allocation scales with the
number of watchers, while the leader only pays the cheap watch-table query.

The payload is a list of triggered watch instances; each watcher session is
notified in parallel.  The function completes when every delivery finished —
that completion is what the leader's WatchCallback (epoch cleanup) awaits.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Generator

from ..sim.kernel import AllOf
from .layout import watch_shard_of
from .model import EventType, WatchedEvent

__all__ = ["WatchFanoutLogic"]


class WatchFanoutLogic:
    """Behaviour of the watch function, bound to one deployment.

    With a sharded leader pipeline the fan-out is invoked concurrently by
    several shard leaders; invocations are independent (resource allocation
    scales with the number of watchers, as in the single-leader design) and
    the per-shard delivery counters expose the fan-out split for the epoch
    accounting tests and the sharding benchmarks.
    """

    def __init__(self, service) -> None:
        self.service = service
        self._deliveries = service.metrics.counter(
            "fk_watch_deliveries_total",
            "Per-session watch notifications delivered",
            ("origin", "shard"))
        self._invocations = service.metrics.counter(
            "fk_watch_fanouts_total", "Watch fan-out invocations")
        # Attribution by *watch-table* shard (the session plane's watch
        # partitioning), distinct from the leader-pipeline "shard" label
        # above; on a flat plane everything lands on watch shard 0.
        self._shard_deliveries = service.metrics.counter(
            "fk_watch_shard_deliveries_total",
            "Watch notifications delivered per watch-table shard",
            ("watch_shard",))

    # Pre-metrics attribute API: the epoch-accounting and sharding tests
    # index these like the defaultdicts they used to be.
    @property
    def deliveries_by_shard(self) -> Dict[int, int]:
        totals: Dict[int, int] = defaultdict(int)
        for (_origin, shard), child in self._deliveries.items():
            totals[int(shard)] += int(child.value)
        return totals

    @property
    def deliveries_by_origin(self) -> Dict[str, int]:
        """Which pipeline stage invoked the fan-out ("leader" for the
        inline step ➍, "distributor" for the asynchronous watch stage);
        the distributor tests assert the fan-out moved off the leader."""
        totals: Dict[str, int] = defaultdict(int)
        for (origin, _shard), child in self._deliveries.items():
            totals[origin] += int(child.value)
        return totals

    def handler(self, fctx, payload: Dict[str, Any]) -> Generator:
        """payload = {"txid": int, "shard": int, "origin": str,
        "watches": [{watch_id, path, event, sessions}, ...]}"""
        env = fctx.env
        fctx.crash_point("watch_entry")
        txid = payload["txid"]
        shard = payload.get("shard", 0)
        origin = payload.get("origin", "leader")
        plane_shards = self.service.config.session_plane_shards
        deliveries = []
        for watch in payload["watches"]:
            # Crash between spawning per-session deliveries: the retried
            # invocation re-spawns every delivery and the client library
            # deduplicates by watch-instance id (one-shot semantics).
            fctx.crash_point("watch_mid_fanout")
            event = WatchedEvent(
                type=EventType(watch["event"]),
                path=watch["path"],
                txid=txid,
            )
            for session in watch["sessions"]:
                deliveries.append(env.process(
                    self.service.notify_watch_process(
                        session, watch["watch_id"], event),
                    name=f"deliver:{watch['watch_id']}:{session}",
                ))
            self._shard_deliveries.labels(
                watch_shard=str(watch_shard_of(watch["path"], plane_shards)),
            ).inc(len(watch["sessions"]))
        if deliveries:
            yield AllOf(env, deliveries)
        self._invocations.inc()
        self._deliveries.labels(origin=origin, shard=str(shard)).inc(
            len(deliveries))
        return len(deliveries)
