"""FaaSKeeper deployment: wiring functions, queues and storage (Figure 2b).

``FaaSKeeperService.deploy(cloud, config)`` stands up one instance:

* system tables (nodes, state, sessions, watches) in the key-value store;
* the user store backend of choice, replicated per region;
* ``leader_shards`` leader FIFO queues, each feeding its own leader
  function (one queue + one leader — the paper's Algorithm 2 — at the
  default ``leader_shards=1``); the znode tree is partitioned over the
  shards by top-level path component;
* a follower function shared by all per-session FIFO queues;
* optionally (``distributor_enabled``) one distributor FIFO queue +
  function per region: the asynchronous stage that replicates committed
  writes into the regional user stores, owns the watch fan-out and
  maintains the per-region ``replicated_tx`` visibility watermark;
* the watch fan-out free function;
* the scheduled heartbeat function (auto-suspended at zero sessions —
  the scale-to-zero property of Table 1).

``connect()`` returns a :class:`~repro.faaskeeper.client.FaaSKeeperClient`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cloud.cloud import Cloud
from ..cloud.context import OpContext
from ..cloud.kvstore import TTL_ATTRIBUTE
from ..cloud.queues import SharedSequence
from ..primitives import TimedLock
from .client import FaaSKeeperClient
from .config import FaaSKeeperConfig
from .distributor import DistributionStage
from .follower import FollowerLogic
from .gc import GarbageCollectorLogic
from .heartbeat import HeartbeatLogic
from .layout import (
    SYSTEM_LOG,
    SYSTEM_NODES,
    SYSTEM_SESSIONS,
    SYSTEM_SNAPSHOT,
    SYSTEM_STATE,
    SYSTEM_WATCHES,
    epoch_key,
    new_system_node,
    replicated_key,
    shard_of_path,
    user_image_from_system,
    watch_shard_table,
)
from .leader import LeaderLogic
from .metrics import MetricsRegistry
from .model import KeeperState, Response, WatchedEvent
from .outbox import OutboxStage
from .retry import (BREAKER_OPEN, RetryPolicy, RetryingKeyValueStore,
                    RetryingUserStore)
from .snapshot import SnapshotManager
from .watch_fn import WatchFanoutLogic
from .watches import EpochLedger, WatchRegistry

__all__ = ["FaaSKeeperService", "SessionFenceBoard"]


class SessionFenceBoard:
    """Cross-shard per-session write ordering (Z2 for the sharded pipeline).

    The follower stamps each leader message with a session-sequence fence
    at push time (pushes of one session are serialized by its FIFO queue,
    so fences follow request order).  A shard leader starts a message only
    after the session's previous fence was marked applied — by whichever
    shard owned that write — so a session's writes commit and become
    user-visible in request order even when they span shards.

    The board is the simulation's stand-in for a conditional check on the
    session item in system storage; its waits therefore only model the
    *ordering*, not extra storage traffic.
    """

    def __init__(self, env) -> None:
        self.env = env
        self._issued: Dict[str, int] = {}
        self._applied: Dict[str, int] = {}
        self._waiters: Dict[str, List[Tuple[int, Any]]] = {}

    def issue(self, session: str) -> int:
        nxt = self._issued.get(session, 0) + 1
        self._issued[session] = nxt
        return nxt

    def applied(self, session: str) -> int:
        return self._applied.get(session, 0)

    def wait_turn(self, session: str, fence: int) -> Generator:
        """Block until fence ``fence - 1`` of ``session`` is applied."""
        while True:
            done = self._applied.get(session, 0)
            if done >= fence - 1:
                return None
            event = self.env.event()
            event.defused()
            self._waiters.setdefault(session, []).append((fence, event))
            yield event

    def advance(self, session: str, fence: int) -> None:
        """Mark ``fence`` applied (idempotent) and wake eligible waiters."""
        if fence <= self._applied.get(session, 0):
            return
        self._applied[session] = fence
        waiters = self._waiters.pop(session, [])
        still: List[Tuple[int, Any]] = []
        for wanted, event in waiters:
            if fence >= wanted - 1:
                if not event.triggered:
                    event.succeed(None)
            else:
                still.append((wanted, event))
        if still:
            self._waiters[session] = still


class FaaSKeeperService:
    """One deployed FaaSKeeper instance."""

    def __init__(self, cloud: Cloud, config: FaaSKeeperConfig) -> None:
        self.cloud = cloud
        self.config = config
        self.rng = cloud.rng.stream("faaskeeper")
        self.system_ctx = OpContext(region=config.primary_region)
        #: The deployment's metric namespace.  Created first: every stage
        #: logic below registers its counters here.  Metrics are pure
        #: Python bookkeeping (no simulated latency, RNG draws or billed
        #: traffic), so the registry rides inside the bit-for-bit-gated
        #: default deployment.
        self.metrics = MetricsRegistry()

        # --- system storage -------------------------------------------------
        self.system_store = cloud.kv("dynamodb:system", region=config.primary_region)
        retry_policy = RetryPolicy(
            enabled=config.storage_retry_enabled,
            max_attempts=config.storage_retry_attempts,
            base_ms=config.storage_retry_base_ms,
            cap_ms=config.storage_retry_cap_ms,
            jitter=config.storage_retry_jitter)
        if config.storage_retry_enabled:
            # Every system-store round trip below goes through the retry/
            # breaker engine.  The jitter stream is created lazily on the
            # first actual retry, so fault-free runs keep their RNG draw
            # sequence — and their fingerprints — bit-for-bit.
            self.system_store = RetryingKeyValueStore(
                self.system_store, cloud.env,
                lambda: cloud.rng.stream("storage-retry:system"),
                retry_policy, config.storage_breaker_threshold,
                config.storage_breaker_cooldown_ms, self.metrics,
                on_breaker_transition=self._on_breaker_transition,
                label="system",
                breaker_probe_interval_ms=config.storage_breaker_probe_interval_ms)
        for table in (SYSTEM_NODES, SYSTEM_STATE, SYSTEM_SESSIONS, SYSTEM_WATCHES):
            self.system_store.create_table(table)
        # Extra watch shard tables (session_plane_shards > 1): shard 0 is
        # SYSTEM_WATCHES itself, so the flat plane creates nothing new.
        for plane_shard in range(1, config.session_plane_shards):
            self.system_store.create_table(watch_shard_table(plane_shard))
        self.node_lock = TimedLock(self.system_store, SYSTEM_NODES,
                                   max_hold_ms=config.lock_max_hold_ms)
        self.epoch_ledger = EpochLedger(self.system_store, SYSTEM_STATE,
                                        config.regions)
        self.epoch_lists = self.epoch_ledger.lists  # legacy alias
        self.watch_registry = WatchRegistry(self.system_store,
                                            shards=config.session_plane_shards)

        # --- user storage ---------------------------------------------------
        from .userstore import make_user_store

        self.user_store = make_user_store(cloud, config)
        if config.storage_retry_enabled:
            # Backend ops are whole-image writes (idempotent), so the
            # wrapper replays them bodily; each region gets its own
            # circuit breaker since regions fail independently.
            self.user_store = RetryingUserStore(
                self.user_store, cloud.env,
                lambda: cloud.rng.stream("storage-retry:user"),
                retry_policy, config.storage_breaker_threshold,
                config.storage_breaker_cooldown_ms, self.metrics,
                on_breaker_transition=self._on_breaker_transition,
                label="user",
                breaker_probe_interval_ms=config.storage_breaker_probe_interval_ms)
        #: Fault injectors armed on this deployment (empty = clean run).
        self.storage_injectors: List[Any] = []
        if config.storage_faults:
            self.arm_storage_faults(rate=config.storage_fault_rate)

        # --- TTL-native ephemeral cleanup (capability-gated) ------------------
        # Session records carry a DynamoDB-style conditional TTL attribute
        # that the heartbeat refreshes forward; a record whose owner stops
        # answering lapses and the table's TTL deletion (reason="ttl" on
        # the stream) starts the eviction — carrying the ephemeral list in
        # the message, since the record itself is already gone.  Fleets
        # whose user backend lacks native TTL keep the unchanged
        # heartbeat-driven sweep.
        self._ttl_evictions = None
        if self.ephemeral_ttl_active:
            self._ttl_evictions = self.metrics.counter(
                "fk_ttl_evictions_total",
                "Sessions evicted by native TTL expiry of their record")
            self.system_store.table(SYSTEM_SESSIONS).stream_listeners.append(
                self._on_session_expired)

        # --- functions & queues ----------------------------------------------
        num_shards = config.leader_shards
        self.fence_board: Optional[SessionFenceBoard] = (
            SessionFenceBoard(cloud.env) if num_shards > 1 else None)
        self.follower_logic = FollowerLogic(self)
        self.leader_logics = [LeaderLogic(self, shard=i)
                              for i in range(num_shards)]
        self.watch_logic = WatchFanoutLogic(self)
        plane_shards = config.session_plane_shards
        self.heartbeat_logics = [
            HeartbeatLogic(self, shard=i, shards=plane_shards)
            for i in range(plane_shards)
        ]
        self.gc_logic = GarbageCollectorLogic(self)

        fn_kwargs = dict(memory_mb=config.function_memory_mb, arch=config.arch,
                         cpu_alloc=config.cpu_alloc, region=config.primary_region)
        self.follower_fn = cloud.deploy_function(
            "fk-follower", self.follower_logic.handler, **fn_kwargs)
        # Shard 0 keeps the historical names so the shards=1 deployment is
        # bit-identical to the single-leader original (RNG streams and cost
        # labels derive from queue/function names).
        self.leader_fns = [
            cloud.deploy_function(
                "fk-leader" if i == 0 else f"fk-leader-{i}",
                logic.handler, **fn_kwargs)
            for i, logic in enumerate(self.leader_logics)
        ]
        self.watch_fn = cloud.deploy_function(
            "fk-watch", self.watch_logic.handler, **fn_kwargs)
        # One sweep function per session-plane shard; shard 0 keeps the
        # historical name (the fk-leader precedent), so the flat plane's
        # RNG streams and cost labels are unchanged.
        self.heartbeat_fns = [
            cloud.deploy_function(
                "fk-heartbeat" if i == 0 else f"fk-heartbeat-{i}",
                logic.handler, **fn_kwargs)
            for i, logic in enumerate(self.heartbeat_logics)
        ]
        self.gc_fn = cloud.deploy_function(
            "fk-gc", self.gc_logic.handler, **fn_kwargs)

        # All shard queues draw txids from one sequence, keeping transaction
        # ids globally comparable (MRD tracking, applied_tx watermarks).
        txid_sequence = SharedSequence() if num_shards > 1 else None
        self.leader_queues = []
        for i, fn in enumerate(self.leader_fns):
            queue = cloud.fifo_queue(
                "fk-leader-q" if i == 0 else f"fk-leader-q-{i}",
                label="sqs", max_receive=config.leader_max_receive,
                seq_source=txid_sequence)
            queue.attach(fn, batch_limit=config.leader_batch)
            queue.on_drop = self._on_leader_drop
            self.leader_queues.append(queue)
        #: Writes whose client-stamped shard hint disagreed with the shard
        #: recomputed from the final path (stale client partition map, or a
        #: sequence suffix remapping a top-level create).
        self._shard_hint_mismatches = self.metrics.counter(
            "fk_shard_hint_mismatches_total",
            "Writes whose client shard hint disagreed with the final path")

        # --- distributor stage (None = the paper's inline pipeline) ----------
        self.distribution: Optional[DistributionStage] = (
            DistributionStage(self) if config.distributor_enabled else None)

        # --- durability: commit log + fuzzy snapshots (opt-in) ----------------
        # Everything here is gated on commit_log_enabled so the default
        # deployments keep their deployment-time RNG draws — and therefore
        # their latency/cost fingerprints — bit-for-bit.
        self.snapshots: Optional[SnapshotManager] = None
        self.snapshot_fn = None
        self.snapshot_task = None
        if config.commit_log_enabled:
            for table in (SYSTEM_LOG, SYSTEM_SNAPSHOT):
                self.system_store.create_table(table)
            self.snapshots = SnapshotManager(self)
            self.snapshot_fn = cloud.deploy_function(
                "fk-snapshot", self.snapshots.handler, **fn_kwargs)
            if config.snapshot_auto_ms > 0:
                self.snapshot_task = cloud.runtime.schedule(
                    self.snapshot_fn, period_ms=config.snapshot_auto_ms)
                self.snapshot_task.stop()  # scale-to-zero, like the heartbeat

        # --- transactional outbox (opt-in event streaming) --------------------
        self.outbox: Optional[OutboxStage] = (
            OutboxStage(self) if config.outbox_enabled else None)
        self.outbox_task = None
        if self.outbox is not None and config.outbox_publish_ms > 0:
            self.outbox_task = cloud.runtime.schedule(
                self.outbox.fn, period_ms=config.outbox_publish_ms)
            self.outbox_task.stop()  # scale-to-zero, like the heartbeat

        self.heartbeat_tasks = []
        for i, fn in enumerate(self.heartbeat_fns):
            # Shard sweeps are phase-staggered across the period so they do
            # not all hit the session table's capacity bucket at once;
            # shard 0 keeps offset 0, so the flat plane's schedule (and its
            # fingerprint) is untouched.
            task = cloud.runtime.schedule(
                fn, period_ms=config.heartbeat_period_ms,
                offset_ms=(i * config.heartbeat_period_ms
                           / len(self.heartbeat_fns)))
            task.stop()  # scale-to-zero until a client connects
            self.heartbeat_tasks.append(task)
        self.gc_task = cloud.runtime.schedule(
            self.gc_fn, period_ms=config.gc_period_ms)
        self.gc_task.stop()

        # --- sessions ----------------------------------------------------------
        self._session_ids = itertools.count(1)
        self.clients: Dict[str, FaaSKeeperClient] = {}
        self._session_queues: Dict[str, Any] = {}

        self._wire_metrics()
        self._bootstrap_root()

    # ------------------------------------------------------------ deployment
    @classmethod
    def deploy(cls, cloud: Cloud, config: Optional[FaaSKeeperConfig] = None
               ) -> "FaaSKeeperService":
        return cls(cloud, config or FaaSKeeperConfig())

    # ------------------------------------------------------------ resilience
    def arm_storage_faults(self, rate: Optional[float] = None) -> List[Any]:
        """Arm a seeded transient-fault schedule on every storage endpoint.

        One :class:`~repro.cloud.faults.FaultInjector` per fault point —
        the system key-value store plus whatever endpoints the registered
        user backend reports via ``fault_points()`` — each driven by its
        own named RNG stream (``storage-faults:<label>@<region>``), so the
        schedule replays exactly for a given sim seed and is independent
        of every other stream.  Idempotent per deployment: re-arming
        replaces the previous injectors.
        """
        from ..cloud.faults import FAULT_KINDS, FaultInjector

        if rate is None:
            rate = self.config.storage_fault_rate
        user_inner = getattr(self.user_store, "inner", self.user_store)
        system_inner = getattr(self.system_store, "_inner", self.system_store)
        points = [system_inner] + list(user_inner.fault_points())
        injectors = []
        for point in points:
            label = getattr(point, "service_label", "kv")
            region = getattr(point, "region", "all")
            stream = self.cloud.rng.stream(f"storage-faults:{label}@{region}")
            injector = FaultInjector(
                self.cloud.env, stream, rate,
                timeout_ms=self.config.storage_fault_timeout_ms)
            point.faults = injector
            injectors.append(injector)
        self.storage_injectors = injectors
        injected = self.metrics.gauge(
            "fk_storage_faults_injected",
            "Transient storage faults injected, by kind", ("kind",))
        for kind in FAULT_KINDS:
            injected.labels(kind=kind).set_function(
                lambda k=kind: float(sum(i.injected[k]
                                         for i in self.storage_injectors)))
        return injectors

    def disarm_storage_faults(self) -> None:
        """Remove all armed injectors (the schedule stops drawing)."""
        user_inner = getattr(self.user_store, "inner", self.user_store)
        system_inner = getattr(self.system_store, "_inner", self.system_store)
        for point in [system_inner] + list(user_inner.fault_points()):
            point.faults = None
        self.storage_injectors = []

    @property
    def ephemeral_ttl_active(self) -> bool:
        """Native TTL cleanup is on: opted in *and* the deployment's user
        backend advertises the capability (``supports_ttl`` on the
        registry).  Other fleets keep the heartbeat-driven sweep."""
        return bool(self.config.ephemeral_ttl_enabled
                    and self.user_store.supports_ttl)

    def _on_session_expired(self, record) -> None:
        """SYSTEM_SESSIONS stream listener: a TTL deletion of a session
        record is the eviction signal.  The record is already gone, so the
        close request embeds its ephemeral list for the follower."""
        if record.reason != "ttl" or record.old_image is None:
            return
        if self._ttl_evictions is not None:
            self._ttl_evictions.inc()
        region = record.old_image.get("region", self.config.primary_region)
        self.cloud.run_process(self.enqueue_eviction(
            OpContext(region=region), record.key,
            ephemerals=list(record.old_image.get("ephemeral", []))))

    def _on_breaker_transition(self, label: str, region: str, state: str
                               ) -> None:
        """An OPEN breaker means the store endpoint is effectively down:
        shed the affected sessions to SUSPENDED (not LOST — the next
        successful round trip after recovery heals them)."""
        if state != BREAKER_OPEN:
            return
        for client in list(self.clients.values()):
            if label == "system" or client.region == region:
                client._transition(KeeperState.SUSPENDED)

    # Single-leader aliases (shard 0), kept for the paper-configuration
    # benchmarks and tests written against the unsharded deployment.
    @property
    def leader_fn(self):
        return self.leader_fns[0]

    # Flat-session-plane aliases (shard 0), same convention.
    @property
    def heartbeat_logic(self) -> HeartbeatLogic:
        return self.heartbeat_logics[0]

    @property
    def heartbeat_fn(self):
        return self.heartbeat_fns[0]

    @property
    def heartbeat_task(self):
        return self.heartbeat_tasks[0]

    @property
    def leader_queue(self):
        return self.leader_queues[0]

    @property
    def leader_logic(self) -> LeaderLogic:
        return self.leader_logics[0]

    def _on_leader_drop(self, message) -> None:
        """A leader-queue message exhausted ``leader_max_receive``: its
        session fence must still advance (or the session's next write on
        another shard — and with it that whole shard — would wait forever)
        and its client learns about the failure."""
        body = message.body
        if not isinstance(body, dict):  # pragma: no cover - defensive
            return
        if self.fence_board is not None and body.get("fence") is not None:
            self.fence_board.advance(body["session"], body["fence"])
        client = self.clients.get(body.get("session"))
        if client is not None and body.get("rid", -1) >= 0:
            client._deliver_response(Response(
                session=body["session"], rid=body["rid"], ok=False,
                error="system_failure"))

    @property
    def shard_hint_mismatches(self) -> int:
        """Pre-metrics attribute API (read-only over the registry)."""
        return int(self._shard_hint_mismatches.value)

    def record_shard_hint_mismatch(self) -> None:
        self._shard_hint_mismatches.inc()

    @property
    def visibility_board(self):
        """Per-region replication visibility (None without the distributor:
        the leader's inline replication makes acked writes visible)."""
        return self.distribution.visibility if self.distribution else None

    # ------------------------------------------------------------ routing
    def shard_of(self, path: str) -> int:
        """Leader shard owning ``path`` (hash of the top-level component)."""
        return shard_of_path(path, self.config.leader_shards)

    def leader_queue_for(self, path: str):
        return self.leader_queues[self.shard_of(path)]

    def multi_shard_of(self, paths) -> int:
        """Coordinator shard of a transaction: the lowest shard id among the
        shards owning its written paths (deterministic, so client hint and
        follower routing agree).  A single-shard multi commits natively on
        its own shard; a cross-shard multi rides the coordinator's queue and
        relies on the session fences plus the per-path pending-transaction
        gates to order its writes against the owning shards' traffic —
        sound because every committed write appends its txid to each touched
        path's pending list under the node lock, giving a per-path total
        order every leader observes before replicating.
        """
        shards = {self.shard_of(p) for p in paths}
        return min(shards) if shards else 0

    def _bootstrap_root(self) -> None:
        """Install "/" in system and user stores (zero-latency, deploy time)."""
        root = new_system_node(0, created_tx=0)
        self.system_store.table(SYSTEM_NODES)._store("/", root)
        for region in self.config.regions:
            image = user_image_from_system("/", root, epoch=[])
            self.cloud.run_process(
                self.user_store.write_node(self.system_ctx, region, "/", image))
        # epoch counters start empty
        for region in self.config.regions:
            self.system_store.table(SYSTEM_STATE)._store(
                epoch_key(region), {"items": []})
        if self.distribution is not None:
            # visibility watermarks start at zero (nothing replicated yet)
            for region in self.config.regions:
                self.system_store.table(SYSTEM_STATE)._store(
                    replicated_key(region), {"txid": 0})

    # ------------------------------------------------------------ sessions
    @property
    def active_sessions(self) -> int:
        return sum(1 for c in self.clients.values() if not c.closed)

    def connect(self, region: Optional[str] = None) -> FaaSKeeperClient:
        """Open a session: its own FIFO queue, a session record, a client."""
        session_id = f"s{next(self._session_ids)}"
        region = region or self.config.primary_region
        queue = self.cloud.fifo_queue(
            f"fk-session-{session_id}", label="sqs",
            max_receive=self.config.follower_max_receive)
        queue.attach(self.follower_fn, batch_limit=self.config.follower_batch)
        self._session_queues[session_id] = queue
        session_item = {"ephemeral": [], "region": region, "last_rid": 0}
        if self.ephemeral_ttl_active:
            session_item[TTL_ATTRIBUTE] = (
                self.cloud.env.now + self.config.effective_ephemeral_ttl_ms)
        self.cloud.run_process(self.system_store.put_item(
            OpContext(region=region), SYSTEM_SESSIONS, session_id,
            session_item))
        client = FaaSKeeperClient(self, session_id, region, queue)
        self.clients[session_id] = client
        if self.active_sessions == 1:
            self._start_scheduled_tasks()
        return client

    def connect_many(self, count: int, region: Optional[str] = None,
                     batch_size: int = 25) -> List[FaaSKeeperClient]:
        """Open ``count`` sessions with batched registration.

        Each session still gets its own FIFO queue and client, but the
        session records land in ``BatchWriteItem`` chunks of ``batch_size``
        — one round trip per chunk instead of one per session, the
        difference between registering 100k sessions in seconds versus
        minutes of virtual time.  The call pumps the event loop until every
        batch write has landed (the same synchronous contract as
        :meth:`connect`, whose single put is awaited by the first client
        op), so callers can clock registration throughput off it directly.
        """
        if count <= 0:
            return []
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        region = region or self.config.primary_region
        ctx = OpContext(region=region)
        was_idle = self.active_sessions == 0
        clients: List[FaaSKeeperClient] = []
        pending: Dict[str, Dict[str, Any]] = {}
        writes = []
        for _ in range(count):
            session_id = f"s{next(self._session_ids)}"
            queue = self.cloud.fifo_queue(
                f"fk-session-{session_id}", label="sqs",
                max_receive=self.config.follower_max_receive)
            queue.attach(self.follower_fn,
                         batch_limit=self.config.follower_batch)
            self._session_queues[session_id] = queue
            session_item = {"ephemeral": [], "region": region, "last_rid": 0}
            if self.ephemeral_ttl_active:
                session_item[TTL_ATTRIBUTE] = (
                    self.cloud.env.now
                    + self.config.effective_ephemeral_ttl_ms)
            pending[session_id] = session_item
            client = FaaSKeeperClient(self, session_id, region, queue)
            self.clients[session_id] = client
            clients.append(client)
            if len(pending) >= batch_size:
                writes.append(self.cloud.env.process(
                    self.system_store.batch_put(
                        ctx, SYSTEM_SESSIONS, dict(pending)),
                    name="connect-many"))
                pending.clear()
        if pending:
            writes.append(self.cloud.env.process(
                self.system_store.batch_put(
                    ctx, SYSTEM_SESSIONS, dict(pending)),
                name="connect-many"))
        if was_idle and self.active_sessions > 0:
            self._start_scheduled_tasks()
        if writes:
            from ..sim.kernel import AllOf
            self.cloud.env.run(until=AllOf(self.cloud.env, writes))
        return clients

    def _start_scheduled_tasks(self) -> None:
        for task in self.heartbeat_tasks:
            task.start()
        self.gc_task.start()
        if self.snapshot_task is not None:
            self.snapshot_task.start()
        if self.outbox_task is not None:
            self.outbox_task.start()

    def on_session_closed(self, session_id: str, evicted: bool = False) -> None:
        client = self.clients.get(session_id)
        if client is not None:
            # An eviction surfaces as the LOST transition on the client's
            # state machine — the session learns of its death when the
            # evictor's close lands, not on its next failed request.
            client._mark_closed(evicted=evicted)
        if self.active_sessions == 0:
            # Scale-to-zero: with no clients there is nothing to monitor and
            # the only remaining charges are storage retention (Section 5.3.4).
            for task in self.heartbeat_tasks:
                task.stop()
            self.gc_task.stop()
            if self.snapshot_task is not None:
                self.snapshot_task.stop()
            if self.outbox_task is not None:
                self.outbox_task.stop()

    # ------------------------------------------------------------ notification
    def notify_response(self, response: Response) -> Generator:
        """Function -> client result push (the TCP reply of Section 5.2.2)."""
        client = self.clients.get(response.session)
        latency = self.cloud.profile.tcp_reply.sample(
            self.cloud.rng.stream("tcp"), 0.0)
        yield self.cloud.env.timeout(latency)
        if client is not None:
            client._deliver_response(response)
        return None

    def notify_watch_process(self, session: str, watch_id: str,
                             event: WatchedEvent) -> Generator:
        """One watch delivery to one client (spawned by the watch function)."""
        client = self.clients.get(session)
        latency = self.cloud.profile.tcp_reply.sample(
            self.cloud.rng.stream("tcp"), 0.0)
        yield self.cloud.env.timeout(latency)
        if client is not None and not client.closed:
            client._deliver_watch(watch_id, event)
        return None

    def invoke_watch_fn(self, triggered: List, txid: int, shard: int = 0,
                        origin: str = "leader"):
        """Free-function invocation of the watch fan-out (leader step ➍,
        or the distributor's watch stage when that pipeline is enabled)."""
        payload = {
            "txid": txid,
            "shard": shard,
            "origin": origin,
            "watches": [
                {
                    "watch_id": t.watch_id,
                    "path": t.path,
                    "event": t.event.value,
                    "sessions": t.sessions,
                }
                for t in triggered
            ],
        }
        if self.config.free_fn_retries <= 0:
            return self.cloud.runtime.invoke_direct(self.watch_fn, payload)
        # AWS retries failed async invocations (up to twice); duplicated
        # deliveries are deduplicated client-side by watch-instance id, so
        # at-least-once invocation yields exactly-once callback effects.
        done = self.cloud.env.event()
        done.defused()
        self.cloud.env.process(
            self._invoke_watch_retrying(payload, done),
            name="watch-invoke-retry")
        return done

    def _invoke_watch_retrying(self, payload: Dict[str, Any], done) -> Generator:
        last: Optional[BaseException] = None
        for _attempt in range(self.config.free_fn_retries + 1):
            try:
                result = yield self.cloud.runtime.invoke_direct(
                    self.watch_fn, payload)
            except Exception as exc:
                last = exc
                continue
            done.succeed(result)
            return None
        done.fail(last)
        return None

    # ------------------------------------------------------------ heartbeat
    def heartbeat_ping(self, session_id: str) -> Generator:
        """Ping one client; returns True when it answers in time."""
        client = self.clients.get(session_id)
        latency = self.cloud.profile.tcp_reply.sample(
            self.cloud.rng.stream("tcp"), 0.0)
        yield self.cloud.env.timeout(latency)
        answered = bool(client is not None and client.alive and not client.closed)
        if not answered and client is not None and not client.closed:
            # The service observed the client unreachable: the session is in
            # doubt (SUSPENDED) until the eviction lands (LOST) or a later
            # successful round trip heals it.
            client._transition(KeeperState.SUSPENDED)
        return answered

    def enqueue_eviction(self, ctx: OpContext, session_id: str,
                         ephemerals: Optional[List[str]] = None) -> Generator:
        """Queue a deregistration request into the session's own queue, so it
        orders after any writes the session already submitted.

        ``ephemerals`` rides along when the caller already knows the list
        (the TTL path, whose session record no longer exists to read)."""
        queue = self._session_queues.get(session_id)
        if queue is None:  # pragma: no cover - defensive
            return None
        body: Dict[str, Any] = {
            "session": session_id, "rid": -1, "op": "close_session",
        }
        if ephemerals is not None:
            body["ephemerals"] = list(ephemerals)
        yield from queue.send(ctx, body, group=session_id, size_kb=0.1)
        return None

    # ------------------------------------------------------------ metrics
    #: ``cost_breakdown()`` categories, in their historical order; each is
    #: a ``fk_cost_dollars`` gauge computed from the cost meter.
    _COST_CATEGORIES = ("queue", "system_store", "user_store", "s3",
                        "dynamodb", "follower", "leader", "distributor",
                        "watch", "heartbeat")
    _CACHE_STATS = ("hits", "misses", "invalidations", "evictions",
                    "entries", "size_kb")

    def _wire_metrics(self) -> None:
        """Attach the registry to everything that already keeps numbers
        elsewhere: per-stage timing probes (via the runtime's
        ``on_segment`` hook), function lifecycle counts, client-cache
        stats, session count and the cost meter — the latter as callback
        gauges sampled at read time, the same device as a Prometheus
        collector, so there is no double bookkeeping."""
        m = self.metrics
        functions = [self.follower_fn, *self.leader_fns, self.watch_fn,
                     *self.heartbeat_fns, self.gc_fn]
        if self.snapshot_fn is not None:
            functions.append(self.snapshot_fn)
        if self.distribution is not None:
            functions.extend(self.distribution.fns.values())
        if self.outbox is not None:
            functions.append(self.outbox.fn)

        segments = m.histogram(
            "fk_stage_segment_ms",
            "Timing probes recorded by pipeline stages (Figure 10/Table 3)",
            ("fn", "segment"))
        invocations = m.gauge("fk_fn_invocations",
                              "Function invocations", ("fn",))
        cold_starts = m.gauge("fk_fn_cold_starts",
                              "Function cold starts", ("fn",))
        failures = m.gauge("fk_fn_failures",
                           "Function invocations that died", ("fn",))
        for fn in functions:
            name = fn.spec.name
            fn.on_segment = (
                lambda seg, ms, _n=name:
                segments.labels(fn=_n, segment=seg).observe(ms))
            invocations.labels(fn=name).set_function(
                lambda _f=fn: float(_f.invocations))
            cold_starts.labels(fn=name).set_function(
                lambda _f=fn: float(_f.cold_starts))
            failures.labels(fn=name).set_function(
                lambda _f=fn: float(_f.failures))

        m.gauge("fk_sessions_active", "Open client sessions").set_function(
            lambda: float(self.active_sessions))
        cache = m.gauge("fk_client_cache",
                        "Aggregated client read-cache counters", ("stat",))
        for stat in self._CACHE_STATS:
            cache.labels(stat=stat).set_function(
                lambda _s=stat: self.client_cache_stats()[_s])

        by = self.cloud.meter.by_service
        cost = m.gauge("fk_cost_dollars",
                       "Metered dollars by cost category (Figures 9/11)",
                       ("category",))
        cost.labels(category="queue").set_function(
            lambda: sum(v for k, v in by().items() if k.startswith("sqs")))
        cost.labels(category="system_store").set_function(
            lambda: by().get("dynamodb:system", 0.0))
        cost.labels(category="user_store").set_function(
            lambda: by().get("dynamodb:user", 0.0) + by().get("s3", 0.0))
        cost.labels(category="s3").set_function(
            lambda: by().get("s3", 0.0))
        cost.labels(category="dynamodb").set_function(
            lambda: by().get("dynamodb:system", 0.0)
            + by().get("dynamodb:user", 0.0))
        cost.labels(category="follower").set_function(
            lambda: by().get("fn:fk-follower", 0.0))
        cost.labels(category="leader").set_function(
            lambda: sum(v for k, v in by().items()
                        if k.startswith("fn:fk-leader")))
        cost.labels(category="distributor").set_function(
            lambda: sum(v for k, v in by().items()
                        if k.startswith("fn:fk-distributor")))
        cost.labels(category="watch").set_function(
            lambda: by().get("fn:fk-watch", 0.0))
        cost.labels(category="heartbeat").set_function(
            lambda: sum(v for k, v in by().items()
                        if k.startswith("fn:fk-heartbeat")))

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The whole registry as one stable, JSON-able dict."""
        return self.metrics.snapshot()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the registry (``/metrics``)."""
        return self.metrics.expose()

    # ------------------------------------------------------------ accounting
    def client_cache_stats(self) -> Dict[str, float]:
        """Aggregate hit/miss/invalidation counters of every session's read
        cache (all zero when ``client_cache_entries`` is 0, the default)."""
        totals = {"hits": 0.0, "misses": 0.0, "invalidations": 0.0,
                  "evictions": 0.0, "entries": 0.0, "size_kb": 0.0}
        for client in self.clients.values():
            if client._cache is None:
                continue
            for key, value in client._cache.stats().items():
                totals[key] += value
        return totals

    def cost_breakdown(self) -> Dict[str, float]:
        """Metered dollars by category (Figures 9/11 cost bars), plus the
        client read-cache hit/miss counters so cost reports can attribute a
        user-store drop to its hit rate.

        Backed entirely by the metrics registry (the ``fk_cost_dollars``
        and ``fk_client_cache`` callback gauges), with the same categories
        and values as the pre-registry implementation.
        """
        cost = self.metrics.get("fk_cost_dollars")
        cache = self.metrics.get("fk_client_cache")
        out: Dict[str, float] = {
            "client_cache_hits": cache.labels(stat="hits").value,
            "client_cache_misses": cache.labels(stat="misses").value,
        }
        for category in self._COST_CATEGORIES:
            out[category] = cost.labels(category=category).value
        return out
