"""Session-consistent client-side read cache with watch-driven invalidation.

FaaSKeeper reads go straight from the client to the region-local user
store, so every ``get_data``/``get_children`` pays a full storage round
trip and a per-request storage charge — the dominant cost of read-heavy
mixes (Figures 8/9).  ZooKeeper's one-shot watches make client caching
sound (Hunt et al., ATC'10): a cached value is valid exactly until the
watch registered alongside it fires.  The client therefore registers a
*system* watch (DATA for ``get_data``, CHILDREN for ``get_children``) on
every cache miss; delivery of that watch invalidates the entry, and the
next read re-fetches and re-arms.

Consistency is unchanged from the uncached read path:

* **read-your-writes** — the client invalidates every path its own write
  (or ``multi()``) touched when the write's response arrives, and reads
  still wait on the session write barrier before consulting the cache; on
  distributor deployments (``distributor_enabled``, where an ack under
  ``ack_policy="on_commit"`` precedes replication) the barrier also waits
  for the region's ``replicated_tx`` visibility watermark to cover the
  session's acked writes, so a hit can never be admitted — nor served —
  ahead of data the user store does not hold yet;
* **Z4** — a cache hit replays the ordering stall
  (:meth:`FaaSKeeperClient._stall_for_epoch`) against the cached image's
  epoch set, so a hit never returns data whose epoch carries one of this
  session's undelivered notifications;
* **staleness** — a hit may serve an older image than the user store
  holds, which ZooKeeper explicitly permits (reads are served from any
  replica); the watch delivery bounds the window, exactly as it bounds a
  ZooKeeper client's view.

The cache is an LRU bounded by entry count (``client_cache_entries``) and
bytes (``client_cache_kb``); both default to off so the seed-calibrated
figure benchmarks stay bit-for-bit identical.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Set, Tuple

from .model import WatchType
from .userstore import entry_size_kb

__all__ = ["ClientReadCache"]

#: Cache key: (node path, watch type guarding the entry).
CacheKey = Tuple[str, str]


class _Entry:
    __slots__ = ("key", "image", "watch_id", "size_kb")

    def __init__(self, key: CacheKey, image: Dict[str, Any],
                 watch_id: str, size_kb: float) -> None:
        self.key = key
        self.image = image
        self.watch_id = watch_id
        self.size_kb = size_kb


class ClientReadCache:
    """One session's LRU of node images, invalidated by watch delivery.

    Entries are keyed by ``(path, watch type)``: a ``get_data`` entry is
    guarded by the path's DATA watch instance, a ``get_children`` entry by
    its CHILDREN instance, so each entry dies with exactly the class of
    change that can stale it.
    """

    def __init__(self, max_entries: int, max_kb: float = 0.0) -> None:
        self.max_entries = max_entries
        self.max_kb = max_kb
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._by_watch: Dict[str, Set[CacheKey]] = {}
        self.size_kb = 0.0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(path: str, wtype: WatchType) -> CacheKey:
        return (path, wtype.value)

    # ------------------------------------------------------------ reads
    def lookup(self, path: str, wtype: WatchType,
               require_watch_id: Optional[str] = None
               ) -> Optional[Dict[str, Any]]:
        """Return the cached image for ``(path, wtype)`` or None; counts the
        hit/miss and refreshes the entry's LRU position.

        ``require_watch_id`` is the watch instance a caller just (re-)joined
        for this path.  A mismatch with the entry's guard means the guard
        was consumed and a fresh instance minted since the entry was
        admitted: its invalidation is already in flight, and a read that
        armed a watch on the new instance must not be handed an image that
        predates the change the new watch will never report.  The doomed
        entry is dropped and the lookup misses.
        """
        entry = self._entries.get(self._key(path, wtype))
        if entry is None:
            self.misses += 1
            return None
        if require_watch_id is not None and entry.watch_id != require_watch_id:
            self._drop(entry.key)
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(entry.key)
        self.hits += 1
        return dict(entry.image)

    # ------------------------------------------------------------ writes
    def admit(self, path: str, wtype: WatchType, image: Dict[str, Any],
              watch_id: str) -> None:
        """Install an entry guarded by ``watch_id`` (the watch instance
        registered before the underlying read), evicting LRU victims until
        the entry-count and byte budgets hold.  An image too large for the
        byte budget on its own is simply not cached."""
        size_kb = entry_size_kb(image)
        if self.max_kb > 0 and size_kb > self.max_kb:
            return
        key = self._key(path, wtype)
        self._drop(key)  # replacing an entry must not double-count its size
        entry = _Entry(key, dict(image), watch_id, size_kb)
        self._entries[key] = entry
        self._by_watch.setdefault(watch_id, set()).add(key)
        self.size_kb += size_kb
        while len(self._entries) > self.max_entries or (
                self.max_kb > 0 and self.size_kb > self.max_kb):
            victim_key = next(iter(self._entries))
            self._drop(victim_key)
            self.evictions += 1

    # ------------------------------------------------------------ invalidation
    def invalidate_watch(self, watch_id: str) -> int:
        """A watch notification arrived: drop every entry it guarded."""
        keys = self._by_watch.pop(watch_id, None)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            if self._entries.pop(key, None) is not None:
                dropped += 1
        self._recount()
        self.invalidations += dropped
        return dropped

    def invalidate_path(self, path: str) -> int:
        """This session wrote ``path``: drop all of its entries so the next
        read observes the write (read-your-writes through the cache)."""
        dropped = 0
        for wtype in WatchType:
            if self._drop((path, wtype.value)):
                dropped += 1
        self.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Session closed: every entry dies with it."""
        self._entries.clear()
        self._by_watch.clear()
        self.size_kb = 0.0

    # ------------------------------------------------------------ stats
    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "size_kb": self.size_kb,
        }

    # ------------------------------------------------------------ internal
    def _drop(self, key: CacheKey) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.size_kb -= entry.size_kb
        keys = self._by_watch.get(entry.watch_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                self._by_watch.pop(entry.watch_id, None)
        return True

    def _recount(self) -> None:
        self.size_kb = sum(e.size_kb for e in self._entries.values())
