"""Self-healing storage access: retry, backoff, and circuit breaking.

A single transient storage error — a throttle, a timeout, a dropped
connection — used to be session-fatal anywhere in the pipeline.  This
module wraps **every** system-store and user-store round trip in a
declarative retry policy (the shape of Kazoo's ``KazooRetry``), adapted to
the simulation's constraints:

* **Sim-clock backoff** — waits are ``env.timeout`` events on the virtual
  clock (FK001-clean: no wall-clock sleeps), exponential with a jittered
  factor drawn from a dedicated named RNG stream.  The stream is only
  created — and only drawn from — when a retry actually happens, so a
  fault-free run's RNG consumption, latency and cost stay bit-for-bit
  identical to the unwrapped store.
* **Idempotence-aware replay** — every key-value mutator is stamped with a
  deterministic request token (DynamoDB ``ClientRequestToken``).  If the
  first attempt died *after* applying (the ambiguous partial-write
  failure), the replay returns the recorded result instead of re-applying,
  so conditional writes re-verify rather than blind-retry and the
  exactly-once audits stay green.  User-store ops are whole-image writes
  (idempotent by construction), so the wrapper re-runs them bodily.
* **Per-region circuit breaker** — ``storage_breaker_threshold``
  consecutive transient failures trip a store/region to OPEN: further
  requests are shed immediately with :class:`StorageUnavailable` (and the
  deployment marks the region's sessions SUSPENDED) instead of piling
  retries onto a dead endpoint.  After ``storage_breaker_cooldown_ms`` of
  virtual time one HALF_OPEN probe is let through; success closes the
  breaker, failure re-opens it.

Retryable errors are exactly :data:`repro.cloud.errors.TRANSIENT_ERRORS`;
:class:`ConditionFailed` is a decision, not an outage, and always
surfaces.  Observability rides the deployment's metrics registry:
``fk_storage_retries_total``, ``fk_storage_retry_exhausted_total``,
``fk_storage_breaker_state`` / ``_transitions_total`` and the
``fk_storage_retry_backoff_ms`` histogram.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Generator, List, Optional)

from ..cloud.errors import TRANSIENT_ERRORS, StorageUnavailable

__all__ = ["RetryPolicy", "CircuitBreaker", "RetryingKeyValueStore",
           "RetryingUserStore", "BREAKER_CLOSED", "BREAKER_HALF_OPEN",
           "BREAKER_OPEN"]

#: Breaker states, in escalation order (also the gauge encoding).
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"
_STATE_GAUGE = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0,
                BREAKER_OPEN: 2.0}

#: Backoff histogram buckets (ms): finer than the latency default at the
#: low end, since base backoffs start at ~10 ms.
_BACKOFF_BUCKETS = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0,
                    1280.0, 2560.0, 5120.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry policy for one store wrapper."""

    enabled: bool = True
    max_attempts: int = 5
    base_ms: float = 10.0
    cap_ms: float = 2_000.0
    jitter: float = 0.5

    def backoff_ms(self, attempt: int, u: float) -> float:
        """Wait before retry ``attempt`` (1-based) given uniform ``u``."""
        delay = min(self.cap_ms, self.base_ms * (2.0 ** (attempt - 1)))
        if self.jitter > 0:
            delay *= 1.0 - self.jitter / 2.0 + self.jitter * u
        return delay


class CircuitBreaker:
    """Per-endpoint failure gate: CLOSED -> OPEN -> HALF_OPEN -> CLOSED.

    Time is the virtual clock; ``on_transition(state)`` fires on every
    state change (the deployment uses OPEN to shed the region's sessions
    to SUSPENDED).
    """

    def __init__(self, env, threshold: int, cooldown_ms: float,
                 on_transition: Optional[Callable[[str], None]] = None,
                 probe_interval_ms: float = 0.0) -> None:
        self.env = env
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.on_transition = on_transition
        #: Minimum spacing between HALF_OPEN probes.  0 = a probe whenever
        #: the cooldown allows (the legacy behaviour): under a sustained
        #: brown-out that re-probes — and re-fails, and re-opens — once per
        #: cooldown *per caller*; a positive interval caps the aggregate
        #: probe rate against the sick endpoint.
        self.probe_interval_ms = probe_interval_ms
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self._probing = False
        #: Virtual instant of the last admitted probe, and the total count
        #: (mirrored into ``fk_storage_breaker_probes_total`` by the
        #: retrier).
        self.last_probe_at: Optional[float] = None
        self.probes = 0

    def _set_state(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self.on_transition is not None:
            self.on_transition(state)

    def _probe_due(self) -> bool:
        if self.probe_interval_ms <= 0 or self.last_probe_at is None:
            return True
        return self.env.now - self.last_probe_at >= self.probe_interval_ms

    def _admit_probe(self) -> None:
        self._probing = True
        self.last_probe_at = self.env.now
        self.probes += 1

    # ------------------------------------------------------------ protocol
    def allow(self) -> bool:
        """May a request go out now?  OPEN sheds until the cooldown has
        elapsed, then admits HALF_OPEN probes one at a time, spaced at
        least ``probe_interval_ms`` apart."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self.env.now - self.opened_at < self.cooldown_ms:
                return False
            if not self._probe_due():
                return False
            self._set_state(BREAKER_HALF_OPEN)
            self._admit_probe()
            return True
        # HALF_OPEN: one probe in flight at a time, rate-capped.
        if self._probing or not self._probe_due():
            return False
        self._admit_probe()
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._probing = False
        if self.state != BREAKER_CLOSED:
            self._set_state(BREAKER_CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == BREAKER_HALF_OPEN:
            self._probing = False
            self.opened_at = self.env.now
            self._set_state(BREAKER_OPEN)
        elif self.state == BREAKER_CLOSED and self.failures >= self.threshold:
            self.opened_at = self.env.now
            self._set_state(BREAKER_OPEN)


class _Retrier:
    """The shared retry engine behind both store wrappers."""

    def __init__(self, label: str, env, rng_factory, policy: RetryPolicy,
                 breaker_threshold: int, breaker_cooldown_ms: float,
                 metrics, on_breaker_transition=None,
                 breaker_probe_interval_ms: float = 0.0) -> None:
        self.label = label
        self.env = env
        self._rng_factory = rng_factory
        self._rng = None  # created on first actual retry
        self.policy = policy
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_ms = breaker_cooldown_ms
        self._breaker_probe_interval_ms = breaker_probe_interval_ms
        self._on_breaker_transition = on_breaker_transition
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._tokens = itertools.count(1)
        m = metrics
        self._retries = m.counter(
            "fk_storage_retries_total",
            "Transient storage errors absorbed by the retry layer",
            ("store", "op", "error"))
        self._exhausted = m.counter(
            "fk_storage_retry_exhausted_total",
            "Storage ops that failed every retry attempt",
            ("store", "op"))
        self._shed = m.counter(
            "fk_storage_breaker_shed_total",
            "Storage ops shed by an open circuit breaker",
            ("store", "op"))
        self._backoff = m.histogram(
            "fk_storage_retry_backoff_ms",
            "Backoff waits between storage retry attempts",
            ("store",), buckets=_BACKOFF_BUCKETS)
        self._breaker_state = m.gauge(
            "fk_storage_breaker_state",
            "Circuit breaker state (0=closed, 1=half-open, 2=open)",
            ("store", "region"))
        self._breaker_transitions = m.counter(
            "fk_storage_breaker_transitions_total",
            "Circuit breaker state changes",
            ("store", "region", "to"))
        self._breaker_probes = m.counter(
            "fk_storage_breaker_probes_total",
            "HALF_OPEN probe requests admitted by a healing breaker",
            ("store", "region"))

    # ------------------------------------------------------------ plumbing
    def breaker(self, region: str) -> CircuitBreaker:
        breaker = self.breakers.get(region)
        if breaker is None:
            def on_transition(state: str, _region: str = region) -> None:
                self._breaker_state.labels(
                    store=self.label, region=_region).set(_STATE_GAUGE[state])
                self._breaker_transitions.labels(
                    store=self.label, region=_region, to=state).inc()
                if self._on_breaker_transition is not None:
                    self._on_breaker_transition(self.label, _region, state)

            breaker = CircuitBreaker(
                self.env, self._breaker_threshold,
                self._breaker_cooldown_ms, on_transition,
                probe_interval_ms=self._breaker_probe_interval_ms)
            self.breakers[region] = breaker
        return breaker

    def next_token(self) -> str:
        return f"{self.label}-t{next(self._tokens)}"

    def _jitter_u(self) -> float:
        if self.policy.jitter <= 0:
            return 0.5  # not used by backoff_ms when jitter is 0
        if self._rng is None:
            self._rng = self._rng_factory()
        return self._rng.random()

    # ------------------------------------------------------------ the loop
    def run(self, op: str, region: str, make_attempt, mutating: bool
            ) -> Generator[Any, Any, Any]:
        """Run ``make_attempt(token) -> generator`` with retry/backoff.

        A fresh attempt generator is created per try; the same token rides
        every attempt of one logical mutation, which is what makes the
        replay idempotent.
        """
        if not self.policy.enabled:
            return (yield from make_attempt(None))
        breaker = self.breaker(region)
        token = self.next_token() if mutating else None
        attempt = 0
        while True:
            if not breaker.allow():
                self._shed.labels(store=self.label, op=op).inc()
                raise StorageUnavailable(
                    f"{self.label}@{region}: circuit open, shedding {op}")
            if breaker.state == BREAKER_HALF_OPEN:
                self._breaker_probes.labels(
                    store=self.label, region=region).inc()
            attempt += 1
            try:
                result = yield from make_attempt(token)
            except TRANSIENT_ERRORS as exc:
                breaker.record_failure()
                self._retries.labels(store=self.label, op=op,
                                     error=type(exc).__name__).inc()
                if attempt >= self.policy.max_attempts:
                    self._exhausted.labels(store=self.label, op=op).inc()
                    raise StorageUnavailable(
                        f"{self.label}@{region}: {op} failed after "
                        f"{attempt} attempts: {exc}", cause=exc) from exc
                delay = self.policy.backoff_ms(attempt, self._jitter_u())
                self._backoff.labels(store=self.label).observe(delay)
                yield self.env.timeout(delay)
                continue
            breaker.record_success()
            return result


class RetryingKeyValueStore:
    """The system store behind the retry engine.

    Every read and mutator of :class:`~repro.cloud.kvstore.KeyValueStore`
    is wrapped; mutators additionally carry an idempotence token so an
    ambiguous failure replays instead of re-applying.  Everything else
    (``table``/``tables``/``create_table``/stream wiring/raw test access)
    passes through to the inner store untouched.
    """

    def __init__(self, inner, env, rng_factory, policy: RetryPolicy,
                 breaker_threshold: int, breaker_cooldown_ms: float,
                 metrics, on_breaker_transition=None,
                 label: str = "system",
                 breaker_probe_interval_ms: float = 0.0) -> None:
        self._inner = inner
        self._retrier = _Retrier(label, env, rng_factory, policy,
                                 breaker_threshold, breaker_cooldown_ms,
                                 metrics, on_breaker_transition,
                                 breaker_probe_interval_ms)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def retrier(self) -> _Retrier:
        return self._retrier

    # ------------------------------------------------------------ reads
    def get_item(self, ctx, table_name, key, **kwargs):
        return self._retrier.run(
            "get_item", self._inner.region,
            lambda _token: self._inner.get_item(ctx, table_name, key, **kwargs),
            mutating=False)

    def scan(self, ctx, table_name, **kwargs):
        return self._retrier.run(
            "scan", self._inner.region,
            lambda _token: self._inner.scan(ctx, table_name, **kwargs),
            mutating=False)

    # ------------------------------------------------------------ mutators
    def put_item(self, ctx, table_name, key, attributes, **kwargs):
        return self._retrier.run(
            "put_item", self._inner.region,
            lambda token: self._inner.put_item(
                ctx, table_name, key, attributes, token=token, **kwargs),
            mutating=True)

    def update_item(self, ctx, table_name, key, updates, **kwargs):
        return self._retrier.run(
            "update_item", self._inner.region,
            lambda token: self._inner.update_item(
                ctx, table_name, key, updates, token=token, **kwargs),
            mutating=True)

    def delete_item(self, ctx, table_name, key, **kwargs):
        return self._retrier.run(
            "delete_item", self._inner.region,
            lambda token: self._inner.delete_item(
                ctx, table_name, key, token=token, **kwargs),
            mutating=True)

    def batch_put(self, ctx, table_name, items):
        return self._retrier.run(
            "batch_put", self._inner.region,
            lambda token: self._inner.batch_put(
                ctx, table_name, items, token=token),
            mutating=True)

    def transact_update(self, ctx, ops):
        return self._retrier.run(
            "transact_update", self._inner.region,
            lambda token: self._inner.transact_update(ctx, ops, token=token),
            mutating=True)


class RetryingUserStore:
    """The user store behind the retry engine.

    Backend operations are whole-image reads/writes — idempotent by
    construction — so a failed attempt re-runs bodily (no tokens needed:
    replaying ``write_node`` writes the same image).  Each *region* gets
    its own circuit breaker, since regions fail independently.
    Inspection hooks (``peek``/``wipe_region``/``fault_points``), the
    ``kind``/capability flags and sizing helpers pass through.
    """

    def __init__(self, inner, env, rng_factory, policy: RetryPolicy,
                 breaker_threshold: int, breaker_cooldown_ms: float,
                 metrics, on_breaker_transition=None,
                 label: str = "user",
                 breaker_probe_interval_ms: float = 0.0) -> None:
        self._inner = inner
        self._retrier = _Retrier(label, env, rng_factory, policy,
                                 breaker_threshold, breaker_cooldown_ms,
                                 metrics, on_breaker_transition,
                                 breaker_probe_interval_ms)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def inner(self):
        return self._inner

    @property
    def retrier(self) -> _Retrier:
        return self._retrier

    @property
    def kind(self) -> str:
        return self._inner.kind

    @property
    def supports_ttl(self) -> bool:
        return self._inner.supports_ttl

    # ------------------------------------------------------------ ops
    def write_node(self, ctx, region, path, image):
        return self._retrier.run(
            "write_node", region,
            lambda _token: self._inner.write_node(ctx, region, path, image),
            mutating=False)

    def read_node(self, ctx, region, path):
        return self._retrier.run(
            "read_node", region,
            lambda _token: self._inner.read_node(ctx, region, path),
            mutating=False)

    def delete_node(self, ctx, region, path):
        return self._retrier.run(
            "delete_node", region,
            lambda _token: self._inner.delete_node(ctx, region, path),
            mutating=False)

    def update_metadata(self, ctx, region, path, meta_image):
        return self._retrier.run(
            "update_metadata", region,
            lambda _token: self._inner.update_metadata(
                ctx, region, path, meta_image),
            mutating=False)
