"""Fuzzy snapshots and txid-bounded log compaction (ZooKeeper's
durability design — Hunt et al., ATC'10 — transplanted onto the
FaaSKeeper storage layout).

Without this module the deployment's durability story ends at the system
store: node *metadata* is durable, but the node data only exists inside
queue messages in flight and in the per-region user stores — a region
whose replica is lost can only be rebuilt from nothing.  With
``commit_log_enabled`` three pieces close that gap:

* **commit log** — the leader appends every committed transaction's
  replication writes (full node images, parent metadata updates,
  deletions) to a txid-keyed system table *before* replicating or
  publishing, in the same storage transaction as a per-shard ``log-head``
  watermark.  Within a shard the FIFO queue delivers txids in order, so
  every committed txid at or below a shard's head provably has a log
  record — the invariant the snapshot floor rests on.

* **fuzzy snapshot** — :meth:`SnapshotManager.take_snapshot` folds the
  log suffix above the previous floor into a per-path checkpoint table,
  concurrent with ongoing commits (the fold never blocks the write
  pipeline and bills reads/writes proportional to the *suffix*, not the
  tree).  The new floor — ``min`` over shards of the log heads — is
  published only after the fold completes; a crash mid-fold leaves some
  checkpoint items ahead of the published floor, which is exactly
  ZooKeeper's fuzzy-snapshot state: replaying the suffix from the floor
  is idempotent because every fold/replay write is guarded by the item's
  landed txid.

* **compaction** — :meth:`SnapshotManager.compact` deletes log records
  at or below ``min(snapshot floor, min over regions of replicated_tx)``.
  The watermark clamp keeps the suffix a *lagging* region still needs:
  a region that crashed mid-drain replays ``(replicated_tx, head]``
  without reloading the snapshot.

Cold start (:meth:`SnapshotManager.recover_region`) = load the snapshot
table into the region's user store + replay the log suffix above the
floor; recovery time is bounded by snapshot size + suffix length, never
by total log length (``bench_recovery.py`` measures exactly this).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cloud.context import OpContext
from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, Set, item_exists
from .distributor import write_user_image
from .layout import (
    LOG_HEAD_KEY,
    SNAPSHOT_META_KEY,
    SNAPSHOT_SYS_PREFIX,
    SYSTEM_LOG,
    SYSTEM_NODES,
    SYSTEM_SESSIONS,
    SYSTEM_SNAPSHOT,
    SYSTEM_STATE,
    log_key,
    new_system_node,
    replicated_key,
)

__all__ = ["SnapshotManager"]


def _cseq_from_children(children: List[str]) -> int:
    """Best-effort sequential-counter recovery: user images do not carry
    ``cseq``, but sequential children end in the ``%010d`` suffix the
    follower stamps — the counter must stay above every existing one."""
    cseq = 0
    for name in children:
        if len(name) >= 10 and name[-10:].isdigit():
            cseq = max(cseq, int(name[-10:]) + 1)
    return cseq


class _RecoveryCtx:
    """Minimal function-context stand-in so recovery can reuse
    :func:`~repro.faaskeeper.distributor.write_user_image` (the exact
    apply path the leader and distributor use — byte-identical images)."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: OpContext) -> None:
        self.ctx = ctx


class SnapshotManager:
    """Commit log, fuzzy snapshots, compaction and recovery for one
    deployment (``service.snapshots``; None unless ``commit_log_enabled``).
    """

    def __init__(self, service) -> None:
        self.service = service
        registry = service.metrics
        self._appends = registry.counter(
            "fk_log_appends_total", "Commit-log records appended")
        self._snapshots = registry.counter(
            "fk_snapshots_taken_total", "Fuzzy snapshots completed")
        self._folded = registry.counter(
            "fk_snapshot_records_folded_total",
            "Log records folded into the checkpoint table")
        self._compacted = registry.counter(
            "fk_log_records_compacted_total", "Log records truncated")
        self._floor = registry.gauge(
            "fk_snapshot_floor_txid", "Published snapshot floor")

    # Pre-metrics attribute API, now read-only over the registry.
    @property
    def log_appends(self) -> int:
        return int(self._appends.value)

    @property
    def snapshots_taken(self) -> int:
        return int(self._snapshots.value)

    @property
    def records_folded(self) -> int:
        return int(self._folded.value)

    @property
    def log_records_compacted(self) -> int:
        return int(self._compacted.value)

    @property
    def last_floor(self) -> int:
        return int(self._floor.value)

    # ------------------------------------------------------------ log append
    def append_log(self, fctx, txid: int, shard: int,
                   writes: List[Tuple[str, Optional[Dict[str, Any]], bool, str]],
                   session: Optional[str] = None) -> Generator:
        """Leader-side durable append, called after commit verification and
        before replication/publish.  One storage transaction writes the log
        record and advances the shard's head watermark; a redelivered
        message (head already at or past ``txid``) is a no-op.

        With the outbox enabled, the transaction additionally carries the
        committed transaction's event record (the transactional-outbox
        pattern): the state change, its log record and its outgoing event
        commit — or no-op on redelivery — together.
        """
        env = fctx.env
        t0 = env.now
        record = {
            "txid": txid,
            "shard": shard,
            "writes": [[path, image, is_parent, op]
                       for path, image, is_parent, op in writes],
        }
        head_attr = f"s{shard}"
        ops = [
            (SYSTEM_LOG, log_key(txid),
             [Set(k, v) for k, v in record.items()], None),
            (SYSTEM_STATE, LOG_HEAD_KEY,
             [Set(head_attr, txid)],
             Attr(head_attr).not_exists() | (Attr(head_attr) <= txid)),
        ]
        outbox = self.service.outbox
        outbox_ops = [] if outbox is None else outbox.append_ops(
            env.now, txid, shard, session, writes)
        try:
            yield from self.service.system_store.transact_update(
                fctx.ctx, ops + outbox_ops)
            self._appends.inc()
            if outbox_ops:
                outbox.metrics["appended"].inc()
        except ConditionFailed:
            # Head beyond txid: this shard already logged the record (and
            # its outbox event) on an earlier delivery of the same message.
            pass
        fctx.record("log_append", env.now - t0)
        return None

    # ------------------------------------------------------------ floors
    def _log_heads(self, ctx: OpContext) -> Generator[Any, Any, Dict[str, int]]:
        heads = yield from self.service.system_store.get_item(
            ctx, SYSTEM_STATE, LOG_HEAD_KEY)
        return heads or {}

    def _floor_from_heads(self, heads: Dict[str, int]) -> int:
        """Snapshot floor: ``min`` over all shards of the logged watermark.
        A shard that never logged pins the floor at 0 — conservative (the
        snapshot simply cannot advance past traffic that may still be in
        that shard's pipeline), never unsafe."""
        return min(int(heads.get(f"s{i}", 0))
                   for i in range(self.service.config.leader_shards))

    def _meta(self, ctx: OpContext) -> Generator[Any, Any, Dict[str, int]]:
        meta = yield from self.service.system_store.get_item(
            ctx, SYSTEM_STATE, SNAPSHOT_META_KEY)
        return meta or {"txid": 0, "seq": 0, "compacted": 0}

    # ------------------------------------------------------------ snapshot
    def take_snapshot(self, ctx: OpContext) -> Generator[Any, Any, int]:
        """Fold the log suffix above the previous floor into the snapshot
        table; returns the new floor (the previous one when nothing new is
        fully logged).  Runs concurrent with commits — fuzzy: items folded
        before a crash stay ahead of the published floor and the guarded
        (per-item landed-txid) writes make the re-fold idempotent."""
        store = self.service.system_store
        heads = yield from self._log_heads(ctx)
        floor = self._floor_from_heads(heads)
        meta = yield from self._meta(ctx)
        prev = int(meta.get("txid", 0))
        if floor <= prev:
            return prev
        for txid in range(prev + 1, floor + 1):
            record = yield from store.get_item(ctx, SYSTEM_LOG, log_key(txid))
            if record is None:
                continue  # txid burned by a rejected write: no commit
            yield from self._fold_record(ctx, record)
            self._folded.inc()
        yield from self._checkpoint_system(ctx, floor)
        yield from store.put_item(ctx, SYSTEM_STATE, SNAPSHOT_META_KEY, {
            "txid": floor,
            "seq": int(meta.get("seq", 0)) + 1,
            "compacted": int(meta.get("compacted", 0)),
        })
        self._snapshots.inc()
        self._floor.set(floor)
        return floor

    def _watch_checkpoints(self) -> List[Tuple[str, str]]:
        """(table, checkpoint key) per watch shard.  Shard 0 keeps the
        flat-plane key ``sys:watches`` so old snapshots stay readable;
        extra shards checkpoint under ``sys:watches:<i>``."""
        out: List[Tuple[str, str]] = []
        for i, table in enumerate(self.service.watch_registry.tables):
            key = SNAPSHOT_SYS_PREFIX + ("watches" if i == 0
                                         else f"watches:{i}")
            out.append((table, key))
        return out

    def _checkpoint_system(self, ctx: OpContext, floor: int) -> Generator:
        """Checkpoint the coordination tables (watch instances, session
        records) alongside the node fold, under ``sys:``-prefixed keys that
        can never collide with znode paths.  Node *metadata* needs no extra
        checkpoint — it is rebuilt from the folded images — but watches and
        sessions exist only in their own tables, so without this a wiped
        system region would lose every registered watch and ephemeral
        owner.  Fuzzy like the node fold: entries registered after the
        published floor are covered by the next snapshot."""
        store = self.service.system_store
        for table, key in (*self._watch_checkpoints(),
                           (SYSTEM_SESSIONS, SNAPSHOT_SYS_PREFIX + "sessions")):
            items = yield from store.scan(ctx, table)
            yield from store.put_item(
                ctx, SYSTEM_SNAPSHOT, key,
                {"txid": floor, "items": {k: dict(v) for k, v in items.items()}})
        return None

    def _fold_record(self, ctx: OpContext, record: Dict[str, Any]) -> Generator:
        """Apply one log record to the checkpoint, newest-txid-wins.  Every
        write is guarded by the checkpoint item's landed txid, so re-folding
        after a crashed (fuzzy) snapshot never regresses an item."""
        store = self.service.system_store
        txid = record["txid"]
        newer = Attr("txid").not_exists() | (Attr("txid") < txid)
        for path, image, is_parent, _op in record["writes"]:
            if image is None:  # pragma: no cover - defensive
                continue
            if image.get("deleted"):
                try:
                    yield from store.delete_item(
                        ctx, SYSTEM_SNAPSHOT, path, condition=newer)
                except ConditionFailed:
                    pass  # a later record already re-created the path
                continue
            folded = {k: v for k, v in image.items() if k != "meta_only"}
            if is_parent:
                # Parent updates carry metadata only; preserve the data the
                # checkpoint already holds (read-update-write, the same
                # shape as the user store's update_metadata).
                existing = yield from store.get_item(ctx, SYSTEM_SNAPSHOT, path)
                folded["data"] = ((existing or {}).get("image") or {}).get(
                    "data", b"")
            else:
                folded["modified_tx"] = txid
                if _op == "create":
                    folded["created_tx"] = txid
            try:
                yield from store.put_item(
                    ctx, SYSTEM_SNAPSHOT, path,
                    {"txid": txid, "image": folded}, condition=newer)
            except ConditionFailed:
                pass  # checkpoint item already past this txid (re-fold)
        return None

    # ------------------------------------------------------------ compaction
    def compact(self, ctx: OpContext) -> Generator[Any, Any, int]:
        """Truncate the log up to ``min(snapshot floor, slowest region's
        replicated_tx)``; returns the number of records removed.  The
        watermark clamp is load-bearing: a lagging region recovers by
        replaying its suffix ``(replicated_tx, head]`` — compaction must
        never eat records that suffix still needs."""
        if not self.service.config.compaction_enabled:
            return 0
        store = self.service.system_store
        meta = yield from self._meta(ctx)
        cut = int(meta.get("txid", 0))
        if self.service.distribution is not None:
            for region in self.service.config.regions:
                mark = yield from store.get_item(
                    ctx, SYSTEM_STATE, replicated_key(region))
                cut = min(cut, int((mark or {}).get("txid", 0)))
        start = int(meta.get("compacted", 0))
        if cut <= start:
            return 0
        removed = 0
        for txid in range(start + 1, cut + 1):
            try:
                yield from store.delete_item(ctx, SYSTEM_LOG, log_key(txid),
                                             condition=item_exists())
                removed += 1
            except ConditionFailed:
                continue  # burned txid: no record was ever written
        try:
            yield from store.update_item(
                ctx, SYSTEM_STATE, SNAPSHOT_META_KEY,
                updates=[Set("compacted", cut)],
                condition=Attr("compacted").not_exists()
                | (Attr("compacted") < cut),
                payload_kb=0.032)
        except ConditionFailed:  # pragma: no cover - concurrent compactor
            pass
        self._compacted.inc(removed)
        return removed

    # ------------------------------------------------------------ recovery
    def recover_region(self, ctx: OpContext, region: str,
                       cold: bool = False) -> Generator[Any, Any, Dict[str, int]]:
        """Rebuild (``cold=True``: the replica is gone — load the snapshot,
        then replay the suffix above the floor) or catch up (``cold=False``:
        the store survived — replay the suffix above the region's
        ``replicated_tx``) one region's user store from durable state.

        Replay applies records in txid order through the exact
        ``write_user_image`` path the write pipelines use, so a recovered
        replica is byte-identical to one that never crashed; re-applying
        records the store already holds converges for the same reason the
        distributor's redeliveries do (per-path last-writer-wins in commit
        order).  Works for distributor regions and for the inline
        (leader-replicated) pipeline alike.
        """
        store = self.service.system_store
        fctx = _RecoveryCtx(ctx)
        meta = yield from self._meta(ctx)
        floor = int(meta.get("txid", 0))
        heads = yield from self._log_heads(ctx)
        top = max([int(heads.get(f"s{i}", 0))
                   for i in range(self.service.config.leader_shards)] + [0])
        loaded = 0
        if cold:
            start = floor
            checkpoint = yield from store.scan(ctx, SYSTEM_SNAPSHOT)
            for path in sorted(checkpoint):
                if path.startswith(SNAPSHOT_SYS_PREFIX):
                    continue  # system-table checkpoints, not node images
                image = dict(checkpoint[path]["image"])
                image.setdefault("epoch", [])
                yield from self.service.user_store.write_node(
                    ctx, region, path, image)
                loaded += 1
        else:
            start = int(meta.get("compacted", 0))
            if self.service.distribution is not None:
                mark = yield from store.get_item(
                    ctx, SYSTEM_STATE, replicated_key(region))
                start = max(start, int((mark or {}).get("txid", 0)))
        replayed_txids: List[int] = []
        for txid in range(start + 1, top + 1):
            record = yield from store.get_item(ctx, SYSTEM_LOG, log_key(txid))
            if record is None:
                continue
            for path, image, is_parent, op in record["writes"]:
                yield from write_user_image(
                    self.service.user_store, fctx, region, path, image,
                    epoch=[], txid=txid, op=op, is_parent=is_parent)
            replayed_txids.append(txid)
        if self.service.distribution is not None and replayed_txids:
            newest = replayed_txids[-1]
            try:
                yield from store.update_item(
                    ctx, SYSTEM_STATE, replicated_key(region),
                    updates=[Set("txid", newest)],
                    condition=Attr("txid").not_exists()
                    | (Attr("txid") < newest),
                    payload_kb=0.032)
            except ConditionFailed:  # pragma: no cover - already ahead
                pass
            self.service.distribution.visibility.mark(region, replayed_txids)
        return {"loaded": loaded, "replayed": len(replayed_txids),
                "floor": floor, "start": start, "top": top}

    def recover_system(self, ctx: OpContext) -> Generator[Any, Any, Dict[str, int]]:
        """Rebuild the coordination state itself — the system *node* table
        plus watch instances and session records — after the system region
        lost them (``recover_region`` only rebuilds user-store replicas).

        Node metadata is reprojected from durable images: the checkpoint
        table's folded images plus an **in-memory** replay of the log
        suffix above the snapshot floor, newest-txid-wins with the same
        parent/delete semantics as :meth:`_fold_record`.  (The replay is
        deliberately not a fresh ``take_snapshot``: that would re-scan the
        watch/session tables — empty right now — and clobber the very
        ``sys:`` checkpoints this recovery needs.)  Watches and sessions
        come back verbatim from those checkpoints; being fuzzy, entries
        registered after the last snapshot are lost with the region and
        must be re-registered by their clients — the same contract as a
        ZooKeeper ensemble restoring from its newest snapshot.

        Recovered nodes get ``applied_tx`` = the txid of their newest
        durable image (those writes are provably replicated or in the log)
        and an empty pending-transaction list; delete tombstones are not
        resurrected — dedup of pre-wipe redeliveries rides ``applied_tx``.
        """
        store = self.service.system_store
        meta = yield from self._meta(ctx)
        floor = int(meta.get("txid", 0))
        heads = yield from self._log_heads(ctx)
        top = max([int(heads.get(f"s{i}", 0))
                   for i in range(self.service.config.leader_shards)] + [0])
        checkpoint = yield from store.scan(ctx, SYSTEM_SNAPSHOT)

        images: Dict[str, Tuple[int, Dict[str, Any]]] = {}
        for key, item in checkpoint.items():
            if key.startswith(SNAPSHOT_SYS_PREFIX):
                continue
            images[key] = (int(item["txid"]), dict(item["image"]))
        replayed = 0
        for txid in range(floor + 1, top + 1):
            record = yield from store.get_item(ctx, SYSTEM_LOG, log_key(txid))
            if record is None:
                continue  # burned txid
            replayed += 1
            for path, image, is_parent, op in record["writes"]:
                if image is None:  # pragma: no cover - defensive
                    continue
                if image.get("deleted"):
                    images.pop(path, None)
                    continue
                folded = {k: v for k, v in image.items() if k != "meta_only"}
                if is_parent:
                    prev = images.get(path)
                    folded["data"] = prev[1].get("data", b"") if prev else b""
                else:
                    folded["modified_tx"] = txid
                    if op == "create":
                        folded["created_tx"] = txid
                images[path] = (txid, folded)

        restored = 0
        for path in sorted(images):
            txid, image = images[path]
            children = list(image.get("children", []))
            node = new_system_node(
                len(image.get("data", b"") or b""),
                int(image.get("created_tx", txid)),
                ephemeral_owner=image.get("ephemeral_owner"))
            node.update({
                "version": int(image.get("version", 0)),
                "cversion": int(image.get("cversion", 0)),
                "modified_tx": int(image.get("modified_tx", txid)),
                "children": children,
                "cseq": _cseq_from_children(children),
                "applied_tx": txid,
            })
            yield from store.put_item(ctx, SYSTEM_NODES, path, node)
            restored += 1
        if "/" not in images:
            # Nothing was ever logged for the root (fresh tree): recreate
            # it so the pipeline finds its parent again.
            yield from store.put_item(ctx, SYSTEM_NODES, "/",
                                      new_system_node(0, 0))
            restored += 1

        watches = sessions = 0
        for table, key, counter in (
                *[(t, k, "w") for t, k in self._watch_checkpoints()],
                (SYSTEM_SESSIONS, SNAPSHOT_SYS_PREFIX + "sessions", "s")):
            saved = checkpoint.get(key) or {}
            for item_key in sorted(saved.get("items", {})):
                yield from store.put_item(
                    ctx, table, item_key, dict(saved["items"][item_key]))
                if counter == "w":
                    watches += 1
                else:
                    sessions += 1
        return {"nodes": restored, "watches": watches, "sessions": sessions,
                "replayed": replayed, "floor": floor, "top": top}

    # ------------------------------------------------------------ scheduled fn
    def handler(self, fctx, payload: Any) -> Generator:
        """The ``fk-snapshot`` scheduled function: one fuzzy snapshot + one
        compaction sweep per firing (suspended at scale-to-zero, like the
        heartbeat and the GC sweeper)."""
        floor = yield from self.take_snapshot(fctx.ctx)
        removed = yield from self.compact(fctx.ctx)
        return {"floor": floor, "compacted": removed}

    # ------------------------------------------------------------ accounting
    def stats(self) -> Dict[str, float]:
        return {
            "log_appends": float(self.log_appends),
            "snapshots_taken": float(self.snapshots_taken),
            "records_folded": float(self.records_folded),
            "log_records_compacted": float(self.log_records_compacted),
            "last_floor": float(self.last_floor),
        }
