"""Deployment configuration for a FaaSKeeper instance."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["FaaSKeeperConfig", "UserStoreKind"]


class UserStoreKind:
    """User-data storage backends evaluated in the paper (Figures 8/9/11),
    plus the in-process ``mem`` reference backend.  ``user_store`` accepts
    either a bare kind or a registry URI (``"hybrid://?threshold_kb=8"``);
    see :mod:`repro.faaskeeper.userstore`."""

    S3 = "s3"              # object store only (standard configuration)
    DYNAMODB = "dynamodb"  # key-value only
    HYBRID = "hybrid"      # <=threshold in key-value, larger data in object
    REDIS = "redis"        # user-managed in-memory cache
    MEM = "mem"            # in-process reference backend (zero billing)

    ALL = (S3, DYNAMODB, HYBRID, REDIS, MEM)
    #: Alternate URI schemes resolving to a canonical kind.
    ALIASES = {"dynamo": DYNAMODB}


@dataclass
class FaaSKeeperConfig:
    """Knobs of one deployment, defaulting to the paper's evaluation setup:
    us-east-1, 2048 MB functions, S3 user store."""

    user_store: str = UserStoreKind.S3
    hybrid_threshold_kb: float = 4.0      # Section 4.2: nodes <=4 kB go to KV
    function_memory_mb: int = 2048
    arch: str = "x86"                     # "x86" | "arm"
    cpu_alloc: float = 1.0                # GCP: vCPU fraction
    regions: List[str] = field(default_factory=lambda: ["us-east-1"])
    heartbeat_period_ms: float = 60_000.0  # highest AWS cron frequency (5.3.3)
    gc_period_ms: float = 300_000.0        # garbage-collection sweep (extension)
    #: Session-plane shards: partitions the heartbeat/eviction sweep (each
    #: of N scheduled sweep functions scans one hash slice of the session
    #: table, ephemeral-first ordering preserved per shard) and the watch
    #: registry (N path-hashed watch tables, the guarded-removal protocol
    #: carried across the partition boundary).  1 (the default) reproduces
    #: the flat plane — one sweep over one session table, one watch table —
    #: bit-for-bit.
    session_plane_shards: int = 1
    session_timeout_ms: float = 10_000.0
    lock_max_hold_ms: float = 2_000.0
    max_node_size_kb: float = 250.0       # queue payload bound (Section 4.4)
    leader_max_receive: Optional[int] = None   # retry leader batches forever
    follower_max_receive: Optional[int] = 5
    follower_batch: int = 10
    leader_batch: int = 10
    #: Number of leader shards: the znode tree is partitioned by top-level
    #: path component, with one FIFO queue + leader function per shard.
    #: 1 reproduces the paper's single-leader pipeline (Algorithm 2) exactly.
    leader_shards: int = 1
    #: Coalesce superseded user-store writes inside one leader delivery
    #: batch (bounded by the SQS ``fifo_batch_limit`` calibration).
    #: None = auto: enabled for sharded deployments, off for the paper's
    #: single-leader configuration so its published latencies stay intact.
    leader_coalesce: Optional[bool] = None
    #: Asynchronous distributor stage: after commit verification the leader
    #: appends a distribution record to per-region FIFO distributor queues
    #: instead of replicating inline; distributor instances own the
    #: user-store fan-out, the watch query/consume/fan-out, and the
    #: per-region ``replicated_tx`` visibility watermark.  False (the
    #: default) keeps the paper's inline pipeline bit-for-bit intact.
    distributor_enabled: bool = False
    #: Maximum distribution records one distributor invocation drains
    #: (capped by the SQS FIFO batch limit of the cloud profile).
    distributor_batch: int = 10
    #: When the client's write acknowledgement is sent:
    #: ``"on_replicate"`` (default) — after the write is visible in every
    #: region's user store (the paper's semantics); ``"on_commit"`` — right
    #: after commit verification, before distribution (requires the
    #: distributor; read-your-writes then rides the visibility watermark).
    ack_policy: str = "on_replicate"
    #: Parallelize the leader's per-affected-path watch query/consume round
    #: trips in step ➍ (node and parent are independent system-store
    #: items).  None = auto: on for distributor deployments, off everywhere
    #: else — including sharded ones — so every distributor-off
    #: configuration (the PR1 pipeline among them) keeps its pre-existing
    #: latency fingerprint bit-for-bit.
    watch_parallel: Optional[bool] = None
    #: Durable commit log (the substrate of snapshots, compaction and
    #: cold-start recovery): when enabled the leader appends every committed
    #: transaction's replication writes to a txid-keyed system-store log —
    #: one transactional write per commit, paired with a per-shard log-head
    #: watermark — before replicating or publishing.  False (the default)
    #: keeps every pre-existing pipeline bit-for-bit intact.
    commit_log_enabled: bool = False
    #: Period of the scheduled snapshot function (fuzzy snapshot + log
    #: compaction, like the GC sweep).  0 (the default) = manual snapshots
    #: only, via ``service.snapshots``.  Requires ``commit_log_enabled``.
    snapshot_auto_ms: float = 0.0
    #: Let :meth:`SnapshotManager.compact` truncate the log below the
    #: snapshot floor (clamped to the slowest region's ``replicated_tx``
    #: watermark).  Disable to keep the full log, e.g. for audits.
    compaction_enabled: bool = True
    #: Async free-function invocation retries (the watch fan-out): AWS
    #: retries failed async invocations up to twice.  0 (the default) keeps
    #: the paper's single-attempt behaviour — and its fingerprints — exact;
    #: the chaos suite runs with 2 so a crashed fan-out re-delivers
    #: (duplicate deliveries are deduplicated client-side by instance id).
    free_fn_retries: int = 0
    #: Transactional-outbox event streaming: when enabled the leader
    #: appends one event record per committed transaction to a system
    #: outbox table *in the same conditional ``transact_update``* as the
    #: commit log (so a committed change and its outgoing event are
    #: atomic), and a publisher function drains the outbox to the
    #: configured sinks with at-least-once delivery and per-path txid
    #: order.  ``None`` (the default) means off — unless the
    #: ``FK_FORCE_OUTBOX=1`` environment override is set (the CI matrix
    #: leg that runs the whole suite with the outbox on); pass an explicit
    #: ``False`` to pin it off regardless.  Requires
    #: ``commit_log_enabled`` (the outbox rides the log's transaction);
    #: the env override enables the commit log too.
    outbox_enabled: Optional[bool] = None
    #: Event sinks the publisher fans out to: specs understood by
    #: :func:`repro.faaskeeper.outbox.make_sink` (``"inproc"``,
    #: ``"file:<path>"``, ``"webhook:<url>"``, a ``(scheme, kwargs)``
    #: pair, or a ready :class:`~repro.faaskeeper.outbox.Sink` instance).
    outbox_sinks: List[Any] = field(default_factory=lambda: ["inproc"])
    #: Maximum outbox records one publisher pass drains.
    outbox_batch: int = 25
    #: Period of the scheduled publisher function (suspended at
    #: scale-to-zero, like the heartbeat).  0 = manual drains only, via
    #: ``service.outbox.drain()``.
    outbox_publish_ms: float = 1_000.0
    #: Per-sink delivery attempts before an event is dead-lettered.
    outbox_max_attempts: int = 3
    #: Base of the publisher's exponential retry backoff (ms): attempt
    #: ``n`` waits ``outbox_retry_base_ms * 2**(n-1)``.
    outbox_retry_base_ms: float = 50.0
    #: Client-side read cache: maximum cached node images per session.
    #: 0 (the default) disables the cache entirely, so the paper's read
    #: pipeline — every get_data/get_children is a user-store round trip —
    #: stays bit-for-bit intact.  A cached entry is valid exactly until the
    #: system watch registered alongside it fires (one-shot watches make
    #: client caching sound, as in ZooKeeper).
    client_cache_entries: int = 0
    #: Byte budget of the client cache in kB (0 = bounded by entries only).
    client_cache_kb: float = 0.0
    #: Retry every storage round trip (system and user store) through the
    #: RetryingStore wrapper: exponential backoff + jitter on transient
    #: errors (throttling, timeouts, connection resets), idempotence-token
    #: replay for ambiguous failures, a per-region circuit breaker.  On by
    #: default — with no faults the wrapper adds no latency and draws no
    #: RNG, so default fingerprints stay bit-for-bit.
    storage_retry_enabled: bool = True
    #: Maximum attempts per storage op (first try included).
    storage_retry_attempts: int = 5
    #: Base of the exponential backoff (ms): retry ``n`` waits about
    #: ``base * 2**(n-1)``, jittered, capped at ``storage_retry_cap_ms``.
    storage_retry_base_ms: float = 10.0
    #: Ceiling of one backoff wait (ms).
    storage_retry_cap_ms: float = 2_000.0
    #: Jitter fraction: each wait is scaled by a uniform factor in
    #: ``[1 - j/2, 1 + j/2]`` (0 = deterministic backoff).
    storage_retry_jitter: float = 0.5
    #: Consecutive transient failures that trip a store/region's circuit
    #: breaker from CLOSED to OPEN (requests shed immediately).
    storage_breaker_threshold: int = 8
    #: How long (virtual ms) an OPEN breaker sheds before letting one
    #: HALF_OPEN probe through.
    storage_breaker_cooldown_ms: float = 10_000.0
    #: Minimum spacing (virtual ms) between HALF_OPEN probes while a
    #: breaker heals: under a sustained brown-out every cooldown expiry
    #: would otherwise admit a probe that fails and re-opens the breaker,
    #: hammering the sick store once per cooldown from every caller.
    #: 0 (the default) keeps the legacy one-probe-per-cooldown behaviour.
    storage_breaker_probe_interval_ms: float = 0.0
    #: Seeded transient-fault injection on every storage service the
    #: deployment owns (throttle / timeout / connection reset / partial
    #: write).  ``None`` (the default) means off — unless the
    #: ``FK_STORAGE_FAULTS=1`` environment override is set (the CI leg
    #: that runs the whole tier-1 suite under faults); pass an explicit
    #: ``False`` to pin it off regardless — the escape hatch the
    #: bit-for-bit fingerprint gates use.
    storage_faults: Optional[bool] = None
    #: Per-operation fault probability when the schedule is armed.
    storage_fault_rate: float = 0.05
    #: Virtual time an injected-timeout request hangs before dying (ms).
    storage_fault_timeout_ms: float = 250.0
    #: TTL-native ephemeral cleanup: session records carry a conditional
    #: TTL refreshed by the heartbeat; a dead session's record *expires in
    #: the store* and the expiry stream record drives the eviction that
    #: deletes its ephemerals — instead of the heartbeat's eviction sweep.
    #: Requires a TTL-capable backend fleet (``supports_ttl`` on the
    #: registry, e.g. ``dynamodb``/``hybrid``/``mem``); on fleets without
    #: the capability the flag degrades to the sweep unchanged.
    ephemeral_ttl_enabled: bool = False
    #: Session-record TTL (ms).  0 = auto: one heartbeat period plus two
    #: session timeouts, so a live session is always refreshed in time.
    ephemeral_ttl_ms: float = 0.0

    def __post_init__(self) -> None:
        scheme = str(self.user_store).split("://", 1)[0]
        if scheme not in UserStoreKind.ALL and scheme not in UserStoreKind.ALIASES:
            # Third-party backends register under the `faaskeeper.backends`
            # entry-point group; consult the registry lazily (the import is
            # deferred — userstore imports this module at load time).
            from .userstore import is_registered_scheme
            if not is_registered_scheme(scheme):
                raise ValueError(f"unknown user store {self.user_store!r}")
        if not self.regions:
            raise ValueError("need at least one region")
        if self.arch not in ("x86", "arm"):
            raise ValueError(f"unknown arch {self.arch!r}")
        if self.leader_shards < 1:
            raise ValueError(f"leader_shards must be >= 1, got {self.leader_shards}")
        if self.session_plane_shards < 1:
            raise ValueError(
                f"session_plane_shards must be >= 1, "
                f"got {self.session_plane_shards}")
        if self.client_cache_entries < 0:
            raise ValueError(
                f"client_cache_entries must be >= 0, got {self.client_cache_entries}")
        if self.client_cache_kb < 0:
            raise ValueError(
                f"client_cache_kb must be >= 0, got {self.client_cache_kb}")
        if self.ack_policy not in ("on_replicate", "on_commit"):
            raise ValueError(f"unknown ack_policy {self.ack_policy!r}")
        if self.ack_policy == "on_commit" and not self.distributor_enabled:
            raise ValueError(
                "ack_policy='on_commit' requires distributor_enabled=True: "
                "without a distributor nothing replicates after the ack")
        if self.distributor_batch < 1:
            raise ValueError(
                f"distributor_batch must be >= 1, got {self.distributor_batch}")
        if self.snapshot_auto_ms < 0:
            raise ValueError(
                f"snapshot_auto_ms must be >= 0, got {self.snapshot_auto_ms}")
        if self.snapshot_auto_ms > 0 and not self.commit_log_enabled:
            raise ValueError(
                "snapshot_auto_ms > 0 requires commit_log_enabled=True: "
                "there is nothing to snapshot without a commit log")
        if self.free_fn_retries < 0:
            raise ValueError(
                f"free_fn_retries must be >= 0, got {self.free_fn_retries}")
        if self.outbox_enabled is None:
            # CI override: one matrix leg runs the whole tier-1 suite with
            # the outbox (and therefore the commit log) on.  Explicit
            # outbox_enabled=False pins a deployment off regardless — the
            # escape hatch the bit-for-bit fingerprint gates use.
            forced = os.environ.get("FK_FORCE_OUTBOX", "") == "1"
            self.outbox_enabled = forced
            if forced:
                self.commit_log_enabled = True
        if self.outbox_enabled and not self.commit_log_enabled:
            raise ValueError(
                "outbox_enabled=True requires commit_log_enabled=True: the "
                "outbox record rides the commit log's storage transaction")
        if self.outbox_batch < 1:
            raise ValueError(
                f"outbox_batch must be >= 1, got {self.outbox_batch}")
        if self.outbox_publish_ms < 0:
            raise ValueError(
                f"outbox_publish_ms must be >= 0, got {self.outbox_publish_ms}")
        if self.outbox_max_attempts < 1:
            raise ValueError(
                f"outbox_max_attempts must be >= 1, got {self.outbox_max_attempts}")
        if self.outbox_retry_base_ms < 0:
            raise ValueError(
                f"outbox_retry_base_ms must be >= 0, "
                f"got {self.outbox_retry_base_ms}")
        if self.outbox_enabled and not self.outbox_sinks:
            raise ValueError("outbox_enabled=True needs at least one sink")
        if self.storage_retry_attempts < 1:
            raise ValueError(
                f"storage_retry_attempts must be >= 1, "
                f"got {self.storage_retry_attempts}")
        if self.storage_retry_base_ms < 0 or self.storage_retry_cap_ms < 0:
            raise ValueError("storage retry backoff times must be >= 0")
        if not 0.0 <= self.storage_retry_jitter <= 1.0:
            raise ValueError(
                f"storage_retry_jitter must be in [0, 1], "
                f"got {self.storage_retry_jitter}")
        if self.storage_breaker_threshold < 1:
            raise ValueError(
                f"storage_breaker_threshold must be >= 1, "
                f"got {self.storage_breaker_threshold}")
        if self.storage_breaker_cooldown_ms < 0:
            raise ValueError(
                f"storage_breaker_cooldown_ms must be >= 0, "
                f"got {self.storage_breaker_cooldown_ms}")
        if self.storage_breaker_probe_interval_ms < 0:
            raise ValueError(
                f"storage_breaker_probe_interval_ms must be >= 0, "
                f"got {self.storage_breaker_probe_interval_ms}")
        if self.storage_faults is None:
            # CI override: one leg runs the whole tier-1 suite with a
            # seeded fault schedule armed (mirrors FK_FORCE_OUTBOX).
            self.storage_faults = os.environ.get("FK_STORAGE_FAULTS", "") == "1"
        if not 0.0 <= self.storage_fault_rate <= 1.0:
            raise ValueError(
                f"storage_fault_rate must be in [0, 1], "
                f"got {self.storage_fault_rate}")
        if self.storage_fault_timeout_ms < 0:
            raise ValueError(
                f"storage_fault_timeout_ms must be >= 0, "
                f"got {self.storage_fault_timeout_ms}")
        if self.ephemeral_ttl_ms < 0:
            raise ValueError(
                f"ephemeral_ttl_ms must be >= 0, got {self.ephemeral_ttl_ms}")

    @property
    def client_cache_enabled(self) -> bool:
        return self.client_cache_entries > 0

    @property
    def coalesce_enabled(self) -> bool:
        if self.leader_coalesce is None:
            return self.leader_shards > 1
        return self.leader_coalesce

    @property
    def watch_parallel_enabled(self) -> bool:
        if self.watch_parallel is None:
            return self.distributor_enabled
        return self.watch_parallel

    @property
    def primary_region(self) -> str:
        return self.regions[0]

    @property
    def effective_ephemeral_ttl_ms(self) -> float:
        """The session-record TTL: explicit, or auto (one heartbeat period
        plus two session timeouts — a live session always refreshes well
        before expiry, a dead one expires within about one sweep)."""
        if self.ephemeral_ttl_ms > 0:
            return self.ephemeral_ttl_ms
        return self.heartbeat_period_ms + 2.0 * self.session_timeout_ms
