"""Storage layout: system tables, user stores, node item schemas.

FaaSKeeper distinguishes **system storage** (key-value tables used by the
functions to coordinate: node index with locks and pending transactions,
sessions, watches, epoch counters) from **user storage** (read-optimized
replicas of node data, one per region) — Section 3.3.

System node item schema (table ``SYSTEM_NODES``, key = path)::

    {
      "exists":        bool,      # tombstones keep the txid index alive
      "data_len":      int,       # size of the node data (bytes)
      "version":       int,       # data version
      "cversion":      int,       # child-list version
      "created_tx":    int,
      "modified_tx":   int,
      "children":      [name...],
      "cseq":          int,       # sequential-node counter
      "ephemeral_owner": str|None,
      "transactions":  [txid...], # pending, in commit order (leader pops)
      "applied_tx":    int,       # leader's replication watermark (dedup)
      "lock":          {"ts": float},   # timed-lock attribute
    }

System items deliberately hold **metadata only** — the node data itself
travels inside the durable queue message to the leader and lands in user
storage.  This keeps every lock/commit operation size-independent (Table 3
shows 250 kB commits at ~8 ms) and keeps system-storage write costs at one
1 kB write unit per operation, as the paper's cost model assumes.

User node image (any backend)::

    {
      "path", "data", "version", "cversion", "created_tx", "modified_tx",
      "children", "ephemeral_owner",
      "epoch": [watch-event ids pending when this image was written],
    }
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional

__all__ = [
    "SYSTEM_NODES",
    "SYSTEM_STATE",
    "SYSTEM_SESSIONS",
    "SYSTEM_WATCHES",
    "SYSTEM_LOG",
    "SYSTEM_SNAPSHOT",
    "SYSTEM_OUTBOX",
    "USER_TABLE",
    "USER_BUCKET",
    "epoch_key",
    "replicated_key",
    "log_key",
    "LOG_HEAD_KEY",
    "SNAPSHOT_META_KEY",
    "OUTBOX_PUBLISHED_KEY",
    "OUTBOX_DEAD_LETTER_KEY",
    "SNAPSHOT_SYS_PREFIX",
    "new_system_node",
    "user_image_from_system",
    "top_component",
    "shard_of_path",
    "watch_shard_table",
    "watch_shard_of",
    "session_shard_of",
]

SYSTEM_NODES = "fk-system-nodes"
SYSTEM_STATE = "fk-system-state"
SYSTEM_SESSIONS = "fk-system-sessions"
SYSTEM_WATCHES = "fk-system-watches"
#: Durable commit log (``commit_log_enabled``): one item per committed
#: transaction, key = zero-padded txid, value = the replication writes.
SYSTEM_LOG = "fk-system-log"
#: Snapshot table (fuzzy checkpoint of the log): key = path, value =
#: the newest folded user image and the txid that produced it.
SYSTEM_SNAPSHOT = "fk-system-snapshot"
#: Transactional outbox (``outbox_enabled``): one event record per
#: committed transaction, key = zero-padded txid, written in the *same*
#: storage transaction as the commit-log append so a committed change and
#: its outgoing event are atomic (the transactional-outbox pattern).
SYSTEM_OUTBOX = "fk-system-outbox"
USER_TABLE = "fk-user-nodes"
USER_BUCKET = "fk-user-data"

#: System-state key of the per-shard log-head watermark item: attribute
#: ``s<shard>`` holds the newest txid that shard has appended to the log.
#: Updated in the same storage transaction as the log append, so every
#: committed txid at or below a shard's head has a log record.
LOG_HEAD_KEY = "log:head"
#: System-state key of the snapshot metadata item ``{"txid", "seq",
#: "compacted"}``: the snapshot floor (state at ``txid`` is fully folded
#: into the snapshot table), the fold generation, and the newest txid
#: compaction has truncated the log to.
SNAPSHOT_META_KEY = "snapshot:meta"
#: System-state key of the outbox publisher's durable progress item
#: ``{"txid"}``: every outbox record at or below it has been delivered to
#: (or dead-lettered at) every configured sink.  Advanced *after* sink
#: delivery, so a publisher crash re-delivers — at-least-once.
OUTBOX_PUBLISHED_KEY = "outbox:published"
#: System-state key of the durable dead-letter list ``{"items": [...]}``:
#: events a sink definitively rejected after the retry budget.
OUTBOX_DEAD_LETTER_KEY = "outbox:dead-letter"
#: Key prefix of system-table checkpoints inside ``SYSTEM_SNAPSHOT``
#: (watch instances, session records).  Znode paths always start with
#: ``/``, so the prefix can never collide with a folded node image.
SNAPSHOT_SYS_PREFIX = "sys:"


def log_key(txid: int) -> str:
    """Commit-log item key: zero-padded so lexicographic == numeric order."""
    return f"{txid:012d}"


def epoch_key(region: str) -> str:
    """System-state key of the region-wide epoch counter (Section 3.4)."""
    return f"epoch:{region}"


def replicated_key(region: str) -> str:
    """System-state key of a region's ``replicated_tx`` visibility
    watermark: the newest transaction id whose user-store write has landed
    in that region (maintained by the distributor stage)."""
    return f"replicated:{region}"


def top_component(path: str) -> str:
    """First component of an absolute znode path ('' for the root)."""
    end = path.find("/", 1)
    return path[1:] if end < 0 else path[1:end]


def shard_of_path(path: str, num_shards: int) -> int:
    """Leader shard owning ``path``: stable hash of the top-level component.

    The znode tree is partitioned by subtree: every node below ``/a`` maps
    to the same shard, so the two system items a create/delete touches
    (node + parent) live on one leader and commit through one FIFO queue.
    The only cross-shard parent is the root itself — replication of ``/``
    is ordered by the per-path pending-transaction gate in the leader.
    ``crc32`` keeps the mapping stable across processes and Python builds
    (the builtin ``hash`` is salted per interpreter run).
    """
    if num_shards <= 1:
        return 0
    comp = top_component(path)
    if not comp:
        return 0
    return zlib.crc32(comp.encode()) % num_shards


def watch_shard_table(shard: int) -> str:
    """Watch-table name of one session-plane shard.  Shard 0 keeps the
    flat-plane name ``fk-system-watches`` (the ``fk-leader`` precedent), so
    ``session_plane_shards=1`` deployments touch exactly today's table."""
    return SYSTEM_WATCHES if shard == 0 else f"{SYSTEM_WATCHES}-{shard}"


def watch_shard_of(path: str, num_shards: int) -> int:
    """Watch shard owning ``path``'s instances: stable hash of the *full*
    path (unlike :func:`shard_of_path` there is no parent/child co-location
    constraint — each path's watch item is touched independently), so
    instances spread evenly even when one subtree is watch-hot."""
    if num_shards <= 1:
        return 0
    return zlib.crc32(path.encode()) % num_shards


def session_shard_of(session_id: str, num_shards: int) -> int:
    """Session-plane shard owning ``session_id``'s heartbeat/eviction.
    Must agree with the key hash of the kvstore's segmented scan — both
    sides use ``crc32(key) % num_shards``."""
    if num_shards <= 1:
        return 0
    return zlib.crc32(session_id.encode()) % num_shards


def new_system_node(
    data_len: int,
    created_tx: int,
    ephemeral_owner: Optional[str] = None,
) -> Dict[str, Any]:
    """Fresh system-node attribute map (before the txid commit fields)."""
    return {
        "exists": True,
        "data_len": data_len,
        "version": 0,
        "cversion": 0,
        "created_tx": created_tx,
        "modified_tx": created_tx,
        "children": [],
        "cseq": 0,
        "ephemeral_owner": ephemeral_owner,
        "transactions": [],
        "applied_tx": 0,
    }


def user_image_from_system(path: str, node: Dict[str, Any],
                           epoch: List[str]) -> Dict[str, Any]:
    """Project a system node onto the user-visible image (drops locks,
    pending-transaction bookkeeping), attaching the current epoch."""
    return {
        "path": path,
        "data": node.get("data", b""),
        "version": node.get("version", 0),
        "cversion": node.get("cversion", 0),
        "created_tx": node.get("created_tx", 0),
        "modified_tx": node.get("modified_tx", 0),
        "children": list(node.get("children", [])),
        "ephemeral_owner": node.get("ephemeral_owner"),
        "epoch": list(epoch),
    }
