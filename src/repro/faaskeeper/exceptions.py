"""FaaSKeeper client-facing exceptions (mirroring kazoo/ZooKeeper errors)."""

from __future__ import annotations

__all__ = [
    "FaaSKeeperError",
    "NoNodeError",
    "NodeExistsError",
    "BadVersionError",
    "NotEmptyError",
    "NoChildrenForEphemeralsError",
    "SessionClosedError",
    "RequestFailedError",
    "AccessDeniedError",
    "BadArgumentsError",
    "RolledBackError",
    "TransactionFailedError",
    "RetryFailedError",
]


class FaaSKeeperError(Exception):
    """Base class for FaaSKeeper errors."""


class NoNodeError(FaaSKeeperError):
    """The target node does not exist."""


class NodeExistsError(FaaSKeeperError):
    """create() on an existing path."""


class BadVersionError(FaaSKeeperError):
    """Conditional update with a stale version number."""


class NotEmptyError(FaaSKeeperError):
    """delete() on a node that still has children."""


class NoChildrenForEphemeralsError(FaaSKeeperError):
    """create() under an ephemeral parent (ZooKeeper forbids this)."""


class SessionClosedError(FaaSKeeperError):
    """Operation on a closed or expired session."""


class RequestFailedError(FaaSKeeperError):
    """The system rejected the request (follower/leader failure path)."""


class AccessDeniedError(FaaSKeeperError):
    """ACL check failed."""


class BadArgumentsError(FaaSKeeperError):
    """Malformed path or arguments."""


class RolledBackError(FaaSKeeperError):
    """An op inside a failed multi that was rolled back with the batch.

    Mirrors ZooKeeper's ``RUNTIMEINCONSISTENCY``/rolled-back marker: this
    op did not fail by itself — a sibling did, and the transaction's
    all-or-nothing guarantee undid (or never applied) this one.
    """


class RetryFailedError(FaaSKeeperError):
    """A :class:`~repro.faaskeeper.client.SessionRetry` loop gave up: the
    wrapped operation kept failing with retryable errors until the attempt
    budget ran out.  The last underlying error is chained as ``__cause__``."""


class TransactionFailedError(FaaSKeeperError):
    """A multi()/transaction() aborted: no member op was committed.

    ``results`` lists one outcome per submitted op, in op order — the
    culprit's typed error (e.g. :class:`BadVersionError`) and
    :class:`RolledBackError` for the members that were rolled back with it.
    """

    def __init__(self, message: str, results: list | None = None) -> None:
        super().__init__(message)
        self.results = list(results or [])
