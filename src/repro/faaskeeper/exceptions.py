"""FaaSKeeper client-facing exceptions (mirroring kazoo/ZooKeeper errors)."""

from __future__ import annotations

__all__ = [
    "FaaSKeeperError",
    "NoNodeError",
    "NodeExistsError",
    "BadVersionError",
    "NotEmptyError",
    "NoChildrenForEphemeralsError",
    "SessionClosedError",
    "RequestFailedError",
    "AccessDeniedError",
    "BadArgumentsError",
]


class FaaSKeeperError(Exception):
    """Base class for FaaSKeeper errors."""


class NoNodeError(FaaSKeeperError):
    """The target node does not exist."""


class NodeExistsError(FaaSKeeperError):
    """create() on an existing path."""


class BadVersionError(FaaSKeeperError):
    """Conditional update with a stale version number."""


class NotEmptyError(FaaSKeeperError):
    """delete() on a node that still has children."""


class NoChildrenForEphemeralsError(FaaSKeeperError):
    """create() under an ephemeral parent (ZooKeeper forbids this)."""


class SessionClosedError(FaaSKeeperError):
    """Operation on a closed or expired session."""


class RequestFailedError(FaaSKeeperError):
    """The system rejected the request (follower/leader failure path)."""


class AccessDeniedError(FaaSKeeperError):
    """ACL check failed."""


class BadArgumentsError(FaaSKeeperError):
    """Malformed path or arguments."""
