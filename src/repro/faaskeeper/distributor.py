"""The distributor stage: commit and distribution as separable pipelines.

The paper's scaling argument is that a writer only has to make a
transaction *durable*; propagating it — replicating the node image into
every region's user store and fanning out watch notifications — can
proceed asynchronously behind epoch counters.  The inline leader
(Algorithm 2) still does both: every write waits on an ``AllOf`` over all
all-region user-store writes plus the watch-registry round trips before
the client is acknowledged, so client-perceived write latency grows with
the region count and the watch density.

With ``FaaSKeeperConfig.distributor_enabled`` the leader stops after
commit verification (steps ➊–➋ and the cross-shard ordering gates): it
appends one *distribution record* per committed update to a FIFO
distributor queue **per region** and — under ``ack_policy="on_commit"`` —
acknowledges the client immediately.  Each region's distributor function
drains its queue in batches and

* **coalesces superseded writes across leader batches** — the regional
  queue aggregates records from every leader shard, so last-writer-wins
  coalescing (generalizing the leader's in-batch ``_coalesce_plan``) now
  spans commits that were acknowledged in different leader invocations;
  a per-path landed-txid memory additionally skips redelivered or
  cross-batch-stale images;
* **pipelines independent-path writes** — one process per path applies
  that path's surviving writes in commit order while different paths
  proceed in parallel;
* **owns the watch stage** — the *primary* region's distributor performs
  the watch query/consume (parallel across paths), adds the triggered
  instance ids to every region's epoch counter, and invokes the watch
  fan-out function; epoch accounting therefore moves with the fan-out and
  the Z4 read stalls keep working.

Consistency is preserved by two boards (both simulation stand-ins for
conditional reads/writes on system-storage items, the same device as
:class:`~repro.faaskeeper.service.SessionFenceBoard`):

* :class:`WatchGateBoard` — a regional write stage snapshots the epoch
  for a record only after the watch stage has processed that record, so
  any image with ``modified_tx > t`` carries the (still pending) watch
  ids triggered by transaction ``t`` — Z4's ordering invariant at any
  ``leader_shards`` × ``regions`` combination;
* :class:`VisibilityBoard` — tracks which transaction ids have landed in
  which region.  The distributor also maintains a per-region
  ``replicated_tx`` watermark item in the system store (one monotone
  write per batch); the client's session write barrier and the client
  read cache wait on the board of the region they read from, giving
  read-your-writes and Z2 session order under ``ack_policy="on_commit"``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, Set
from ..sim.kernel import AllOf
from .layout import SYSTEM_STATE, replicated_key
from .watches import triggered_watch_types

__all__ = ["DistributionStage", "DistributorLogic", "VisibilityBoard",
           "WatchGateBoard", "armed_watch_ids", "write_user_image"]


def armed_watch_ids(watch_item: Optional[Dict[str, Any]],
                    op_pairs: List[Tuple[str, bool]]) -> List[str]:
    """Instance ids a path's watch item arms for the given operations —
    the ids the distributor parks in the epoch counters while the
    (deferred) consume and fan-out are still in flight."""
    if not watch_item:
        return []
    instances = watch_item.get("inst", {})
    ids: List[str] = []
    seen = set()
    for op, is_parent in op_pairs:
        for wtype, _event in triggered_watch_types(op, is_parent):
            if wtype in seen:
                continue
            seen.add(wtype)
            inst = instances.get(wtype.value)
            if inst and inst.get("sessions"):
                ids.append(inst["id"])
    return ids


def write_user_image(user_store, fctx, region: str, path: str,
                     image: Optional[Dict[str, Any]], epoch: List[str],
                     txid: int, op: str, is_parent: bool) -> Generator:
    """Apply one replication action to one region's user store.

    Shared by the leader's inline step ➌ and the distributor's write
    stage, so both pipelines produce byte-identical user-store state.
    """
    if image is None:  # pragma: no cover - defensive
        return None
    if image.get("deleted"):
        yield from user_store.delete_node(fctx.ctx, region, path)
        return None
    full = dict(image)
    full["epoch"] = list(epoch)
    if not is_parent:
        full["modified_tx"] = txid
        if op == "create":
            full["created_tx"] = txid
        yield from user_store.write_node(fctx.ctx, region, path, full)
    else:
        # Parent updates touch metadata only (child list, cversion); the
        # writer downloads the node and rewrites it around the existing
        # data (Section 3.2's read-update-write).
        full.pop("meta_only", None)
        yield from user_store.update_metadata(fctx.ctx, region, path, full)
    return None


class VisibilityBoard:
    """Which transaction ids are visible (replicated) in which region.

    The authoritative value is the per-region ``replicated_tx`` item the
    distributor writes after every batch; the board is the simulation's
    stand-in for the conditional read a client would issue against it, so
    waiting models only the *ordering*, not extra storage traffic.
    """

    def __init__(self, env, regions: List[str]) -> None:
        self.env = env
        self.watermark: Dict[str, int] = {region: 0 for region in regions}
        # Landed ids are kept as a per-region set for the deployment's
        # lifetime: txids are not contiguous per region (rejected writes
        # burn ids without ever replicating), so a prunable frontier would
        # either stall on the holes or claim unlanded ids visible.  Same
        # lifetime bookkeeping class as the runtime's duration logs.
        self._visible: Dict[str, set] = {region: set() for region in regions}
        self._events: Dict[Tuple[str, int], Any] = {}

    def visible(self, region: str, txid: int) -> bool:
        return txid <= 0 or txid in self._visible[region]

    def event(self, region: str, txid: int):
        """Event that fires when ``txid`` lands in ``region`` (already
        triggered for landed ids)."""
        key = (region, txid)
        ev = self._events.get(key)
        if ev is None:
            ev = self.env.event()
            ev.defused()
            if self.visible(region, txid):
                ev.succeed(None)
            else:
                self._events[key] = ev
        return ev

    def wait(self, region: str, txid: int) -> Generator:
        ev = self.event(region, txid)
        if not ev.processed:
            yield ev
        return None

    def mark(self, region: str, txids: List[int]) -> None:
        landed = self._visible[region]
        for txid in txids:
            landed.add(txid)
            if txid > self.watermark[region]:
                self.watermark[region] = txid
            ev = self._events.pop((region, txid), None)
            if ev is not None and not ev.triggered:
                ev.succeed(None)


class WatchGateBoard:
    """Per-shard watch-stage progress: regional write stages wait here.

    The primary distributor advances a shard's gate to transaction ``t``
    once the watch instances triggered by every record of that shard up
    to ``t`` have been consumed and added to the epoch counters.  Records
    of one shard enter every distributor queue in commit order, so the
    gate is monotone per shard.
    """

    def __init__(self, env) -> None:
        self.env = env
        self._done: Dict[int, int] = {}
        self._waiters: Dict[int, List[Tuple[int, Any]]] = {}

    def advance(self, shard: int, txid: int) -> None:
        if txid <= self._done.get(shard, 0):
            return
        self._done[shard] = txid
        waiters = self._waiters.pop(shard, [])
        still: List[Tuple[int, Any]] = []
        for wanted, event in waiters:
            if txid >= wanted:
                if not event.triggered:
                    event.succeed(None)
            else:
                still.append((wanted, event))
        if still:
            self._waiters[shard] = still

    def wait(self, shard: int, txid: int) -> Generator:
        while self._done.get(shard, 0) < txid:
            event = self.env.event()
            event.defused()
            self._waiters.setdefault(shard, []).append((txid, event))
            yield event
        return None


class DistributorLogic:
    """Behaviour of one region's distributor function.

    The primary region's instance additionally owns the watch stage (the
    fan-out is a deployment-wide concern and must consume each triggered
    instance exactly once, so exactly one distributor runs it).
    """

    def __init__(self, service, region: str, primary: bool) -> None:
        self.service = service
        self.region = region
        self.primary = primary
        self._epoch_loaded = False
        #: path -> newest txid whose write landed in this region; the
        #: cross-batch generalization of the leader's in-batch coalescing
        #: (also makes redeliveries idempotent).
        self._last_written: Dict[str, int] = {}
        self._batches = service.metrics.counter(
            "fk_distributor_batches_total",
            "Distribution batches drained", ("region",)).labels(region=region)
        self._coalesced = service.metrics.counter(
            "fk_distributor_coalesced_writes_total",
            "User-store writes skipped as superseded",
            ("region",)).labels(region=region)

    # Pre-metrics attribute API (read-only over the registry).
    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def coalesced_writes(self) -> int:
        return int(self._coalesced.value)

    def cold_restart(self) -> None:
        """Drop warm-sandbox state after a crash (chaos harness hook): the
        epoch mirror re-hydrates from storage, and the landed-txid memory —
        a pure optimization over the idempotent ``write_user_image`` — is
        rebuilt from the writes themselves."""
        self._epoch_loaded = False
        self._last_written = {}

    # ------------------------------------------------------------ handler
    def handler(self, fctx, batch: List[Dict[str, Any]]) -> Generator:
        env = fctx.env
        stage = self.service.distribution
        fctx.crash_point("dist_entry")
        self._batches.inc()
        if not self._epoch_loaded:
            # Cold-start hydration of the shared epoch mirror, exactly like
            # a leader sandbox.
            yield from self.service.epoch_ledger.load(fctx.ctx)
            self._epoch_loaded = True

        # Newest txid per shard in this batch: what the watch stage
        # advances the gate to, and what the write stage waits on.
        newest: Dict[int, int] = {}
        for rec in batch:
            if rec["txid"] > newest.get(rec["shard"], 0):
                newest[rec["shard"]] = rec["txid"]
        if self.primary:
            yield from self._watch_stage(fctx, batch, newest)
            fctx.crash_point("dist_after_watch_stage")
        # Z4 gate: epoch snapshots must postdate the watch-stage processing
        # of every record in this batch, so later images carry the watch
        # ids of earlier (still undelivered) notifications.
        for shard, txid in newest.items():
            yield from stage.watch_gate.wait(shard, txid)

        # Write stage: cross-batch coalescing, then one process per path
        # (independent paths pipeline; one path's writes stay in commit
        # order).
        plan = self._coalesce(batch)
        t0 = env.now
        data_kb = sum(
            len((image or {}).get("data", b"") or b"") / 1024.0
            for entries in plan.values()
            for image, _is_parent, _op, _txid in entries)
        yield fctx.compute(base_ms=0.3, payload_kb=data_kb, per_kb_ms=0.12)
        epoch = self.service.epoch_ledger.snapshot(self.region)
        procs = [
            env.process(self._apply_path(fctx, path, entries, epoch),
                        name=f"distribute:{path}@{self.region}")
            for path, entries in plan.items()
        ]
        if procs:
            yield AllOf(env, procs)
        fctx.record("update_user", env.now - t0)
        fctx.crash_point("dist_before_visible")

        # Advance the region's visibility watermark: every record of this
        # batch is now readable (superseded writes are covered by the
        # superseding write that landed in the same or an earlier batch).
        yield from stage.mark_visible(fctx, self.region,
                                      [rec["txid"] for rec in batch])
        return None

    # ------------------------------------------------------------ coalescing
    def _coalesce(self, batch: List[Dict[str, Any]]
                  ) -> Dict[str, List[Tuple[Optional[Dict[str, Any]], bool, str, int]]]:
        """Last-writer-wins plan across every record of the batch.

        Returns ``{path: [(image, is_parent, op, txid)]}`` with at most two
        surviving entries per path, in commit order: a node-image write is
        superseded by a later node-image write to the same path; a parent
        metadata update is superseded by *any* later write to the path
        (the newest node image already carries the newest child list the
        follower staged against)."""
        plan: Dict[str, List[Tuple[Optional[Dict[str, Any]], bool, str, int]]] = {}
        for rec in batch:
            for path, image, is_parent, op in rec["writes"]:
                entries = plan.setdefault(path, [])
                entry = (image, is_parent, op, rec["txid"])
                if not is_parent:
                    # Drop every older write to the path.
                    self._coalesced.inc(len(entries))
                    plan[path] = [entry]
                else:
                    # Metadata update: replaces an older trailing metadata
                    # update, rides behind a surviving node image.
                    if entries and entries[-1][1]:
                        entries[-1] = entry
                        self._coalesced.inc()
                    else:
                        entries.append(entry)
        return plan

    def _apply_path(self, fctx, path: str,
                    entries: List[Tuple[Optional[Dict[str, Any]], bool, str, int]],
                    epoch: List[str]) -> Generator:
        for image, is_parent, op, txid in entries:
            if self._last_written.get(path, 0) >= txid:
                # A newer write already landed (redelivered batch, or a
                # record that was superseded across batches).
                self._coalesced.inc()
                continue
            yield from write_user_image(self.service.user_store, fctx,
                                        self.region, path, image, epoch,
                                        txid, op, is_parent)
            self._last_written[path] = txid
        return None

    # ------------------------------------------------------------ watch stage
    def _watch_stage(self, fctx, batch: List[Dict[str, Any]],
                     newest: Dict[int, int]) -> Generator:
        """Arm the watches triggered by the batch and schedule the fan-out.

        The stage is split in two to keep both ordering invariants of the
        inline pipeline across the asynchronous seam:

        1. **now** — query the armed instance ids (parallel per path) and
           add them to the epoch counters *before* opening the Z4 gate, so
           every image written after this batch carries the ids of the
           still-undelivered notifications;
        2. **after visibility** — consume the instances (a fresh query +
           guarded removal) and invoke the fan-out only once the
           triggering write landed in every region (replicate-then-notify,
           inline step ➌ before ➍).  Deferring the *consume* — not just
           the delivery — closes the stale-admission race: a reader whose
           cache miss lands between commit and regional visibility joins
           the still-live instance and is therefore notified (and
           invalidated) when it fires; only registrations after the
           consume mint a fresh instance, and those readers already
           observe the replicated data.
        """
        env = fctx.env
        stage = self.service.distribution
        t0 = env.now
        by_path: Dict[str, List[Tuple[str, bool]]] = {}
        path_txid: Dict[str, int] = {}
        for rec in batch:
            for path, op, is_parent in rec["watch_pairs"]:
                by_path.setdefault(path, []).append((op, is_parent))
                if rec["txid"] > path_txid.get(path, 0):
                    path_txid[path] = rec["txid"]
        procs = {
            path: env.process(
                self.service.watch_registry.query(fctx.ctx, path),
                name=f"watch-stage:{path}")
            for path in by_path
        }
        if procs:
            yield AllOf(env, list(procs.values()))
        fctx.record("watch_query", env.now - t0)

        # One fan-out per triggering txid: the delivered event carries the
        # newest transaction that touched the path in this batch (one-shot
        # watches legally fold multiple changes into one notification).
        txid_shard = {rec["txid"]: rec["shard"] for rec in batch}
        by_txid: Dict[int, List[Tuple[str, List[Tuple[str, bool]], List[str]]]] = {}
        for path, proc in procs.items():
            armed = armed_watch_ids(proc.value, by_path[path])
            if armed:
                by_txid.setdefault(path_txid[path], []).append(
                    (path, by_path[path], armed))
        for txid in sorted(by_txid):
            entries = by_txid[txid]
            armed_ids = [wid for _p, _pairs, ids in entries for wid in ids]
            yield from self.service.epoch_ledger.add(fctx.ctx, armed_ids)
            env.process(self._fanout_after_visible(txid, txid_shard[txid],
                                                   entries, armed_ids),
                        name=f"fanout:{txid}")

        for shard, txid in newest.items():
            stage.watch_gate.advance(shard, txid)
        return None

    def _fanout_after_visible(self, txid: int, shard: int,
                              entries: List[Tuple[str, List[Tuple[str, bool]], List[str]]],
                              armed_ids: List[str]) -> Generator:
        """Consume + fan out once ``txid`` is visible in every region,
        then clear the epoch counters after delivery (WatchCallback).  The
        wait rides this detached process, so the primary distributor's
        queue keeps draining while slower regions catch up."""
        stage = self.service.distribution
        ctx = self.service.system_ctx
        for region in self.service.config.regions:
            yield from stage.visibility.wait(region, txid)
        triggered: List = []
        for path, pairs, _armed in entries:
            found = yield from self.service.watch_registry.query_consume_ops(
                ctx, path, pairs)
            triggered.extend(found)
        if triggered:
            done = self.service.invoke_watch_fn(triggered, txid, shard=shard,
                                                origin="distributor")
            try:
                yield done
            except Exception:
                pass  # fan-out retried internally; clear regardless
        # The armed ids are what the epoch carries; the consumed instances
        # may differ (a GC sweep or an intervening consume can have
        # replaced them) — clear exactly what was added.
        yield from self.service.epoch_ledger.remove(ctx, armed_ids)
        return None


class DistributionStage:
    """Deployment-side wiring of the distributor: queues, functions,
    visibility and watch-gate boards."""

    def __init__(self, service) -> None:
        self.service = service
        config = service.config
        cloud = service.cloud
        env = cloud.env
        self.visibility = VisibilityBoard(env, config.regions)
        self.watch_gate = WatchGateBoard(env)
        self.logics: Dict[str, DistributorLogic] = {}
        self.queues: Dict[str, Any] = {}
        self.fns: Dict[str, Any] = {}
        primary = config.primary_region
        for region in config.regions:
            logic = DistributorLogic(service, region,
                                     primary=(region == primary))
            # The primary region keeps the bare name; the fan-out scales
            # with the region count by adding one function + queue each.
            suffix = "" if region == primary else f"-{region}"
            fn = cloud.deploy_function(
                f"fk-distributor{suffix}", logic.handler,
                memory_mb=config.function_memory_mb, arch=config.arch,
                cpu_alloc=config.cpu_alloc, region=region)
            queue = cloud.fifo_queue(
                f"fk-dist-q{suffix}", label="sqs", max_receive=None)
            queue.attach(fn, batch_limit=config.distributor_batch)
            self.logics[region] = logic
            self.queues[region] = queue
            self.fns[region] = fn

    # ------------------------------------------------------------ publish
    def record_size_kb(self, record: Dict[str, Any]) -> float:
        data_kb = sum(
            len((image or {}).get("data", b"") or b"") / 1024.0
            for _path, image, _is_parent, _op in record["writes"])
        return 0.2 + data_kb

    def publish(self, fctx, record: Dict[str, Any]) -> Generator:
        """Append one distribution record to every region's queue (the
        enqueues run in parallel; the leader awaits them so per-path queue
        order follows commit order before the txid is popped)."""
        env = fctx.env
        size_kb = self.record_size_kb(record)
        procs = [
            env.process(self._send_one(fctx, region, record, size_kb),
                        name=f"dist-publish:{region}")
            for region in self.service.config.regions
        ]
        yield AllOf(env, procs)
        return None

    def _send_one(self, fctx, region: str, record: Dict[str, Any],
                  size_kb: float) -> Generator:
        yield from self.queues[region].send(
            fctx.ctx, dict(record), group="dist", size_kb=size_kb)
        return None

    # ------------------------------------------------------------ visibility
    def mark_visible(self, fctx, region: str, txids: List[int]) -> Generator:
        """One monotone ``replicated_tx`` watermark write per batch, then
        open the in-memory board the client barriers wait on."""
        top = max(txids)
        try:
            yield from self.service.system_store.update_item(
                fctx.ctx, SYSTEM_STATE, replicated_key(region),
                updates=[Set("txid", top)],
                condition=Attr("txid").not_exists() | (Attr("txid") < top),
                payload_kb=0.032,
            )
        except ConditionFailed:  # pragma: no cover - redelivered batch
            pass
        self.visibility.mark(region, txids)
        return None

    # ------------------------------------------------------------ accounting
    def stats(self) -> Dict[str, float]:
        return {
            "batches": float(sum(lg.batches for lg in self.logics.values())),
            "coalesced_writes": float(
                sum(lg.coalesced_writes for lg in self.logics.values())),
            "watermarks": dict(self.visibility.watermark),
        }
