"""The scheduled heartbeat function (Section 3.6, Figure 13).

ZooKeeper sessions exchange keep-alives over their TCP connection; with no
connection to keep, FaaSKeeper inverts the direction: a cron-triggered
function scans the session table, pings every scanned session in parallel,
and starts an eviction (a ``close_session`` request in the session's own
FIFO queue, so it serializes after the session's earlier writes) for
clients that miss the deadline.

Every session is pinged, not just owners of ephemeral nodes: a dead
session that only holds watches (or nothing at all) would otherwise never
be evicted — its session record, FIFO queue and watch registrations leak
forever, and the GC watch sweeper (which keys liveness off the session
table) could never reclaim its instances.  Ephemeral owners are still
pinged — and therefore evicted — first, preserving the original eviction
ordering.

The function also doubles as the "system is online" signal for clients.

With ``session_plane_shards > 1`` the sweep is partitioned: N scheduled
sweep functions each scan one hash slice of the session table (a
DynamoDB-style parallel-scan segment), so sweep latency stays flat as the
session count grows.  Ephemeral-first eviction ordering is preserved *per
shard* — the global order was never load-bearing across unrelated
sessions, only among the sessions one sweep evicts together.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Set, item_exists
from ..cloud.kvstore import TTL_ATTRIBUTE
from ..sim.kernel import AllOf
from .layout import SYSTEM_SESSIONS

__all__ = ["HeartbeatLogic"]


class HeartbeatLogic:
    """Behaviour of one heartbeat sweep function, bound to one deployment.

    ``shard``/``shards`` select the hash slice of the session table this
    instance owns; the default (0 of 1) is the flat full-table sweep.  The
    aggregate counters are shared across every shard's instance (the
    registry returns the same child), so ``evictions`` etc. stay
    deployment-wide.
    """

    def __init__(self, service, shard: int = 0, shards: int = 1) -> None:
        self.service = service
        self.shard = shard
        self.shards = shards
        self._sweeps = service.metrics.counter(
            "fk_heartbeat_sweeps_total", "Heartbeat scan/ping rounds")
        self._checked = service.metrics.counter(
            "fk_heartbeat_sessions_checked_total", "Sessions pinged")
        self._evictions = service.metrics.counter(
            "fk_heartbeat_evictions_total",
            "Sessions evicted for missing the ping deadline")
        self._shard_sweeps = service.metrics.counter(
            "fk_heartbeat_shard_sweeps_total",
            "Heartbeat sweeps per session-plane shard", ("shard",))

    @property
    def evictions(self) -> int:
        """Pre-metrics attribute API (read-only over the registry)."""
        return int(self._evictions.value)

    def handler(self, fctx, payload: Any) -> Generator:
        env = fctx.env
        t0 = env.now
        if self.shards > 1:
            sessions = yield from self.service.system_store.scan(
                fctx.ctx, SYSTEM_SESSIONS,
                segment=self.shard, total_segments=self.shards)
        else:
            sessions = yield from self.service.system_store.scan(
                fctx.ctx, SYSTEM_SESSIONS)
        fctx.record("scan", env.now - t0)

        # Ping every scanned session in parallel, ephemeral owners first
        # (their evictions release ephemeral nodes and must keep their
        # original relative order).
        t0 = env.now
        to_check = [sid for sid, item in sessions.items() if item.get("ephemeral")]
        to_check += [sid for sid, item in sessions.items()
                     if not item.get("ephemeral")]
        pings = {
            sid: env.process(self.service.heartbeat_ping(sid), name=f"ping:{sid}")
            for sid in to_check
        }
        results: Dict[str, bool] = {}
        if pings:
            yield AllOf(env, list(pings.values()))
            # Key each result by its own ping process — never by the
            # position of the composite event's value dict, whose iteration
            # order is an implementation detail of the kernel.
            results = {sid: bool(ping.value) for sid, ping in pings.items()}
        fctx.record("ping", env.now - t0)

        self._sweeps.inc()
        self._shard_sweeps.labels(shard=str(self.shard)).inc()
        self._checked.inc(len(to_check))
        expired = [sid for sid in to_check if not results.get(sid, False)]
        if self.service.ephemeral_ttl_active:
            # Native-TTL fleet: answering sessions get their record's TTL
            # pushed forward; silent ones simply stop being refreshed and
            # the table's own expiry starts the eviction (the scan above
            # is also what lets due expirations fire).  No eviction is
            # enqueued here — the TTL deletion owns that.
            ttl_ms = self.service.config.effective_ephemeral_ttl_ms
            t0 = env.now
            for sid in to_check:
                if not results.get(sid, False):
                    continue
                try:
                    yield from self.service.system_store.update_item(
                        fctx.ctx, SYSTEM_SESSIONS, sid,
                        [Set(TTL_ATTRIBUTE, env.now + ttl_ms)],
                        condition=item_exists(), atomic_hint=True,
                        payload_kb=0.05)
                except ConditionFailed:
                    pass  # closed between scan and refresh — nothing to keep
            fctx.record("ttl_refresh", env.now - t0)
            return {"checked": len(to_check), "evicted": 0}
        for sid in expired:
            self._evictions.inc()
            yield from self.service.enqueue_eviction(fctx.ctx, sid)
        return {"checked": len(to_check), "evicted": len(expired)}
