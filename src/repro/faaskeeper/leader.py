"""The leader function (Algorithm 2).

A single FIFO queue feeds a single leader instance with committed updates in
txid order.  For each update the leader

➊ reads the system node and verifies the transaction is at the head of the
  node's pending list,
➋ if the follower died between push and commit, tries to commit on its
  behalf (TryCommit) once the lock lease has expired — otherwise the update
  is rejected and the client notified of the failure,
➌ replicates the staged node image (and the parent's, for create/delete)
  into the user store of every region in parallel, attaching the current
  epoch (the watch notifications still in flight),
➍ consumes triggered watches, adds their ids to the epoch counters and
  invokes the watch fan-out function,
➎ notifies the client of success and pops the transaction.

Ambiguous states (lock still held by a live follower) raise, making the
FIFO queue redeliver the batch; the ``applied_tx`` watermark makes
redeliveries idempotent.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..cloud.errors import ConditionFailed
from ..cloud.expressions import Attr, ListAppend, ListRemove, Set
from ..sim.kernel import AllOf
from .layout import SYSTEM_NODES, epoch_key
from .model import Response
from .watches import TriggeredWatch

__all__ = ["LeaderLogic", "RetryBatch"]


class RetryBatch(Exception):
    """Raised to make the FIFO queue redeliver the current batch."""


class LeaderLogic:
    """Behaviour of the leader function, bound to one deployment."""

    def __init__(self, service) -> None:
        self.service = service
        # The single leader instance is sticky (warm sandbox), so it may keep
        # the epoch counters cached in memory — the `state` argument of
        # Algorithm 2.  The authoritative copy lives in system storage; the
        # cache is (re)hydrated lazily after cold starts.
        self._epoch_cache: Optional[Dict[str, List[str]]] = None
        self._pending_callbacks: List = []

    # ------------------------------------------------------------ epoch
    def _load_epoch(self, fctx) -> Generator:
        if self._epoch_cache is None:
            cache: Dict[str, List[str]] = {}
            for region in self.service.config.regions:
                lst = yield from self.service.epoch_lists[region].get(fctx.ctx)
                cache[region] = list(lst)
            self._epoch_cache = cache
        return None

    def epoch_snapshot(self, region: str) -> List[str]:
        assert self._epoch_cache is not None
        return list(self._epoch_cache[region])

    def _epoch_add(self, fctx, watch_ids: List[str]) -> Generator:
        for region in self.service.config.regions:
            new = yield from self.service.epoch_lists[region].append(fctx.ctx, watch_ids)
            self._epoch_cache[region] = list(new)
        return None

    def _epoch_remove_process(self, invocation_done, watch_ids: List[str]):
        """Helper process: wait for the watch fan-out, then clear the epoch
        entries (the WatchCallback of Algorithm 2, step ➏)."""
        try:
            yield invocation_done
        except Exception:
            pass  # fan-out retried internally; clear regardless of outcome
        ctx = self.service.system_ctx
        for region in self.service.config.regions:
            new = yield from self.service.epoch_lists[region].remove(ctx, watch_ids)
            if self._epoch_cache is not None:
                self._epoch_cache[region] = list(new)
        return None

    # ------------------------------------------------------------ handler
    def handler(self, fctx, batch: List[Dict[str, Any]]) -> Generator:
        yield from self._load_epoch(fctx)
        self._pending_callbacks = []
        for msg in batch:
            yield from self.process(fctx, msg)
        # WaitAll(WatchCallback): the instance lingers until all of its
        # notifications are delivered and cleared from the epoch.
        if self._pending_callbacks:
            yield AllOf(fctx.env, self._pending_callbacks)
        self._pending_callbacks = []
        return None

    def process(self, fctx, msg: Dict[str, Any]) -> Generator:
        env = fctx.env
        txid = msg["_seq"]
        path = msg["path"]
        sys_store = self.service.system_store

        # ➊ verify commit status
        t0 = env.now
        node = yield from sys_store.get_item(fctx.ctx, SYSTEM_NODES, path)
        fctx.record("get_node", env.now - t0)
        node = node or {}
        if node.get("applied_tx", 0) >= txid:
            # Redelivered after a partial batch: already replicated.
            yield from self._notify_success(fctx, msg, txid)
            return None
        pending = node.get("transactions", [])
        if txid not in pending:
            committed = yield from self._try_commit(fctx, msg, txid, node)
            if not committed:
                return None
        elif pending[0] != txid:
            # Predecessor still unpopped — should not happen under FIFO
            # delivery, but redelivery is always safe.
            raise RetryBatch(f"txid {txid} behind {pending[0]} on {path}")

        affected = [(path, msg["node_image"], False)]
        if msg.get("parent"):
            affected.append((msg["parent"], msg["parent_image"], True))

        # ➌ replicate to user stores, all regions in parallel
        t0 = env.now
        data_kb = len(msg["node_image"].get("data", b"") or b"") / 1024.0
        yield fctx.compute(base_ms=0.3, payload_kb=data_kb, per_kb_ms=0.12)
        procs = []
        for region in self.service.config.regions:
            epoch = self.epoch_snapshot(region)
            for target_path, image, is_parent in affected:
                procs.append(env.process(
                    self._replicate(fctx, region, target_path, image, epoch,
                                    txid, msg["op"], is_parent),
                    name=f"replicate:{target_path}@{region}"))
        if procs:
            yield AllOf(env, procs)
        fctx.record("update_user", env.now - t0)

        # ➍ watches: query + consume + fan out
        t0 = env.now
        triggered: List[TriggeredWatch] = []
        for target_path, _image, is_parent in affected:
            witem = yield from self.service.watch_registry.query(fctx.ctx, target_path)
            found = yield from self.service.watch_registry.consume(
                fctx.ctx, target_path, msg["op"], is_parent, witem)
            triggered.extend(found)
        fctx.record("watch_query", env.now - t0)
        if triggered:
            watch_ids = [t.watch_id for t in triggered]
            yield from self._epoch_add(fctx, watch_ids)
            done = self.service.invoke_watch_fn(triggered, txid)
            cb = env.process(self._epoch_remove_process(done, watch_ids),
                             name="watch-callback")
            self._pending_callbacks.append(cb)

        # ➎ notify + pop
        yield from self._notify_success(fctx, msg, txid)
        t0 = env.now
        for target_path, _image, _is_parent in affected:
            try:
                yield from sys_store.update_item(
                    fctx.ctx, SYSTEM_NODES, target_path,
                    updates=[ListRemove("transactions", [txid]),
                             Set("applied_tx", txid)],
                    condition=Attr("applied_tx").not_exists()
                    | (Attr("applied_tx") < txid),
                    payload_kb=0.032,
                )
            except ConditionFailed:  # pragma: no cover - concurrent watermark
                pass
        fctx.record("pop", env.now - t0)
        return None

    # ------------------------------------------------------------ steps
    def _try_commit(self, fctx, msg: Dict[str, Any], txid: int,
                    node: Dict[str, Any]) -> Generator[Any, Any, bool]:
        """Step ➋: commit on behalf of a (presumably dead) follower.

        Returns True when the transaction is committed (by us or, as we
        raced, by the recovering follower); False when the request is
        definitively rejected.  Raises :class:`RetryBatch` while the
        follower's lease is still live.
        """
        env = fctx.env
        t0 = env.now
        lock_ts = (node.get("lock") or {}).get("ts")
        max_hold = self.service.config.lock_max_hold_ms
        if lock_ts is not None and env.now - lock_ts < max_hold:
            fctx.record("try_commit", env.now - t0)
            raise RetryBatch(f"lock live on {msg['path']} for txid {txid}")

        lock_free = Attr("lock.ts").not_exists() | (
            Attr("lock.ts") <= env.now - max_hold)
        applied_before = Attr("applied_tx").not_exists() | (Attr("applied_tx") < txid)
        guard = lock_free & applied_before & (
            ~Attr("transactions").contains(txid))
        if msg["op"] == "set_data":
            guard = guard & (Attr("version") == msg["prev_version"])
        elif msg.get("parent_prev_cversion") is not None:
            # create/delete: the node-side guard is implied by the parent's
            # child-list version, which any conflicting operation must bump.
            pass

        ops = []
        node_updates = [Set(k, v) for k, v in msg["commit_sets"].items()]
        if msg["op"] == "create":
            node_updates += [Set("created_tx", txid), Set("modified_tx", txid)]
        else:
            node_updates += [Set("modified_tx", txid)]
        node_updates.append(ListAppend("transactions", [txid]))
        ops.append((SYSTEM_NODES, msg["path"], node_updates, guard))
        if msg.get("parent"):
            parent_lock_free = Attr("lock.ts").not_exists() | (
                Attr("lock.ts") <= env.now - max_hold)
            parent_guard = parent_lock_free & (
                Attr("cversion") == msg["parent_prev_cversion"])
            parent_updates = [Set(k, v) for k, v in msg["parent_sets"].items()]
            parent_updates.append(ListAppend("transactions", [txid]))
            ops.append((SYSTEM_NODES, msg["parent"], parent_updates, parent_guard))
        try:
            yield from self.service.system_store.transact_update(fctx.ctx, ops)
            fctx.record("try_commit", env.now - t0)
            return True
        except ConditionFailed:
            pass
        # Re-read: the follower may have committed while we tried.
        fresh = yield from self.service.system_store.get_item(
            fctx.ctx, SYSTEM_NODES, msg["path"])
        fresh = fresh or {}
        fctx.record("try_commit", env.now - t0)
        if txid in fresh.get("transactions", []) or fresh.get("applied_tx", 0) >= txid:
            return True
        if (fresh.get("lock") or {}).get("ts") is not None and \
                env.now - fresh["lock"]["ts"] < max_hold:
            raise RetryBatch(f"lock re-taken on {msg['path']}")
        # The request was never committed and cannot be: reject (Z1 intact).
        yield from self.service.notify_response(Response(
            session=msg["session"], rid=msg["rid"], ok=False,
            error="system_failure"))
        return False

    def _replicate(self, fctx, region: str, path: str,
                   image: Optional[Dict[str, Any]], epoch: List[str],
                   txid: int, op: str, is_parent: bool) -> Generator:
        store = self.service.user_store
        if image is None:  # pragma: no cover - defensive
            return None
        if image.get("deleted"):
            yield from store.delete_node(fctx.ctx, region, path)
            return None
        full = dict(image)
        full["epoch"] = epoch
        if not is_parent:
            full["modified_tx"] = txid
            if op == "create":
                full["created_tx"] = txid
            yield from store.write_node(fctx.ctx, region, path, full)
        else:
            # Parent updates touch metadata only (child list, cversion); the
            # leader downloads the node and rewrites it around the existing
            # data (Section 3.2's read-update-write).
            full.pop("meta_only", None)
            yield from store.update_metadata(fctx.ctx, region, path, full)
        return None

    def _notify_success(self, fctx, msg: Dict[str, Any], txid: int) -> Generator:
        env = fctx.env
        t0 = env.now
        if msg["rid"] >= 0:
            image = msg["node_image"]
            yield from self.service.notify_response(Response(
                session=msg["session"], rid=msg["rid"], ok=True,
                path=msg["path"], txid=txid,
                version=image.get("version", 0) if not image.get("deleted") else 0,
            ))
        fctx.record("notify", env.now - t0)
        return None
